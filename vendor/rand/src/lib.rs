//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships a
//! small, deterministic random-number library exposing the subset of the
//! `rand 0.8` API hornet uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits,
//! [`rngs::StdRng`], [`rngs::mock::StepRng`], and [`seq::SliceRandom`].
//!
//! The generator behind `StdRng` is xoshiro256++ seeded via splitmix64 — not
//! the upstream implementation, but statistically strong and, crucially for
//! the simulator, fully deterministic: identical seeds give identical streams
//! on every host. All simulation determinism tests compare runs of this same
//! implementation against itself, so substituting the real `rand` later only
//! changes the particular streams, never the reproducibility guarantees.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`] (the stand-in for
/// sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
uniform_int_range!(u8, u16, u32, u64, usize);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// High-level sampling API, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<Rge: UniformRange>(&mut self, range: Rge) -> Rge::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
