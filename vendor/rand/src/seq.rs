//! Sequence helpers (stand-in for `rand::seq`).

use crate::{Rng, RngCore};

/// Random slice operations (`shuffle`, `choose`).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Picks one element uniformly, or `None` if the slice is empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not stay sorted");
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
