//! Concrete generators: [`StdRng`] (xoshiro256++) and [`mock::StepRng`].

use crate::{RngCore, SeedableRng};

/// splitmix64: expands a 64-bit seed into well-distributed stream of state
/// words (the canonical xoshiro seeding procedure).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256++ generator state shared by [`StdRng`] and the ChaCha
/// stand-in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the four state words via splitmix64 from a 64-bit seed.
    pub fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden fixed point.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// The four raw state words (for checkpoint serialization).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from raw state words previously returned by
    /// [`state`](Self::state). The all-zero state is mapped to the same
    /// fallback word `from_u64` uses, so a restored generator can never land
    /// on the forbidden fixed point.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            return Self {
                s: [0x9E37_79B9_7F4A_7C15, 0, 0, 0],
            };
        }
        Self { s }
    }

    /// The next 64 bits of the stream.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Deterministic general-purpose generator (stand-in for `rand::rngs::StdRng`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng(Xoshiro256pp);

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        Self(Xoshiro256pp::from_u64(state))
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}

/// Mock generators for unit tests.
pub mod mock {
    use crate::RngCore;

    /// Returns `initial`, `initial + increment`, `initial + 2*increment`, …
    /// exactly like `rand::rngs::mock::StepRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// Creates a step generator.
        pub fn new(initial: u64, increment: u64) -> Self {
            Self {
                value: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.value;
            self.value = self.value.wrapping_add(self.increment);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mock::StepRng;
    use super::*;

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(5, 3);
        assert_eq!(r.next_u64(), 5);
        assert_eq!(r.next_u64(), 8);
        assert_eq!(r.next_u64(), 11);
    }

    #[test]
    fn xoshiro_is_not_constant() {
        let mut r = Xoshiro256pp::from_u64(0);
        let a = r.next();
        let b = r.next();
        assert_ne!(a, b);
    }
}
