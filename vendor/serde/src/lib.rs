//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships a
//! minimal serde facade: the `Serialize`/`Deserialize` traits exist as markers
//! (blanket-implemented for every type) and the derive macros are accepted but
//! emit nothing. Nothing in hornet serializes at runtime yet; when a real
//! serialization backend is needed, replace this crate with the real serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Owned-deserialization marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
