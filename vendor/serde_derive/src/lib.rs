//! No-op `#[derive(Serialize, Deserialize)]` macros for the offline serde
//! stand-in.
//!
//! Nothing in hornet serializes at runtime yet (there is no serde_json in the
//! image); the derives only need to exist so the annotations compile. When a
//! real serialization backend lands, these should emit trait impls.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
