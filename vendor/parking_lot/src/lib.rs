//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships a
//! minimal, API-compatible subset of `parking_lot` backed by `std::sync`
//! primitives. Only the surface hornet actually uses is provided: `Mutex`,
//! `MutexGuard`, and `RwLock`. Poisoning is swallowed (as in the real
//! `parking_lot`): a panic while holding the lock does not poison it for
//! other threads.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must not poison");
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
