//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the hornet benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter`) on top of a simple
//! wall-clock harness: per bench function it runs one warm-up iteration, then
//! `sample_size` timed samples, and prints min / median / mean. Results are
//! also appended as CSV to `target/criterion-lite.csv` so successive runs can
//! be diffed.
//!
//! Like real criterion, sub-millisecond routines are *batched*: when a probe
//! call finishes faster than [`MIN_SAMPLE_TIME`], `Bencher::iter` runs enough
//! back-to-back iterations per sample to exceed it and reports the mean
//! per-iteration time, so timer resolution and call overhead do not swamp
//! fast benches (e.g. `router_pipeline` at low injection rates).
//!
//! This is intentionally small — no statistical outlier analysis, no HTML
//! reports — but the numbers are honest wall-clock medians and stable enough
//! to track the ≥1.3× regressions/improvements the repo's bench trajectory
//! cares about.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench context handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per bench function.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: a warm-up iteration followed by `sample_size`
    /// timed samples of the closure passed to [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        // Warm-up (not recorded).
        let mut bencher = Bencher {
            sample: Duration::ZERO,
        };
        f(&mut bencher);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                sample: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.sample);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{full:<48} time: [min {} | median {} | mean {}] ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            samples.len()
        );
        append_csv(&full, min, median, mean);
        self
    }

    /// Ends the group (kept for API compatibility; prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// A sample below this duration is re-measured as a batch of iterations.
pub const MIN_SAMPLE_TIME: Duration = Duration::from_millis(1);

/// Upper bound on the batch size (keeps pathological nanosecond routines
/// from running forever).
const MAX_BATCH: u128 = 65_536;

/// Timer handle passed to the closure of `bench_function`.
pub struct Bencher {
    sample: Duration,
}

impl Bencher {
    /// Times `routine`, batching sub-millisecond routines: a probe call that
    /// finishes under [`MIN_SAMPLE_TIME`] is followed by a timed batch sized
    /// to take roughly twice that, and the recorded sample is the mean
    /// per-iteration duration of the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let probe = start.elapsed();
        if probe >= MIN_SAMPLE_TIME {
            self.sample = probe;
            return;
        }
        let target = (2 * MIN_SAMPLE_TIME).as_nanos();
        let batch = (target / probe.as_nanos().max(1)).clamp(1, MAX_BATCH) as u32;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.sample = start.elapsed() / batch;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The cargo target directory, derived from the running executable's path
/// (bench binaries live in `<target>/release/deps/…`); falls back to a
/// `target/` directory under the current working directory. This keeps the
/// CSV in one place regardless of the CWD cargo chose for the bench process.
pub fn target_dir() -> std::path::PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|a| a.file_name() == Some(std::ffi::OsStr::new("target")))
                .map(std::path::Path::to_path_buf)
        })
        .unwrap_or_else(|| std::path::PathBuf::from("target"))
}

fn append_csv(id: &str, min: Duration, median: Duration, mean: Duration) {
    use std::io::Write;
    let dir = target_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("criterion-lite.csv"))
    {
        let _ = writeln!(
            f,
            "{id},{},{},{}",
            min.as_nanos(),
            median.as_nanos(),
            mean.as_nanos()
        );
    }
}

/// Declares a bench group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u32;
        group.sample_size(3).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples, each a probe call plus a batch: a noop
        // routine is far below MIN_SAMPLE_TIME, so batching must kick in.
        assert!(
            runs > 4,
            "sub-millisecond bench must be batched, ran {runs}"
        );
    }

    #[test]
    fn slow_routines_are_not_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u32;
        group.sample_size(2).bench_function("slow", |b| {
            b.iter(|| {
                runs += 1;
                std::thread::sleep(MIN_SAMPLE_TIME);
            })
        });
        group.finish();
        // 1 warm-up + 2 samples, one call each.
        assert_eq!(runs, 3);
    }

    #[test]
    fn batched_samples_report_per_iteration_time() {
        let mut b = Bencher {
            sample: Duration::ZERO,
        };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        // The recorded sample is per-iteration: near the 50 µs sleep, far
        // below the ~2 ms total the batch took.
        assert!(b.sample >= Duration::from_micros(40), "{:?}", b.sample);
        assert!(b.sample < Duration::from_micros(1_000), "{:?}", b.sample);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
