//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! compact property-testing harness exposing the subset of the proptest API
//! hornet's tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * range strategies (`0usize..36`, `0.001f64..0.08`, …), tuple strategies,
//!   [`collection::vec`], [`option::of`] and [`any`],
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking (a failing case reports its case
//! number and generated inputs, not a minimized counterexample), and value
//! generation is driven by the workspace's deterministic xoshiro256++ `rand`
//! stand-in, so failures reproduce exactly across runs and hosts.

use std::fmt::Debug;

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// A strategy producing arbitrary values of `T` (stand-in for
/// `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy wrapper returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Runs one property over `config.cases` deterministic cases, reporting the
/// first failure with its case index and generated inputs.
///
/// This is the engine behind the [`proptest!`] macro; `gen_and_run` receives
/// the per-case RNG and must generate its inputs, run the body, and map
/// `prop_assert!`-style failures into [`test_runner::TestCaseError`].
pub fn run_property(
    name: &str,
    config: &test_runner::ProptestConfig,
    mut gen_and_run: impl FnMut(
        &mut test_runner::TestRng,
    ) -> (String, Result<(), test_runner::TestCaseError>),
) {
    let mut rejected = 0u64;
    for case in 0..config.cases {
        let mut rng = test_runner::TestRng::for_case(name, case);
        let (inputs, outcome) = gen_and_run(&mut rng);
        match outcome {
            Ok(()) => {}
            Err(test_runner::TestCaseError::Reject) => rejected += 1,
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "property '{name}' failed at case {case}/{}:\n  {msg}\n  inputs: {inputs}",
                    config.cases
                );
            }
        }
    }
    if rejected * 2 > config.cases as u64 {
        panic!(
            "property '{name}' rejected {rejected}/{} cases via prop_assume! — strategy too narrow",
            config.cases
        );
    }
}

/// Declares deterministic property tests (stand-in for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (@internal ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_property(stringify!($name), &config, |rng| {
                    let mut parts: Vec<String> = Vec::new();
                    $(
                        let generated = $crate::Strategy::generate(&($strat), rng);
                        parts.push(format!("{} = {:?}", stringify!($arg), &generated));
                        let $arg = generated;
                    )+
                    let inputs = parts.join(", ");
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    (inputs, outcome)
                });
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @internal ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @internal ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {left:?}\n  right: {right:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\n  left: {left:?}\n  right: {right:?}",
                format!($($fmt)+),
            )));
        }
    }};
}

/// Skips the current case (counted; too many skips fail the property).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
