//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = vec(0u32..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
