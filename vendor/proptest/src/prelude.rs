//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{any, Arbitrary};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
