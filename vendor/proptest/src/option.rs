//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `None` about a quarter of the time and `Some` of the
/// inner strategy otherwise (matching upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::for_case("option", 0);
        let strat = of(0u64..100);
        let values: Vec<_> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
    }
}
