//! Configuration, per-case RNG, and case outcomes.

/// How many cases each property runs (stand-in for
/// `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: cases.max(1),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; keep it smaller so the offline harness
        // stays fast in debug builds. Override per block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        Self { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// `prop_assert!`/`prop_assert_eq!` failed with this message.
    Fail(String),
}

/// Deterministic per-case random source.
///
/// The stream is a pure function of the property name and the case index, so
/// a reported failing case replays identically on any host.
#[derive(Clone, Debug)]
pub struct TestRng(rand::rngs::Xoshiro256pp);

impl TestRng {
    /// RNG for case `case` of property `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(rand::rngs::Xoshiro256pp::from_u64(
            h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// The next 64 random bits.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0.next()
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_case_replays() {
        let mut a = TestRng::for_case("p", 3);
        let mut b = TestRng::for_case("p", 3);
        assert_eq!(a.next(), b.next());
        let mut c = TestRng::for_case("p", 4);
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn config_clamps_to_one_case() {
        assert_eq!(ProptestConfig::with_cases(0).cases, 1);
    }
}
