//! The [`Strategy`] trait and the built-in range / tuple strategies.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: `generate` returns a final
/// value directly.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// A strategy that always yields clones of one value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.5).generate(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_case("tuples", 0);
        let (a, b, c) = (0u64..4, 0u32..4, crate::any::<bool>()).generate(&mut rng);
        assert!(a < 4 && b < 4);
        let _: bool = c;
    }
}
