//! Offline stand-in for the `rand_chacha` crate.
//!
//! Exposes a type named [`ChaCha12Rng`] with the `rand_chacha` API surface
//! hornet uses (`SeedableRng::seed_from_u64` + `RngCore`). The stream is NOT
//! the real ChaCha12 keystream — the build environment has no crates.io
//! access, so the generator is the same deterministic xoshiro256++ core the
//! `rand` stand-in uses, domain-separated so `ChaCha12Rng` and `StdRng` seeded
//! identically still produce distinct streams. Every determinism property the
//! simulator relies on (same seed ⇒ same stream, cross-thread reproducibility)
//! holds; only the literal byte stream differs from upstream.

use rand::rngs::Xoshiro256pp;
use rand::{RngCore, SeedableRng};

/// Deterministic stand-in for `rand_chacha::ChaCha12Rng`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha12Rng(Xoshiro256pp);

impl ChaCha12Rng {
    /// The raw generator state words (for checkpoint serialization).
    pub fn state(&self) -> [u64; 4] {
        self.0.state()
    }

    /// Rebuilds a generator from raw state words previously returned by
    /// [`state`](Self::state).
    pub fn from_state(s: [u64; 4]) -> Self {
        Self(Xoshiro256pp::from_state(s))
    }
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Domain-separate from StdRng so the two never share a stream.
        Self(Xoshiro256pp::from_u64(state ^ 0xC4AC_4A12_C4AC_4A12))
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        self.0.next()
    }
}

/// Same API as [`ChaCha12Rng`] for code generic over the ChaCha variants.
pub type ChaCha8Rng = ChaCha12Rng;
/// Same API as [`ChaCha12Rng`] for code generic over the ChaCha variants.
pub type ChaCha20Rng = ChaCha12Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn differs_from_stdrng_with_same_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = rand::rngs::StdRng::seed_from_u64(42);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen::<f64>() < 0.05).count();
        assert!((4_000..6_000).contains(&hits), "rate off: {hits}");
    }
}
