//! Observability must not perturb the simulation, and the event trace must
//! itself be deterministic: with tracing, stall profiling and telemetry all
//! enabled, a cycle-accurate parallel run reports the *identical* network
//! statistics and the *identical* (canonicalized) flit-lifecycle trace as a
//! sequential run of the same seed. Also covers the report surface those
//! features feed: `SimReport::text`/`to_json`, the shard stall breakdown,
//! and the JSONL / Chrome exports of the trace.

use hornet::prelude::*;
use hornet::traffic::pattern::SyntheticPattern;
use hornet_obs::trace::{TraceDump, TraceKind};

/// Runs a 4×4 transpose workload with every observability feature on.
fn observed_run(threads: usize, seed: u64) -> hornet::sim::report::SimReport {
    SimulationBuilder::new()
        .geometry(Geometry::mesh2d(4, 4))
        .routing(RoutingKind::Xy)
        .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, 0.04))
        .warmup_cycles(200)
        .measured_cycles(1_500)
        .threads(threads)
        .sync(SyncMode::CycleAccurate)
        .seed(seed)
        .trace_events(1 << 15)
        .profile_stalls(true)
        .telemetry_every(Some(250))
        .build()
        .expect("valid configuration")
        .run()
        .expect("runs")
}

/// The deterministic flit subset in canonical order; asserts nothing was
/// truncated so the comparison is meaningful.
fn canonical_flits(report: &hornet::sim::report::SimReport, what: &str) -> TraceDump {
    let dump = report.trace.as_ref().expect("tracing was enabled");
    assert_eq!(dump.dropped, 0, "{what}: ring must be large enough");
    dump.flit_events()
}

#[test]
fn traced_parallel_run_matches_sequential_stats_and_trace_bit_for_bit() {
    let seq = observed_run(1, 77);
    assert!(seq.network.delivered_packets > 0, "workload offers traffic");
    let seq_trace = canonical_flits(&seq, "sequential");
    assert!(!seq_trace.events.is_empty(), "flit events were recorded");

    for threads in [2usize, 4] {
        let par = observed_run(threads, 77);
        assert_eq!(
            seq.network, par.network,
            "{threads} threads: stats must be bit-identical with tracing on"
        );
        assert_eq!(
            seq_trace,
            canonical_flits(&par, "parallel"),
            "{threads} threads: canonical flit trace must be bit-identical"
        );
    }
}

/// The trace covers the full flit lifecycle, with injections and ejections
/// in balance (every delivered flit was first injected and traced as such).
#[test]
fn trace_covers_inject_route_eject_consistently() {
    let report = observed_run(1, 13);
    let trace = canonical_flits(&report, "lifecycle");
    let count = |kind: TraceKind| trace.events.iter().filter(|e| e.kind == kind).count() as u64;
    let injects = count(TraceKind::FlitInject);
    let ejects = count(TraceKind::FlitEject);
    assert_eq!(
        ejects, report.network.delivered_flits,
        "one eject event per delivered flit"
    );
    assert!(injects >= ejects, "cannot eject more than was injected");
    assert!(
        count(TraceKind::FlitRoute) > 0,
        "transpose traffic must traverse intermediate routers"
    );
    // Exports: JSONL ends with the unconditional summary line; the Chrome
    // export is one well-formed trace_event document.
    let jsonl = trace.to_jsonl();
    let last = jsonl.lines().last().expect("summary line");
    assert!(last.contains("\"dropped\":0"), "summary carries drop count");
    let chrome = report.trace.as_ref().unwrap().to_chrome_trace();
    assert!(chrome.starts_with('{') && chrome.ends_with('}'));
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("tile-"));
}

/// Parallel runs with profiling and telemetry enabled populate the shard
/// summary's stall attribution and the sample stream.
#[test]
fn stall_profiles_and_telemetry_reach_the_report() {
    let report = observed_run(4, 5);
    let shard = report.shard.as_ref().expect("parallel run records shards");
    assert_eq!(shard.stalls.len(), shard.shards, "one profile per shard");
    assert!(
        shard.total_stalls().total_ns() > 0,
        "profiling must attribute wall time somewhere"
    );
    let breakdown = shard.stall_breakdown();
    assert!(
        breakdown.contains("shard 0:"),
        "per-shard lines: {breakdown}"
    );
    assert!(breakdown.contains("compute"), "named phases: {breakdown}");

    assert!(
        !report.samples.is_empty(),
        "telemetry samples were collected"
    );
    for s in &report.samples {
        hornet_obs::metrics::TelemetrySample::validate_ndjson_line(&s.to_ndjson())
            .expect("every sample must satisfy the NDJSON schema");
    }
}

/// The report's human and machine summaries carry the new throughput and
/// phase-time fields.
#[test]
fn report_text_and_json_expose_throughput_and_phase_times() {
    let report = observed_run(4, 5);
    let text = report.text();
    assert!(text.contains("cycles/sec"), "text: {text}");
    assert!(text.contains("wall clock: warmup"), "text: {text}");
    assert!(text.contains("load imbalance"), "text: {text}");

    let json = report.to_json();
    for key in [
        "\"cycles_per_sec\":",
        "\"wall_time_s\":",
        "\"warmup_wall_time_s\":",
        "\"load_imbalance\":",
        "\"stalls\":[",
        "\"compute_ns\":",
    ] {
        assert!(json.contains(key), "json must carry {key}: {json}");
    }
}

/// The live HTTP server is strictly read-only: a parallel run with the
/// server enabled and *scraped concurrently* (status, metrics, trace,
/// health — hammered in a loop for the whole run) produces bit-identical
/// network statistics and an identical canonical flit trace to a plain run
/// of the same seed, and the scrapes themselves return well-formed payloads.
#[test]
fn http_server_scraped_mid_run_keeps_results_bit_identical() {
    let plain = observed_run(4, 77);
    let plain_trace = canonical_flits(&plain, "plain");

    let sim = SimulationBuilder::new()
        .geometry(Geometry::mesh2d(4, 4))
        .routing(RoutingKind::Xy)
        .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, 0.04))
        .warmup_cycles(200)
        .measured_cycles(1_500)
        .threads(4)
        .sync(SyncMode::CycleAccurate)
        .seed(77)
        .trace_events(1 << 15)
        .profile_stalls(true)
        .telemetry_every(Some(250))
        .http_addr(Some("127.0.0.1:0".to_string()))
        .build()
        .expect("valid configuration");
    let addr = sim
        .http_local_addr()
        .expect("server is up before the run")
        .to_string();

    // Scrape every endpoint in a tight loop until the run tears the server
    // down; record how many full sweeps succeeded and that payloads were
    // well-formed whenever they answered.
    let scraper = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut sweeps = 0u64;
            loop {
                let mut ok = true;
                for path in ["/healthz", "/status", "/metrics", "/trace?since_cycle=0"] {
                    match hornet_obs::serve::http_get(&addr, path) {
                        Ok((200, body)) => {
                            if path == "/status" {
                                hornet_obs::serve::Json::parse(&body).expect("status is JSON");
                            } else if path == "/metrics" {
                                hornet_obs::serve::lint_prometheus(&body)
                                    .expect("exposition lints clean");
                            }
                        }
                        Ok((code, _)) => panic!("{path} returned {code}"),
                        Err(_) => {
                            // Server gone: the run ended.
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    return sweeps;
                }
                sweeps += 1;
            }
        })
    };

    let scraped = sim.run().expect("runs with the server enabled");
    let sweeps = scraper.join().expect("scraper thread");
    assert!(sweeps > 0, "at least one full scrape sweep mid-run");
    assert_eq!(
        plain.network, scraped.network,
        "stats must be bit-identical with the server scraped mid-run"
    );
    assert_eq!(
        plain_trace,
        canonical_flits(&scraped, "scraped"),
        "canonical flit trace must be bit-identical under scraping"
    );
}

/// With tracing off (the default), the report carries no trace and stats are
/// unchanged relative to a traced run — observability is read-only.
#[test]
fn tracing_is_read_only_and_absent_by_default() {
    let plain = SimulationBuilder::new()
        .geometry(Geometry::mesh2d(4, 4))
        .routing(RoutingKind::Xy)
        .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, 0.04))
        .warmup_cycles(200)
        .measured_cycles(1_500)
        .seed(77)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(plain.trace.is_none(), "no trace unless requested");
    assert!(plain.samples.is_empty(), "no samples unless requested");
    let traced = observed_run(1, 77);
    assert_eq!(
        plain.network, traced.network,
        "tracing must not change simulation results"
    );
}
