//! Property-based tests of the core data-structure and protocol invariants.

use hornet::mem::cache::{Cache, CacheConfig, LineState};
use hornet::mem::directory::{DirState, DirectorySlice};
use hornet::mem::msg::MemMessage;
use hornet::net::flit::Packet;
use hornet::net::geometry::Geometry;
use hornet::net::ids::NodeId;
use hornet::net::ids::{FlowId, PacketId};
use hornet::net::routing::{build_routing, trace_route, FlowSpec, RoutingKind};
use hornet::net::vcbuf::VcBuffer;
use hornet::traffic::trace::{Trace, TraceEvent};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every routing scheme delivers every flow over links that exist, for
    /// random mesh sizes and random flow subsets.
    #[test]
    fn routing_always_reaches_the_destination(
        width in 2usize..6,
        height in 2usize..6,
        pairs in proptest::collection::vec((0usize..36, 0usize..36), 1..20),
        kind_idx in 0usize..6,
    ) {
        let geometry = Geometry::mesh2d(width, height);
        let n = geometry.node_count();
        let flows: Vec<FlowSpec> = pairs
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| FlowSpec::pair(NodeId::from(a), NodeId::from(b), n))
            .collect();
        prop_assume!(!flows.is_empty());
        let kinds = [
            RoutingKind::Xy,
            RoutingKind::Yx,
            RoutingKind::O1Turn,
            RoutingKind::Romm,
            RoutingKind::Prom,
            RoutingKind::StaticLoadBalanced,
        ];
        let policies = build_routing(kinds[kind_idx], &geometry, &flows);
        for f in &flows {
            let path = trace_route(&policies, f.src, f.dst, f.flow, 4 * (width + height))
                .expect("route exists");
            prop_assert_eq!(*path.last().unwrap(), f.dst);
            for w in path.windows(2) {
                prop_assert!(geometry.connected(w[0], w[1]));
            }
        }
    }

    /// The VC buffer never exceeds its capacity, never loses flits, and
    /// preserves FIFO order for any interleaving of pushes and pops.
    #[test]
    fn vc_buffer_is_a_bounded_fifo(
        capacity in 1usize..8,
        ops in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let packet = Packet::new(
            PacketId::new(1),
            FlowId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            1,
            0,
        );
        let template = packet.to_flits(0)[0];
        let buf = VcBuffer::new(capacity);
        let mut pushed = 0u32;
        let mut popped = 0u32;
        for push in ops {
            if push {
                let mut flit = template;
                flit.seq = pushed;
                if buf.push(flit) {
                    pushed += 1;
                }
            } else {
                buf.absorb_tail();
                if let Some(f) = buf.pop_if(u64::MAX, |_| true) {
                    prop_assert_eq!(f.seq, popped, "FIFO order violated");
                    popped += 1;
                }
            }
            prop_assert!(buf.occupancy() <= capacity);
            prop_assert_eq!(buf.occupancy() as u32, pushed - popped);
        }
    }

    /// The fixed-capacity ring storage behind `VcBuffer` behaves exactly like
    /// a capacity-bounded two-segment `VecDeque` reference model under any
    /// sequence of push / absorb / pop_if / drain operations: same accept
    /// decisions, same absorb counts, same popped values, same occupancy and
    /// head lengths.
    #[test]
    fn vc_ring_matches_vecdeque_reference(
        capacity in 1usize..8,
        ops in proptest::collection::vec((0u8..8, any::<bool>()), 1..200),
    ) {
        use std::collections::VecDeque;
        let packet = Packet::new(
            PacketId::new(1),
            FlowId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            1,
            0,
        );
        let template = packet.to_flits(0)[0];
        let buf = VcBuffer::new(capacity);
        // Reference model: `pending` holds deposited-but-unabsorbed flits,
        // `absorbed` the ones visible to the consumer.
        let mut pending: VecDeque<u32> = VecDeque::new();
        let mut absorbed: VecDeque<u32> = VecDeque::new();
        let mut next_seq = 0u32;
        for (op, flag) in ops {
            match op {
                // Push (weighted 3/8 so buffers actually fill up).
                0..=2 => {
                    let mut flit = template;
                    flit.seq = next_seq;
                    let accepted = buf.push(flit);
                    let model_accepts = pending.len() + absorbed.len() < capacity;
                    prop_assert_eq!(accepted, model_accepts, "push decision diverged");
                    if accepted {
                        pending.push_back(next_seq);
                        next_seq += 1;
                    }
                }
                // Absorb: every pending flit becomes visible, and the count
                // is reported (the absorbed-flit statistic).
                3 => {
                    let n = buf.absorb_tail();
                    prop_assert_eq!(n, pending.len(), "absorb count diverged");
                    absorbed.extend(pending.drain(..));
                }
                // Pop with a predicate that accepts or rejects the head.
                4..=6 => {
                    let popped = buf.pop_if(u64::MAX, |_| flag);
                    let model_pops = flag && !absorbed.is_empty();
                    prop_assert_eq!(popped.is_some(), model_pops, "pop decision diverged");
                    if let Some(f) = popped {
                        let expect = absorbed.pop_front().unwrap();
                        prop_assert_eq!(f.seq, expect, "pop order diverged");
                    }
                }
                // Drain everything (teardown path), absorbed before pending.
                _ => {
                    let drained: Vec<u32> = buf.drain_all().iter().map(|f| f.seq).collect();
                    let expect: Vec<u32> =
                        absorbed.drain(..).chain(pending.drain(..)).collect();
                    prop_assert_eq!(drained, expect, "drain order diverged");
                }
            }
            prop_assert_eq!(buf.occupancy(), pending.len() + absorbed.len());
            prop_assert_eq!(buf.head_len(), absorbed.len());
            let head = buf.peek(u64::MAX).map(|f| f.seq);
            prop_assert_eq!(head, absorbed.front().copied(), "peek diverged");
        }
    }

    /// Cache occupancy never exceeds its configured capacity and lookups
    /// after insertion always hit.
    #[test]
    fn cache_respects_capacity(
        lines in proptest::collection::vec(0u64..64, 1..100),
    ) {
        let config = CacheConfig { sets: 4, ways: 2, line_bytes: 64 };
        let mut cache = Cache::new(config);
        for &line in &lines {
            cache.insert(line, LineState::Shared, line);
            prop_assert!(cache.len() <= config.sets * config.ways);
            prop_assert_eq!(cache.peek(line), Some((LineState::Shared, line)));
        }
    }

    /// The directory never records two owners, and a modified owner excludes
    /// sharers, under any interleaving of GetS/GetM requests (each fetch or
    /// invalidation answered immediately).
    #[test]
    fn msi_directory_single_writer_invariant(
        requests in proptest::collection::vec((0u64..4, 0u32..4, any::<bool>()), 1..60),
    ) {
        let mut dir = DirectorySlice::new();
        for (line, node, exclusive) in requests {
            let requester = NodeId::new(node);
            let out = if exclusive {
                dir.handle(MemMessage::GetM { line, requester })
            } else {
                dir.handle(MemMessage::GetS { line, requester })
            };
            for o in out {
                match o.msg {
                    MemMessage::Fetch { line, .. } => {
                        dir.handle(MemMessage::PutM { line, value: 0, from: o.dst });
                    }
                    MemMessage::Invalidate { line } => {
                        dir.handle(MemMessage::InvAck { line, from: o.dst });
                    }
                    _ => {}
                }
            }
            match dir.state_of(line) {
                DirState::Modified(_) | DirState::Uncached => {}
                DirState::Shared(sharers) => prop_assert!(!sharers.is_empty()),
            }
        }
    }

    /// The text trace format round-trips for arbitrary events.
    #[test]
    fn trace_text_format_roundtrips(
        events in proptest::collection::vec(
            (0u64..1_000_000, 0usize..64, 0usize..64, 1u32..32, proptest::option::of(1u64..10_000)),
            0..50,
        ),
    ) {
        let trace = Trace::new(
            events
                .into_iter()
                .map(|(t, s, d, size, period)| TraceEvent {
                    timestamp: t,
                    src: NodeId::from(s),
                    dst: NodeId::from(d),
                    size,
                    period,
                })
                .collect(),
        );
        let parsed = Trace::parse(&trace.to_text()).expect("round-trips");
        prop_assert_eq!(parsed, trace);
    }

    /// Flit conservation: for random loads, every injected packet is either
    /// delivered or still buffered when the run stops; nothing is duplicated
    /// or silently dropped.
    #[test]
    fn flit_conservation_under_random_load(rate in 0.001f64..0.08, seed in 0u64..1000) {
        use hornet::prelude::*;
        use hornet::traffic::pattern::SyntheticPattern;
        let report = SimulationBuilder::new()
            .geometry(Geometry::mesh2d(3, 3))
            .traffic(TrafficKind::pattern(SyntheticPattern::UniformRandom, rate))
            .measured_cycles(800)
            .seed(seed)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let stats = &report.network;
        prop_assert!(stats.delivered_flits <= stats.injected_flits);
        prop_assert_eq!(stats.routing_failures, 0);
        prop_assert!(stats.delivered_packets <= stats.injected_packets);
        // Whatever was not delivered is bounded by what the network can hold.
        let undelivered = stats.injected_flits - stats.delivered_flits;
        let max_in_flight = 9 * (4 * 4 * 5 + 4 * 8) as u64; // buffers per node
        prop_assert!(undelivered <= max_in_flight, "undelivered {undelivered}");
    }
}
