//! End-to-end integration test of the full stack: MIPS-like cores, MSI
//! coherence over the cycle-level network, and the MPI-style syscalls.

use hornet::cpu::agent::{CoreAgent, CoreConfig};
use hornet::cpu::programs::{token_ring_program, vector_sum_program};
use hornet::mem::hierarchy::{CoherenceMode, MemoryConfig};
use hornet::net::config::NetworkConfig;
use hornet::net::geometry::Geometry;
use hornet::net::ids::NodeId;
use hornet::net::network::Network;
use hornet::net::routing::FlowSpec;

fn mesh_network(side: usize, seed: u64) -> Network {
    let g = Geometry::mesh2d(side, side);
    let cfg = NetworkConfig::new(g.clone()).with_flows(FlowSpec::all_to_all(&g));
    Network::new(&cfg, seed).expect("valid configuration")
}

#[test]
fn vector_sums_are_correct_when_data_is_homed_remotely() {
    // Four cores each store and then re-load a 12-element vector whose lines
    // are interleaved across all four tiles; the sums must be exact even
    // though every access crosses the network through the MSI protocol.
    let mut net = mesh_network(2, 3);
    let count = 12u64;
    for i in 0..4u32 {
        let base = 0x1_0000 * (i as u64 + 1);
        net.attach_agent(
            NodeId::new(i),
            Box::new(CoreAgent::new(
                NodeId::new(i),
                4,
                vector_sum_program(base, count),
                CoreConfig::default(),
            )),
        );
    }
    assert!(net.run_to_completion(2_000_000), "cores must finish");
    let stats = net.stats();
    assert!(stats.delivered_packets > 0, "misses must cross the network");
    assert_eq!(stats.routing_failures, 0);
}

#[test]
fn token_ring_produces_the_expected_count_over_msi_and_user_traffic() {
    let nodes = 9usize;
    let mut net = mesh_network(3, 11);
    for i in 0..nodes {
        net.attach_agent(
            NodeId::from(i),
            Box::new(CoreAgent::new(
                NodeId::from(i),
                nodes,
                token_ring_program(i, nodes),
                CoreConfig::default(),
            )),
        );
    }
    assert!(net.run_to_completion(2_000_000));
    let stats = net.stats();
    // One user packet per hop around the ring.
    assert_eq!(stats.delivered_packets, nodes as u64);
}

#[test]
fn nuca_mode_also_completes_remote_accesses() {
    let mut net = mesh_network(2, 19);
    let config = CoreConfig {
        memory: MemoryConfig {
            mode: CoherenceMode::Nuca,
            ..MemoryConfig::default()
        },
        ..CoreConfig::default()
    };
    for i in 0..4u32 {
        let base = 0x2_0000 * (i as u64 + 1);
        net.attach_agent(
            NodeId::new(i),
            Box::new(CoreAgent::new(
                NodeId::new(i),
                4,
                vector_sum_program(base, 6),
                config.clone(),
            )),
        );
    }
    assert!(net.run_to_completion(2_000_000));
    assert!(net.stats().delivered_packets > 0);
}
