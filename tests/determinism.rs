//! Cross-crate integration tests of the engine's central correctness claim:
//! cycle-accurate parallel simulation is bit-identical to sequential
//! simulation with the same seed, across routing schemes and traffic patterns,
//! while loose synchronization preserves functional correctness.

use hornet::prelude::*;
use hornet::traffic::pattern::SyntheticPattern;

fn run(
    threads: usize,
    sync: SyncMode,
    routing: RoutingKind,
    seed: u64,
) -> hornet::net::NetworkStats {
    SimulationBuilder::new()
        .geometry(Geometry::mesh2d(4, 4))
        .routing(routing)
        .traffic(TrafficKind::pattern(SyntheticPattern::UniformRandom, 0.03))
        .warmup_cycles(200)
        .measured_cycles(2_000)
        .threads(threads)
        .sync(sync)
        .seed(seed)
        .build()
        .expect("valid configuration")
        .run()
        .expect("runs")
        .network
}

#[test]
fn parallel_cycle_accurate_is_bit_identical_across_thread_counts() {
    for routing in [
        RoutingKind::Xy,
        RoutingKind::O1Turn,
        RoutingKind::AdaptiveMinimal,
    ] {
        let baseline = run(1, SyncMode::CycleAccurate, routing, 77);
        for threads in [2usize, 3, 4, 8] {
            let parallel = run(threads, SyncMode::CycleAccurate, routing, 77);
            assert_eq!(
                baseline.delivered_packets, parallel.delivered_packets,
                "{routing:?} {threads} threads"
            );
            assert_eq!(
                baseline.total_packet_latency, parallel.total_packet_latency,
                "{routing:?} {threads} threads"
            );
            assert_eq!(baseline.total_hops, parallel.total_hops);
            assert_eq!(baseline.injected_flits, parallel.injected_flits);
        }
    }
}

#[test]
fn different_seeds_change_random_routing_decisions() {
    let a = run(1, SyncMode::CycleAccurate, RoutingKind::O1Turn, 1);
    let b = run(1, SyncMode::CycleAccurate, RoutingKind::O1Turn, 2);
    // Both deliver traffic, but the exact latency totals differ because path
    // choices and injection draws differ.
    assert!(a.delivered_packets > 0 && b.delivered_packets > 0);
    assert_ne!(
        (a.total_packet_latency, a.injected_flits),
        (b.total_packet_latency, b.injected_flits)
    );
}

#[test]
fn loose_sync_loses_no_packets_and_stays_close_in_latency() {
    let accurate = run(4, SyncMode::CycleAccurate, RoutingKind::Xy, 5);
    let loose = run(4, SyncMode::Periodic(5), RoutingKind::Xy, 5);
    // The measurement window is a fixed number of cycles, so the exact number
    // of packets that happen to complete inside it may shift slightly under
    // loose synchronization; functional correctness means nothing is lost or
    // duplicated (no routing failures, delivered <= injected) and the counts
    // stay within a few percent.
    assert_eq!(accurate.routing_failures, 0);
    assert_eq!(loose.routing_failures, 0);
    // (delivered may exceed injected within the measured window because
    // packets injected during the discarded warm-up window drain into it.)
    let diff = (accurate.delivered_packets as f64 - loose.delivered_packets as f64).abs()
        / accurate.delivered_packets.max(1) as f64;
    assert!(diff < 0.25, "delivered-packet count deviates by {diff:.3}");
    // Loose synchronization is intentionally non-deterministic (it depends on
    // the relative progress of the host threads), and on a 16-tile network the
    // per-tile clock skew is large relative to the short packet latencies, so
    // this is only a coarse sanity bound; the engine unit tests assert a
    // tighter bound over a full drain, and `repro_fig6b` measures the real
    // accuracy curve.
    let accuracy = loose.latency_accuracy_vs(&accurate);
    assert!(accuracy > 0.4, "accuracy {accuracy}");
}
