//! Integration tests mirroring the qualitative claims of the paper's
//! evaluation section at reduced scale: congestion raises latency, the
//! congestion-oblivious model underestimates it for heavy traffic, and the VC
//! configuration effects of Figure 9 hold directionally.

use hornet::net::geometry::Geometry;
use hornet::net::ids::NodeId;
use hornet::net::routing::RoutingKind;
use hornet::net::vca::VcAllocKind;
use hornet::prelude::*;
use hornet::traffic::pattern::SyntheticPattern;
use hornet::traffic::splash::{SplashBenchmark, SplashWorkload};
use std::sync::Arc;

#[test]
fn latency_rises_with_offered_load() {
    let run = |rate: f64| {
        SimulationBuilder::new()
            .geometry(Geometry::mesh2d(4, 4))
            .traffic(TrafficKind::pattern(SyntheticPattern::UniformRandom, rate))
            .warmup_cycles(300)
            .measured_cycles(3_000)
            .seed(2)
            .build()
            .unwrap()
            .run()
            .unwrap()
            .network
            .avg_packet_latency()
    };
    let light = run(0.005);
    let medium = run(0.04);
    let heavy = run(0.09);
    assert!(light < medium && medium < heavy, "{light} {medium} {heavy}");
}

#[test]
fn heavy_traffic_congestion_effect_exceeds_light_traffic_effect() {
    // Figure 8's shape at small scale.
    let geometry = Arc::new(Geometry::mesh2d(8, 8));
    let run = |benchmark| {
        let workload = SplashWorkload::new(benchmark, Arc::clone(&geometry));
        let mut network = workload.build_network(RoutingKind::Xy, VcAllocKind::Dynamic, 4, 4, 3);
        network.run(500);
        network.reset_stats();
        network.run(4_000);
        let stats = network.stats();
        (stats.avg_flit_latency(), stats.avg_hops())
    };
    let (radix_latency, radix_hops) = run(SplashBenchmark::Radix);
    let (swap_latency, swap_hops) = run(SplashBenchmark::Swaptions);
    // The hop-count baseline (congestion-oblivious) is comparable for both
    // workloads, so the latency inflation factor must be larger for radix.
    let radix_inflation = radix_latency / radix_hops.max(1.0);
    let swap_inflation = swap_latency / swap_hops.max(1.0);
    assert!(
        radix_inflation > swap_inflation,
        "radix {radix_inflation:.2} vs swaptions {swap_inflation:.2}"
    );
}

#[test]
fn equal_buffer_space_with_more_vcs_does_not_hurt_under_congestion() {
    // Figure 9: 4VCx4 (same total buffering as 2VCx8) should not be worse
    // than 4VCx8 (double the buffering) in a congested network.
    let run = |vcs: usize, depth: usize| {
        let geometry = Arc::new(Geometry::mesh2d(8, 8));
        let workload = SplashWorkload::new(SplashBenchmark::Radix, Arc::clone(&geometry));
        let mut network =
            workload.build_network(RoutingKind::Xy, VcAllocKind::Dynamic, vcs, depth, 5);
        network.run(500);
        network.reset_stats();
        network.run(5_000);
        network.stats().avg_packet_latency()
    };
    let four_by_eight = run(4, 8);
    let four_by_four = run(4, 4);
    assert!(
        four_by_four <= four_by_eight * 1.1,
        "4VCx4 ({four_by_four:.1}) should not be worse than 4VCx8 ({four_by_eight:.1})"
    );
}

#[test]
fn bidirectional_links_help_asymmetric_traffic() {
    // All traffic flows toward one hotspot column, so one link direction is
    // saturated while the other is idle: bandwidth-adaptive links should not
    // hurt, and usually help.
    let run = |bidir: bool| {
        SimulationBuilder::new()
            .geometry(Geometry::mesh2d(4, 4))
            .traffic(TrafficKind::Synthetic {
                pattern: SyntheticPattern::Hotspot(vec![NodeId::new(15)]),
                process: hornet::traffic::pattern::InjectionProcess::Bernoulli { rate: 0.03 },
                packet_len: 8,
            })
            .bidirectional_links(bidir)
            .warmup_cycles(300)
            .measured_cycles(3_000)
            .seed(8)
            .build()
            .unwrap()
            .run()
            .unwrap()
            .network
            .avg_packet_latency()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with <= without * 1.15,
        "bidirectional links must not significantly hurt ({with:.1} vs {without:.1})"
    );
}
