//! Integration tests of the sharded execution runtime's central correctness
//! claims on the paper's canonical 8×8 mesh:
//!
//! * multi-thread `CycleAccurate` and `Slack(0)` are *bit-identical* to
//!   sequential simulation — same packet count, same latency totals, same
//!   latency histogram — under both uniform-random and transpose traffic;
//! * `Slack(k)` with `k > 0` preserves functional correctness exactly (every
//!   packet delivered once, no routing failures) with only bounded timing
//!   skew;
//! * the report surfaces the shard layout (row-aligned partition, cut set).

use hornet::prelude::*;
use hornet::traffic::pattern::SyntheticPattern;

fn run(
    threads: usize,
    sync: SyncMode,
    pattern: SyntheticPattern,
    seed: u64,
) -> hornet::net::NetworkStats {
    SimulationBuilder::new()
        .geometry(Geometry::mesh2d(8, 8))
        .routing(RoutingKind::Xy)
        .traffic(TrafficKind::pattern(pattern, 0.03))
        .warmup_cycles(200)
        .measured_cycles(2_500)
        .threads(threads)
        .sync(sync)
        .seed(seed)
        .build()
        .expect("valid configuration")
        .run()
        .expect("runs")
        .network
}

fn assert_bit_identical(
    seq: &hornet::net::NetworkStats,
    par: &hornet::net::NetworkStats,
    what: &str,
) {
    assert_eq!(
        par.delivered_packets, seq.delivered_packets,
        "{what}: packets"
    );
    assert_eq!(par.delivered_flits, seq.delivered_flits, "{what}: flits");
    assert_eq!(par.injected_flits, seq.injected_flits, "{what}: injected");
    assert_eq!(
        par.total_packet_latency, seq.total_packet_latency,
        "{what}: latency"
    );
    assert_eq!(par.total_hops, seq.total_hops, "{what}: hops");
    assert_eq!(
        par.latency_histogram, seq.latency_histogram,
        "{what}: latency histogram"
    );
    assert_eq!(par.busy_cycles, seq.busy_cycles, "{what}: busy cycles");
}

#[test]
fn cycle_accurate_and_slack0_are_bit_identical_on_8x8() {
    for pattern in [SyntheticPattern::UniformRandom, SyntheticPattern::Transpose] {
        let seq = run(1, SyncMode::CycleAccurate, pattern.clone(), 42);
        for threads in [2usize, 4] {
            for sync in [SyncMode::CycleAccurate, SyncMode::Slack(0)] {
                let par = run(threads, sync, pattern.clone(), 42);
                assert_bit_identical(
                    &seq,
                    &par,
                    &format!("{pattern:?} {threads} threads {sync:?}"),
                );
            }
        }
    }
}

#[test]
fn slack_bounds_timing_skew_without_losing_packets() {
    let seq = run(1, SyncMode::CycleAccurate, SyntheticPattern::Transpose, 7);
    let par = run(4, SyncMode::Slack(5), SyntheticPattern::Transpose, 7);
    assert_eq!(par.routing_failures, 0, "no flit may ever be lost");
    // At a fixed horizon, up to a handful of packets may straddle the window
    // edge differently under bounded drift; delivery counts stay within a
    // fraction of a percent and latency fidelity stays high.
    let diff = par.delivered_packets.abs_diff(seq.delivered_packets);
    assert!(
        diff as f64 <= (seq.delivered_packets as f64 * 0.03).max(8.0),
        "delivered {} vs {}",
        par.delivered_packets,
        seq.delivered_packets
    );
    // The skew each shard can accumulate is bounded by the slack, but which
    // packets land inside the fixed measurement window still depends on host
    // scheduling; keep the fidelity bound loose enough for busy CI runners.
    let accuracy = par.latency_accuracy_vs(&seq);
    assert!(
        accuracy > 0.7,
        "slack-5 latency accuracy {accuracy} too low"
    );
}

#[test]
fn report_surfaces_row_aligned_shard_layout() {
    let report = SimulationBuilder::new()
        .geometry(Geometry::mesh2d(8, 8))
        .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, 0.03))
        .measured_cycles(500)
        .threads(4)
        .seed(1)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let shard = report.shard.expect("parallel run records shard layout");
    assert_eq!(shard.shards, 4);
    assert_eq!(shard.tiles_per_shard, vec![16, 16, 16, 16], "two rows each");
    assert_eq!(shard.cut_links, 24, "three row boundaries × eight links");
    // Sequential runs have no shard layout.
    let seq = SimulationBuilder::new()
        .geometry(Geometry::mesh2d(4, 4))
        .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, 0.03))
        .measured_cycles(200)
        .threads(1)
        .seed(1)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(seq.shard.is_none());
}
