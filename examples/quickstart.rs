//! Quickstart: simulate uniform-random traffic on an 8×8 mesh and print the
//! headline statistics.
//!
//! Run with `cargo run --release --example quickstart`.

use hornet::prelude::*;

fn main() -> Result<(), SimError> {
    let report = SimulationBuilder::new()
        .geometry(Geometry::mesh2d(8, 8))
        .routing(RoutingKind::Xy)
        .vc_allocation(VcAllocKind::Dynamic)
        .vcs_per_port(4)
        .vc_buffer_depth(4)
        .traffic(TrafficKind::uniform(0.02))
        .warmup_cycles(2_000)
        .measured_cycles(20_000)
        .threads(2)
        .seed(42)
        .build()?
        .run()?;

    println!("simulated cycles          : {}", report.measured_cycles);
    println!("host threads              : {}", report.threads);
    println!("sync mode                 : {}", report.sync_label);
    println!(
        "delivered packets         : {}",
        report.network.delivered_packets
    );
    println!(
        "avg in-network latency    : {:.2} cycles",
        report.network.avg_packet_latency()
    );
    println!(
        "avg hops                  : {:.2}",
        report.network.avg_hops()
    );
    println!(
        "throughput                : {:.4} packets/cycle",
        report.network.throughput()
    );
    println!(
        "simulation speed          : {:.0} cycles/s",
        report.simulation_speed()
    );
    Ok(())
}
