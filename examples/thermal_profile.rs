//! Domain example: power and thermal analysis of a RADIX-like workload on an
//! 8×8 mesh (the study behind Figures 13 and 14): per-tile power feeds an RC
//! thermal grid, and the resulting steady-state map shows the hotspot sitting
//! in the centre of the die even though the memory controller is in a corner.
//!
//! Run with `cargo run --release --example thermal_profile`.

use hornet::net::geometry::Geometry;
use hornet::power::energy::PowerConfig;
use hornet::power::thermal::ThermalConfig;
use hornet::sim::sim::{SimulationBuilder, TrafficKind};
use hornet::traffic::splash::SplashBenchmark;

fn main() {
    let report = SimulationBuilder::new()
        .geometry(Geometry::mesh2d(8, 8))
        .traffic(TrafficKind::splash(SplashBenchmark::Radix))
        .measured_cycles(30_000)
        .power_model(
            PowerConfig::default(),
            Some(ThermalConfig::default()),
            3_000,
            20_000.0,
        )
        .seed(13)
        .build()
        .expect("valid configuration")
        .run()
        .expect("runs");

    let power = report.power.expect("power model enabled");
    let thermal = report.thermal.expect("thermal model enabled");
    println!(
        "chip-wide average network power : {:.3} W",
        power.total_avg_w
    );
    println!(
        "peak network power              : {:.3} W",
        power.peak_total_w()
    );
    println!("hotspot tile                    : {}", thermal.hotspot_tile);
    println!(
        "peak temperature                : {:.2} C",
        thermal.peak_temp()
    );
    println!("\nsteady-state temperature map (C):");
    for y in 0..8 {
        let row: Vec<String> = (0..8)
            .map(|x| format!("{:6.2}", thermal.final_temperatures[y * 8 + x]))
            .collect();
        println!("  {}", row.join(" "));
    }
}
