//! Domain example: sweep routing algorithms and VC-allocation schemes over a
//! congested SPLASH-like workload (the kind of design-space exploration
//! Figures 9–11 of the paper perform) and print the resulting latency matrix.
//!
//! Run with `cargo run --release --example routing_vca_sweep`.

use hornet::net::geometry::Geometry;
use hornet::net::routing::RoutingKind;
use hornet::net::vca::VcAllocKind;
use hornet::traffic::splash::{SplashBenchmark, SplashWorkload};
use std::sync::Arc;

fn main() {
    let geometry = Arc::new(Geometry::mesh2d(8, 8));
    println!("benchmark=water (scaled up), 8x8 mesh, 4 VCs x 8 flits, 1 MC at node 0\n");
    println!(
        "{:<10} {:<10} {:>16}",
        "routing", "vca", "avg latency (cyc)"
    );
    for routing in [RoutingKind::Xy, RoutingKind::O1Turn, RoutingKind::Romm] {
        for vca in [VcAllocKind::Dynamic, VcAllocKind::Edvca] {
            let workload =
                SplashWorkload::new(SplashBenchmark::Water, Arc::clone(&geometry)).scaled(1.5);
            let mut network = workload.build_network(routing, vca, 4, 8, 7);
            network.run(1_000);
            network.reset_stats();
            network.run(8_000);
            let stats = network.stats();
            println!(
                "{:<10} {:<10} {:>16.2}",
                routing.label(),
                vca.label(),
                stats.avg_packet_latency()
            );
        }
    }
}
