//! Domain example: a full multicore simulation with the built-in MIPS-like
//! cores. Sixteen cores pass a token around a ring using the MPI-style
//! network syscalls; each core increments it, and node 0 receives it back with
//! the value 16.
//!
//! Run with `cargo run --release --example multicore_token_ring`.

use hornet::cpu::agent::{CoreAgent, CoreConfig};
use hornet::cpu::programs::token_ring_program;
use hornet::net::geometry::Geometry;
use hornet::net::ids::NodeId;
use hornet::net::routing::FlowSpec;
use hornet::sim::sim::{SimulationBuilder, TrafficKind};

fn main() {
    let nodes = 16usize;
    let geometry = Geometry::mesh2d(4, 4);
    let mut builder = SimulationBuilder::new()
        .geometry(geometry.clone())
        .traffic(TrafficKind::None)
        .flows(FlowSpec::all_to_all(&geometry))
        .threads(2)
        .seed(1);
    for i in 0..nodes {
        builder = builder.agent(
            NodeId::from(i),
            Box::new(CoreAgent::new(
                NodeId::from(i),
                nodes,
                token_ring_program(i, nodes),
                CoreConfig::default(),
            )),
        );
    }
    let report = builder
        .build()
        .expect("valid configuration")
        .run_to_completion(1_000_000)
        .expect("token ring completes");

    println!("token ring over {nodes} MIPS cores completed");
    println!("total cycles            : {}", report.measured_cycles);
    println!(
        "packets on the network  : {}",
        report.network.delivered_packets
    );
    println!(
        "avg packet latency      : {:.2} cycles",
        report.network.avg_packet_latency()
    );
    assert_eq!(
        report.network.delivered_packets, nodes as u64,
        "one token hop per core"
    );
}
