//! # HORNET-RS
//!
//! A parallel, highly configurable, cycle-level multicore network-on-chip
//! simulator, reproducing *"Scalable, accurate multicore simulation in the
//! 1000-core era"* (Lis et al., ISPASS 2011).
//!
//! This facade crate re-exports the individual subsystem crates under a single
//! convenient namespace:
//!
//! * [`net`] — the ingress-queued virtual-channel wormhole router model,
//!   interconnect geometries, table-driven routing and VC allocation.
//! * [`traffic`] — synthetic traffic patterns, trace-driven injection, and
//!   SPLASH-2-like workload synthesizers.
//! * [`mem`] — caches, MSI coherence, NUCA shared memory and memory
//!   controllers.
//! * [`cpu`] — the built-in MIPS-like core model, its assembler, the network
//!   syscall interface, and the Pin-like native frontend.
//! * [`power`] — ORION-like energy accounting and a HOTSPOT-like thermal grid.
//! * [`shard`] — the sharded execution runtime: topology-aware partitioning,
//!   lock-free boundary mailboxes on cut links, and slack-based neighbor
//!   synchronization.
//! * [`sim`] — the parallel simulation engine and the top-level
//!   [`sim::SimulationBuilder`] façade.
//!
//! # Quick start
//!
//! ```
//! use hornet::prelude::*;
//!
//! # fn main() -> Result<(), hornet::sim::SimError> {
//! let report = SimulationBuilder::new()
//!     .geometry(Geometry::mesh2d(4, 4))
//!     .routing(RoutingKind::Xy)
//!     .vc_allocation(VcAllocKind::Dynamic)
//!     .vcs_per_port(4)
//!     .vc_buffer_depth(4)
//!     .traffic(TrafficKind::uniform(0.05))
//!     .warmup_cycles(100)
//!     .measured_cycles(1_000)
//!     .seed(42)
//!     .build()?
//!     .run()?;
//! assert!(report.network.delivered_packets > 0);
//! # Ok(())
//! # }
//! ```
pub use hornet_core as sim;
pub use hornet_cpu as cpu;
pub use hornet_mem as mem;
pub use hornet_net as net;
pub use hornet_power as power;
pub use hornet_shard as shard;
pub use hornet_traffic as traffic;

/// Commonly used types, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::net::{
        config::NetworkConfig,
        flit::{Flit, Packet},
        geometry::Geometry,
        ids::{FlowId, NodeId, VcId},
        routing::RoutingKind,
        vca::VcAllocKind,
    };
    pub use crate::sim::{
        engine::SyncMode,
        report::SimReport,
        sim::{SimError, Simulation, SimulationBuilder, TrafficKind},
    };
    pub use crate::traffic::pattern::SyntheticPattern;
}
