//! A MIPS-like instruction set and a small embedded assembler.
//!
//! The paper's built-in core is a single-cycle, in-order MIPS simulator that
//! runs statically linked binaries produced by a MIPS cross-compiler. A full
//! GCC toolchain is out of scope here, so this module provides the same
//! programming model — 32 general-purpose registers, loads/stores, ALU
//! operations, branches, and the network system-call interface — with programs
//! assembled in Rust via [`ProgramBuilder`]. The calling convention for
//! syscalls follows MIPS o32: arguments in `a0..a3` (r4–r7), the syscall
//! number in `v0` (r2), results in `v0`/`v1` (r2/r3).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A register index (0–31). Register 0 is hard-wired to zero.
pub type Reg = u8;

/// Conventional MIPS register names.
pub mod regs {
    use super::Reg;
    /// Hard-wired zero.
    pub const ZERO: Reg = 0;
    /// Syscall number / first result.
    pub const V0: Reg = 2;
    /// Second result.
    pub const V1: Reg = 3;
    /// First argument.
    pub const A0: Reg = 4;
    /// Second argument.
    pub const A1: Reg = 5;
    /// Third argument.
    pub const A2: Reg = 6;
    /// Fourth argument.
    pub const A3: Reg = 7;
    /// Temporaries.
    pub const T0: Reg = 8;
    /// Temporary 1.
    pub const T1: Reg = 9;
    /// Temporary 2.
    pub const T2: Reg = 10;
    /// Temporary 3.
    pub const T3: Reg = 11;
    /// Saved registers.
    pub const S0: Reg = 16;
    /// Saved register 1.
    pub const S1: Reg = 17;
    /// Saved register 2.
    pub const S2: Reg = 18;
    /// Saved register 3.
    pub const S3: Reg = 19;
    /// Stack pointer.
    pub const SP: Reg = 29;
    /// Return address.
    pub const RA: Reg = 31;
}

/// The network / OS services exposed through the `syscall` instruction
/// (paper §II-D2: send packets on specific flows, poll the processor ingress,
/// receive packets from specific queues; sends and receives are DMA-like and
/// do not stall the core).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Syscall {
    /// `a0` = destination node, `a1` = payload word, `a2` = payload length in
    /// words (the remaining words are zero-filled). Non-blocking.
    NetSend = 1,
    /// `v0` ← number of packets waiting at the processor ingress
    /// (optionally from source `a0` if `a1` != 0).
    NetPoll = 2,
    /// Receive a packet: `a0` = source node (or any if `a1` == 0).
    /// Blocks until a packet is available; then `v0` ← first payload word,
    /// `v1` ← source node.
    NetRecv = 3,
    /// `v0` ← this core's node id.
    MyNode = 4,
    /// `v0` ← total number of nodes.
    NodeCount = 5,
    /// Halt the core.
    Exit = 10,
}

impl Syscall {
    /// Decodes a syscall number.
    pub fn from_number(n: u64) -> Option<Self> {
        match n {
            1 => Some(Syscall::NetSend),
            2 => Some(Syscall::NetPoll),
            3 => Some(Syscall::NetRecv),
            4 => Some(Syscall::MyNode),
            5 => Some(Syscall::NodeCount),
            10 => Some(Syscall::Exit),
            _ => None,
        }
    }
}

/// One instruction of the MIPS-like ISA.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Inst {
    /// `rd ← rs + rt`
    Add(Reg, Reg, Reg),
    /// `rd ← rs - rt`
    Sub(Reg, Reg, Reg),
    /// `rd ← rs * rt`
    Mul(Reg, Reg, Reg),
    /// `rd ← rs & rt`
    And(Reg, Reg, Reg),
    /// `rd ← rs | rt`
    Or(Reg, Reg, Reg),
    /// `rd ← rs ^ rt`
    Xor(Reg, Reg, Reg),
    /// `rd ← (rs < rt) ? 1 : 0` (unsigned)
    Sltu(Reg, Reg, Reg),
    /// `rd ← rs + imm`
    Addi(Reg, Reg, i64),
    /// `rd ← imm`
    Li(Reg, u64),
    /// `rd ← mem[rs + offset]`
    Lw(Reg, Reg, i64),
    /// `mem[rs + offset] ← rt`
    Sw(Reg, Reg, i64),
    /// Branch to `target` if `rs == rt`.
    Beq(Reg, Reg, usize),
    /// Branch to `target` if `rs != rt`.
    Bne(Reg, Reg, usize),
    /// Unconditional jump to `target`.
    J(usize),
    /// Jump and link: `ra ← pc + 1`, jump to `target`.
    Jal(usize),
    /// Jump to the address in `rs`.
    Jr(Reg),
    /// Invoke the service selected by `v0`.
    Syscall,
    /// No operation.
    Nop,
    /// Halt the core (equivalent to `Syscall` with `v0 = Exit`).
    Halt,
}

/// A fully assembled program.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// The instruction stream.
    pub instructions: Vec<Inst>,
    /// Initial data segment: (byte address, word value).
    pub data: Vec<(u64, u64)>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

/// A tiny two-pass assembler: emit instructions (possibly referring to labels
/// that are defined later), then [`assemble`](Self::assemble).
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    instructions: Vec<PendingInst>,
    labels: HashMap<String, usize>,
    data: Vec<(u64, u64)>,
}

#[derive(Clone, Debug)]
enum PendingInst {
    Ready(Inst),
    BranchEq(Reg, Reg, String),
    BranchNe(Reg, Reg, String),
    Jump(String),
    JumpAndLink(String),
}

/// Errors produced by [`ProgramBuilder::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssembleError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AssembleError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AssembleError {}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.labels
            .insert(name.to_string(), self.instructions.len());
        self
    }

    /// Emits an already-resolved instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.instructions.push(PendingInst::Ready(inst));
        self
    }

    /// Emits `beq rs, rt, label`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.instructions
            .push(PendingInst::BranchEq(rs, rt, label.to_string()));
        self
    }

    /// Emits `bne rs, rt, label`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.instructions
            .push(PendingInst::BranchNe(rs, rt, label.to_string()));
        self
    }

    /// Emits `j label`.
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.instructions.push(PendingInst::Jump(label.to_string()));
        self
    }

    /// Emits `jal label`.
    pub fn jal(&mut self, label: &str) -> &mut Self {
        self.instructions
            .push(PendingInst::JumpAndLink(label.to_string()));
        self
    }

    /// Adds an initial data word at a byte address.
    pub fn word(&mut self, addr: u64, value: u64) -> &mut Self {
        self.data.push((addr, value));
        self
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AssembleError`] if a referenced label is undefined.
    pub fn assemble(&self) -> Result<Program, AssembleError> {
        let resolve = |name: &str| {
            self.labels
                .get(name)
                .copied()
                .ok_or_else(|| AssembleError::UndefinedLabel(name.to_string()))
        };
        let mut instructions = Vec::with_capacity(self.instructions.len());
        for p in &self.instructions {
            instructions.push(match p {
                PendingInst::Ready(i) => *i,
                PendingInst::BranchEq(a, b, l) => Inst::Beq(*a, *b, resolve(l)?),
                PendingInst::BranchNe(a, b, l) => Inst::Bne(*a, *b, resolve(l)?),
                PendingInst::Jump(l) => Inst::J(resolve(l)?),
                PendingInst::JumpAndLink(l) => Inst::Jal(resolve(l)?),
            });
        }
        Ok(Program {
            instructions,
            data: self.data.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regs::*;

    #[test]
    fn assembler_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        b.inst(Inst::Li(T0, 3));
        b.label("loop");
        b.inst(Inst::Addi(T0, T0, -1));
        b.bne(T0, ZERO, "loop");
        b.j("end");
        b.inst(Inst::Nop);
        b.label("end");
        b.inst(Inst::Halt);
        let p = b.assemble().expect("assembles");
        assert_eq!(p.len(), 6);
        assert_eq!(p.instructions[2], Inst::Bne(T0, ZERO, 1));
        assert_eq!(p.instructions[3], Inst::J(5));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.j("nowhere");
        assert_eq!(
            b.assemble(),
            Err(AssembleError::UndefinedLabel("nowhere".to_string()))
        );
        assert!(b.assemble().unwrap_err().to_string().contains("nowhere"));
    }

    #[test]
    fn syscall_numbers_roundtrip() {
        for s in [
            Syscall::NetSend,
            Syscall::NetPoll,
            Syscall::NetRecv,
            Syscall::MyNode,
            Syscall::NodeCount,
            Syscall::Exit,
        ] {
            assert_eq!(Syscall::from_number(s as u64), Some(s));
        }
        assert_eq!(Syscall::from_number(99), None);
    }

    #[test]
    fn data_words_are_carried_through() {
        let mut b = ProgramBuilder::new();
        b.word(0x100, 7).word(0x108, 8);
        b.inst(Inst::Halt);
        let p = b.assemble().unwrap();
        assert_eq!(p.data, vec![(0x100, 7), (0x108, 8)]);
        assert!(!p.is_empty());
    }
}
