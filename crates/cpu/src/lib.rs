//! # hornet-cpu
//!
//! Processor frontends for HORNET-RS (paper §II-D):
//!
//! * [`isa`] / [`core`] — a single-cycle, in-order MIPS-like core with an
//!   embedded assembler and the MPI-style network syscall interface (send,
//!   poll, receive with DMA semantics);
//! * [`agent`] — the tile agent coupling a core to its memory hierarchy and
//!   the simulated network;
//! * [`pinlike`] — the Pin-like native frontend: instrumented threads produce
//!   a stream of compute / load / store / send / receive events that are
//!   executed against the simulated memory hierarchy;
//! * [`programs`] — ready-made workloads: Cannon's matrix multiplication
//!   (message passing), a token ring, a vector-sum kernel, and the
//!   blackscholes-like synthetic thread configuration.
//!
//! ```
//! use hornet_cpu::isa::{Inst, ProgramBuilder, regs::*};
//! use hornet_cpu::core::Core;
//!
//! let mut b = ProgramBuilder::new();
//! b.inst(Inst::Li(T0, 2)).inst(Inst::Addi(T0, T0, 3)).inst(Inst::Halt);
//! let core = Core::new(b.assemble()?);
//! assert!(!core.halted());
//! # Ok::<(), hornet_cpu::isa::AssembleError>(())
//! ```

pub mod agent;
pub mod core;
pub mod isa;
pub mod pinlike;
pub mod programs;

pub use agent::{CoreAgent, CoreConfig};
pub use core::{Core, CoreContext, CoreStats};
pub use isa::{Inst, Program, ProgramBuilder, Syscall};
pub use pinlike::{
    NativeFrontendAgent, NativeOp, NativeThread, SyntheticThread, SyntheticThreadConfig,
};
pub use programs::{token_ring_program, vector_sum_program, CannonConfig, CannonThread};
