//! The Pin-like native frontend.
//!
//! In the paper, HORNET can instrument native x86 binaries with Pin: each
//! application thread is mapped to a tile, every memory reference is routed
//! through the simulated memory hierarchy, and the non-memory portion of each
//! instruction is charged a table-driven cost. Pin itself is proprietary and
//! x86-specific, so this module reproduces the *interface*: a
//! [`NativeThread`] produces the same event stream Pin would (compute
//! intervals, loads, stores, and message-passing operations), and the
//! [`NativeFrontendAgent`] executes it against the simulated memory hierarchy
//! and network, with identical stall semantics to the MIPS core.
//!
//! [`SyntheticThread`] synthesizes such event streams from a few parameters
//! (instruction count, memory-reference fraction, working-set size, write
//! fraction, sharing), which is how the PARSEC-like `blackscholes` workload of
//! Figure 6 is reproduced without the original binaries.

use hornet_mem::hierarchy::{MemoryConfig, MemoryNode};
use hornet_mem::l1::CoreMemOp;
use hornet_mem::msg::MemMessage;
use hornet_net::agent::{NodeAgent, NodeIo};
use hornet_net::flit::{Packet, Payload};
use hornet_net::ids::{Cycle, FlowId, NodeId};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::agent::USER_TAG;

/// One event produced by an instrumented native thread.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NativeOp {
    /// Execute `cycles` of non-memory work (the table-driven instruction cost).
    Compute(u32),
    /// Load from a byte address.
    Load(u64),
    /// Store a value to a byte address.
    Store(u64, u64),
    /// Send a message of `len_flits` flits carrying `word` to `dst`.
    Send {
        /// Destination tile.
        dst: NodeId,
        /// Payload word.
        word: u64,
        /// Packet length in flits.
        len_flits: u32,
    },
    /// Block until a message arrives (from a specific tile if given).
    Recv {
        /// Optional source filter.
        from: Option<NodeId>,
    },
    /// The thread has finished.
    Finish,
}

/// An instrumented native thread: the producer side of the Pin interface.
pub trait NativeThread: Send {
    /// Produces the next event. Called once per previous event completion.
    fn next_op(&mut self, rng: &mut ChaCha12Rng) -> NativeOp;

    /// Notifies the thread that a `Recv` completed.
    fn on_recv(&mut self, _src: NodeId, _word: u64) {}

    /// A short label for reports.
    fn label(&self) -> &str {
        "native"
    }
}

/// Execution statistics of a native frontend tile.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NativeStats {
    /// Events executed (excluding per-cycle compute ticks).
    pub ops: u64,
    /// Cycles spent computing.
    pub compute_cycles: u64,
    /// Cycles stalled on memory.
    pub mem_stall_cycles: u64,
    /// Cycles stalled on receives.
    pub recv_stall_cycles: u64,
    /// Messages sent.
    pub sends: u64,
    /// Messages received.
    pub recvs: u64,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum FrontendState {
    Ready,
    Computing(u32),
    WaitingMem,
    WaitingRecv(Option<NodeId>),
    Done,
}

/// The agent that executes a [`NativeThread`] on one tile.
pub struct NativeFrontendAgent {
    node: NodeId,
    node_count: usize,
    thread: Box<dyn NativeThread>,
    memory: MemoryNode,
    state: FrontendState,
    user_rx: VecDeque<(NodeId, u64)>,
    stats: NativeStats,
    /// CPU cycles simulated per network cycle.
    clock_ratio: u32,
}

impl std::fmt::Debug for NativeFrontendAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeFrontendAgent")
            .field("node", &self.node)
            .field("state", &self.state)
            .finish()
    }
}

impl NativeFrontendAgent {
    /// Creates a native-frontend agent for `node` running `thread`.
    pub fn new(
        node: NodeId,
        node_count: usize,
        thread: Box<dyn NativeThread>,
        memory: MemoryConfig,
        clock_ratio: u32,
    ) -> Self {
        Self {
            node,
            node_count,
            thread,
            memory: MemoryNode::new(node, node_count, memory),
            state: FrontendState::Ready,
            user_rx: VecDeque::new(),
            stats: NativeStats::default(),
            clock_ratio: clock_ratio.max(1),
        }
    }

    /// Execution statistics.
    pub fn stats(&self) -> &NativeStats {
        &self.stats
    }

    /// The tile's memory system.
    pub fn memory(&self) -> &MemoryNode {
        &self.memory
    }

    /// True once the thread has finished.
    pub fn done(&self) -> bool {
        self.state == FrontendState::Done
    }

    fn demux(&mut self, io: &mut dyn NodeIo, now: Cycle) {
        while let Some(d) = io.try_recv() {
            let words = d.packet.payload.words();
            match words.first() {
                Some(&USER_TAG) => self
                    .user_rx
                    .push_back((d.packet.src, words.get(1).copied().unwrap_or(0))),
                Some(_) => {
                    if let Some(msg) = MemMessage::decode(&d.packet.payload) {
                        self.memory.handle_message(msg, now);
                    } else {
                        self.user_rx.push_back((d.packet.src, 0));
                    }
                }
                None => self.user_rx.push_back((d.packet.src, 0)),
            }
        }
    }

    fn step_cpu(&mut self, io: &mut dyn NodeIo, now: Cycle, rng: &mut ChaCha12Rng) {
        match self.state {
            FrontendState::Done => {}
            FrontendState::Computing(remaining) => {
                self.stats.compute_cycles += 1;
                self.state = if remaining <= 1 {
                    FrontendState::Ready
                } else {
                    FrontendState::Computing(remaining - 1)
                };
            }
            FrontendState::WaitingMem => {
                if self.memory.take_completion().is_some() {
                    self.state = FrontendState::Ready;
                } else {
                    self.stats.mem_stall_cycles += 1;
                }
            }
            FrontendState::WaitingRecv(from) => {
                let idx = match from {
                    None => (!self.user_rx.is_empty()).then_some(0),
                    Some(src) => self.user_rx.iter().position(|(s, _)| *s == src),
                };
                if let Some(i) = idx {
                    let (src, word) = self.user_rx.remove(i).expect("index valid");
                    self.thread.on_recv(src, word);
                    self.stats.recvs += 1;
                    self.state = FrontendState::Ready;
                } else {
                    self.stats.recv_stall_cycles += 1;
                }
            }
            FrontendState::Ready => {
                let op = self.thread.next_op(rng);
                self.stats.ops += 1;
                match op {
                    NativeOp::Compute(c) => {
                        if c > 0 {
                            self.state = FrontendState::Computing(c);
                        }
                    }
                    NativeOp::Load(addr) => {
                        if self
                            .memory
                            .core_access(CoreMemOp::Load { addr }, now)
                            .is_none()
                        {
                            self.state = FrontendState::WaitingMem;
                        }
                    }
                    NativeOp::Store(addr, value) => {
                        if self
                            .memory
                            .core_access(CoreMemOp::Store { addr, value }, now)
                            .is_none()
                        {
                            self.state = FrontendState::WaitingMem;
                        }
                    }
                    NativeOp::Send {
                        dst,
                        word,
                        len_flits,
                    } => {
                        self.stats.sends += 1;
                        if dst != self.node && dst.index() < self.node_count {
                            let id = io.alloc_packet_id();
                            let packet = Packet::new(
                                id,
                                FlowId::for_pair(self.node, dst, self.node_count),
                                self.node,
                                dst,
                                len_flits.max(1),
                                now,
                            )
                            .with_payload(Payload(vec![USER_TAG, word]));
                            io.send(packet);
                        }
                    }
                    NativeOp::Recv { from } => self.state = FrontendState::WaitingRecv(from),
                    NativeOp::Finish => self.state = FrontendState::Done,
                }
            }
        }
    }
}

impl NodeAgent for NativeFrontendAgent {
    fn tick(&mut self, io: &mut dyn NodeIo, rng: &mut ChaCha12Rng) {
        let now = io.cycle();
        self.demux(io, now);
        self.memory.tick(io, now);
        for _ in 0..self.clock_ratio {
            if self.state == FrontendState::Done {
                break;
            }
            self.step_cpu(io, now, rng);
        }
        self.memory.tick(io, now);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.finished() {
            None
        } else {
            Some(now + 1)
        }
    }

    fn finished(&self) -> bool {
        self.state == FrontendState::Done && self.memory.is_quiescent()
    }

    fn label(&self) -> &str {
        self.thread.label()
    }
}

/// Parameters of a synthetic instrumented thread (the `blackscholes`-like
/// workload).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SyntheticThreadConfig {
    /// Total instructions to execute.
    pub instructions: u64,
    /// Fraction of instructions that reference memory.
    pub memory_fraction: f64,
    /// Fraction of memory references that are writes.
    pub write_fraction: f64,
    /// Private working-set size in bytes.
    pub working_set_bytes: u64,
    /// Fraction of memory references that touch data shared with other tiles
    /// (homed across the whole chip rather than in the private region).
    pub shared_fraction: f64,
    /// Shared region size in bytes.
    pub shared_bytes: u64,
    /// Non-memory cost per instruction, in cycles.
    pub compute_cost: u32,
}

impl Default for SyntheticThreadConfig {
    fn default() -> Self {
        Self {
            instructions: 100_000,
            memory_fraction: 0.3,
            write_fraction: 0.3,
            working_set_bytes: 64 * 1024,
            shared_fraction: 0.05,
            shared_bytes: 1024 * 1024,
            compute_cost: 1,
        }
    }
}

impl SyntheticThreadConfig {
    /// The blackscholes-like profile used in the Figure 6 reproduction:
    /// mostly private compute with a modest shared read-mostly footprint.
    pub fn blackscholes(instructions: u64) -> Self {
        Self {
            instructions,
            memory_fraction: 0.35,
            write_fraction: 0.2,
            working_set_bytes: 32 * 1024,
            shared_fraction: 0.08,
            shared_bytes: 4 * 1024 * 1024,
            compute_cost: 1,
        }
    }
}

/// A synthetic instrumented thread.
#[derive(Clone, Debug)]
pub struct SyntheticThread {
    config: SyntheticThreadConfig,
    node: NodeId,
    executed: u64,
}

impl SyntheticThread {
    /// Creates a synthetic thread for a tile.
    pub fn new(node: NodeId, config: SyntheticThreadConfig) -> Self {
        Self {
            config,
            node,
            executed: 0,
        }
    }
}

impl NativeThread for SyntheticThread {
    fn next_op(&mut self, rng: &mut ChaCha12Rng) -> NativeOp {
        if self.executed >= self.config.instructions {
            return NativeOp::Finish;
        }
        self.executed += 1;
        if rng.gen::<f64>() >= self.config.memory_fraction {
            return NativeOp::Compute(self.config.compute_cost);
        }
        // Memory reference: pick private or shared region.
        let addr = if rng.gen::<f64>() < self.config.shared_fraction {
            // Shared region: global addresses (line-aligned).
            (rng.gen_range(0..self.config.shared_bytes.max(64)) / 8) * 8
        } else {
            // Private region: offset by the node index so tiles do not falsely
            // share their private data.
            let base = 0x1000_0000u64 + (self.node.raw() as u64) * 0x100_0000;
            base + (rng.gen_range(0..self.config.working_set_bytes.max(64)) / 8) * 8
        };
        if rng.gen::<f64>() < self.config.write_fraction {
            NativeOp::Store(addr, rng.gen())
        } else {
            NativeOp::Load(addr)
        }
    }

    fn label(&self) -> &str {
        "blackscholes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornet_net::config::NetworkConfig;
    use hornet_net::geometry::Geometry;
    use hornet_net::network::Network;
    use hornet_net::routing::FlowSpec;
    use rand::SeedableRng;

    #[test]
    fn synthetic_thread_produces_a_bounded_stream() {
        let mut t = SyntheticThread::new(
            NodeId::new(1),
            SyntheticThreadConfig {
                instructions: 100,
                ..SyntheticThreadConfig::default()
            },
        );
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut count = 0;
        loop {
            match t.next_op(&mut rng) {
                NativeOp::Finish => break,
                _ => count += 1,
            }
            assert!(count <= 100);
        }
        assert_eq!(count, 100);
        // After finishing it keeps reporting Finish.
        assert_eq!(t.next_op(&mut rng), NativeOp::Finish);
    }

    #[test]
    fn native_frontend_runs_over_the_network() {
        let g = Geometry::mesh2d(2, 2);
        let cfg = NetworkConfig::new(g.clone()).with_flows(FlowSpec::all_to_all(&g));
        let mut net = Network::new(&cfg, 23).unwrap();
        for i in 0..4u32 {
            let node = NodeId::new(i);
            let thread = SyntheticThread::new(
                node,
                SyntheticThreadConfig {
                    instructions: 300,
                    memory_fraction: 0.5,
                    shared_fraction: 0.5,
                    shared_bytes: 4096,
                    ..SyntheticThreadConfig::default()
                },
            );
            net.attach_agent(
                node,
                Box::new(NativeFrontendAgent::new(
                    node,
                    4,
                    Box::new(thread),
                    hornet_mem::hierarchy::MemoryConfig::default(),
                    1,
                )),
            );
        }
        assert!(net.run_to_completion(2_000_000), "all threads must finish");
        let stats = net.stats();
        assert!(
            stats.delivered_packets > 0,
            "shared misses must generate coherence traffic"
        );
    }

    #[test]
    fn send_recv_ops_pass_messages() {
        /// Thread 0 sends then finishes; thread 1 receives then finishes.
        struct Sender {
            sent: bool,
        }
        impl NativeThread for Sender {
            fn next_op(&mut self, _rng: &mut ChaCha12Rng) -> NativeOp {
                if self.sent {
                    NativeOp::Finish
                } else {
                    self.sent = true;
                    NativeOp::Send {
                        dst: NodeId::new(3),
                        word: 7,
                        len_flits: 6,
                    }
                }
            }
        }
        struct Receiver {
            got: Option<u64>,
        }
        impl NativeThread for Receiver {
            fn next_op(&mut self, _rng: &mut ChaCha12Rng) -> NativeOp {
                if self.got.is_some() {
                    NativeOp::Finish
                } else {
                    NativeOp::Recv { from: None }
                }
            }
            fn on_recv(&mut self, _src: NodeId, word: u64) {
                self.got = Some(word);
            }
        }
        let g = Geometry::mesh2d(2, 2);
        let cfg = NetworkConfig::new(g.clone()).with_flows(FlowSpec::all_to_all(&g));
        let mut net = Network::new(&cfg, 2).unwrap();
        net.attach_agent(
            NodeId::new(0),
            Box::new(NativeFrontendAgent::new(
                NodeId::new(0),
                4,
                Box::new(Sender { sent: false }),
                hornet_mem::hierarchy::MemoryConfig::default(),
                1,
            )),
        );
        net.attach_agent(
            NodeId::new(3),
            Box::new(NativeFrontendAgent::new(
                NodeId::new(3),
                4,
                Box::new(Receiver { got: None }),
                hornet_mem::hierarchy::MemoryConfig::default(),
                1,
            )),
        );
        assert!(net.run_to_completion(100_000));
        assert_eq!(net.stats().delivered_packets, 1);
    }
}
