//! Ready-made guest workloads.
//!
//! * [`CannonThread`] — Cannon's algorithm for matrix multiplication using
//!   message passing, the workload the paper uses to quantify the difference
//!   between trace-driven and closed-loop (core + network) simulation
//!   (Figure 12). [`cannon_ideal_schedule`] produces the send schedule an
//!   ideal single-cycle network would yield, i.e. the "trace" side of that
//!   comparison.
//! * [`token_ring_program`] — a small MIPS program exercising the network
//!   syscall interface (each core increments a token and forwards it).
//! * [`vector_sum_program`] — a pure compute/memory MIPS kernel.

use crate::isa::{regs::*, Inst, Program, ProgramBuilder, Syscall};
use crate::pinlike::{NativeOp, NativeThread};
use hornet_net::ids::{Cycle, NodeId};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the Cannon matrix-multiplication workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CannonConfig {
    /// Matrix dimension (the paper uses 128×128).
    pub matrix_n: usize,
    /// Core grid dimension (the paper uses 8×8 = 64 cores).
    pub grid_p: usize,
    /// Cycles of compute per multiply-accumulate (set low to stress the
    /// network, as the paper does).
    pub cycles_per_madd: f64,
    /// Bytes per matrix element (set high to stress the network).
    pub bytes_per_element: usize,
    /// Bytes carried per flit.
    pub bytes_per_flit: usize,
    /// Mapping from logical grid position (row-major) to physical node.
    /// Identity when empty; the paper maps cores randomly to stress the
    /// network.
    pub mapping: Vec<NodeId>,
}

impl Default for CannonConfig {
    fn default() -> Self {
        Self {
            matrix_n: 128,
            grid_p: 8,
            cycles_per_madd: 1.0,
            bytes_per_element: 16,
            bytes_per_flit: 16,
            mapping: Vec::new(),
        }
    }
}

impl CannonConfig {
    /// Block dimension per core.
    pub fn block_dim(&self) -> usize {
        self.matrix_n / self.grid_p
    }

    /// Flits needed to ship one block.
    pub fn flits_per_block(&self) -> u32 {
        let bytes = self.block_dim() * self.block_dim() * self.bytes_per_element;
        (bytes.div_ceil(self.bytes_per_flit)).max(1) as u32
    }

    /// Compute cycles per round (one local block multiply).
    pub fn compute_cycles_per_round(&self) -> u32 {
        let b = self.block_dim() as f64;
        ((b * b * b) * self.cycles_per_madd).max(1.0) as u32
    }

    /// Physical node for logical grid position (row, col).
    pub fn node_at(&self, row: usize, col: usize) -> NodeId {
        let logical = row * self.grid_p + col;
        if self.mapping.is_empty() {
            NodeId::from(logical)
        } else {
            self.mapping[logical]
        }
    }

    /// Builds a random logical→physical mapping over `node_count` nodes
    /// (deterministic in `seed`), as the paper does to stress the network.
    pub fn with_random_mapping(mut self, node_count: usize, seed: u64) -> Self {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        assert!(node_count >= self.grid_p * self.grid_p);
        let mut nodes: Vec<NodeId> = (0..self.grid_p * self.grid_p).map(NodeId::from).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        nodes.shuffle(&mut rng);
        self.mapping = nodes;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the matrix does not divide evenly over the core grid.
    pub fn validated(self) -> Self {
        assert!(self.grid_p > 0 && self.matrix_n.is_multiple_of(self.grid_p));
        assert!(self.mapping.is_empty() || self.mapping.len() == self.grid_p * self.grid_p);
        self
    }
}

/// Phase within one Cannon round.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum CannonPhase {
    Compute,
    SendA,
    SendB,
    RecvA,
    RecvB,
    NextRound,
}

/// One core's thread of Cannon's algorithm (message-passing formulation).
#[derive(Clone, Debug)]
pub struct CannonThread {
    config: CannonConfig,
    row: usize,
    col: usize,
    round: usize,
    phase: CannonPhase,
}

impl CannonThread {
    /// Creates the thread for the core at logical grid position (row, col).
    pub fn new(config: CannonConfig, row: usize, col: usize) -> Self {
        Self {
            config,
            row,
            col,
            round: 0,
            phase: CannonPhase::Compute,
        }
    }

    fn left(&self) -> NodeId {
        let p = self.config.grid_p;
        self.config.node_at(self.row, (self.col + p - 1) % p)
    }

    fn up(&self) -> NodeId {
        let p = self.config.grid_p;
        self.config.node_at((self.row + p - 1) % p, self.col)
    }

    fn right(&self) -> NodeId {
        let p = self.config.grid_p;
        self.config.node_at(self.row, (self.col + 1) % p)
    }

    fn below(&self) -> NodeId {
        let p = self.config.grid_p;
        self.config.node_at((self.row + 1) % p, self.col)
    }
}

impl NativeThread for CannonThread {
    fn next_op(&mut self, _rng: &mut ChaCha12Rng) -> NativeOp {
        if self.round >= self.config.grid_p {
            return NativeOp::Finish;
        }
        let flits = self.config.flits_per_block();
        match self.phase {
            CannonPhase::Compute => {
                self.phase = CannonPhase::SendA;
                NativeOp::Compute(self.config.compute_cycles_per_round())
            }
            CannonPhase::SendA => {
                self.phase = CannonPhase::SendB;
                NativeOp::Send {
                    dst: self.left(),
                    word: (self.round as u64) << 8,
                    len_flits: flits,
                }
            }
            CannonPhase::SendB => {
                self.phase = CannonPhase::RecvA;
                NativeOp::Send {
                    dst: self.up(),
                    word: (self.round as u64) << 8 | 1,
                    len_flits: flits,
                }
            }
            CannonPhase::RecvA => {
                self.phase = CannonPhase::RecvB;
                NativeOp::Recv {
                    from: Some(self.right()),
                }
            }
            CannonPhase::RecvB => {
                self.phase = CannonPhase::NextRound;
                NativeOp::Recv {
                    from: Some(self.below()),
                }
            }
            CannonPhase::NextRound => {
                self.round += 1;
                self.phase = CannonPhase::Compute;
                if self.round >= self.config.grid_p {
                    NativeOp::Finish
                } else {
                    NativeOp::Compute(0)
                }
            }
        }
    }

    fn label(&self) -> &str {
        "cannon"
    }
}

/// The send schedule Cannon's algorithm would produce on an ideal
/// single-cycle network (every receive completes the cycle after the matching
/// send): the "trace-based" side of Figure 12. Returns
/// `(timestamp, src, dst, flits)` tuples, one per block transfer.
pub fn cannon_ideal_schedule(config: &CannonConfig) -> Vec<(Cycle, NodeId, NodeId, u32)> {
    let p = config.grid_p;
    let compute = config.compute_cycles_per_round() as Cycle;
    let flits = config.flits_per_block();
    let mut events = Vec::new();
    // With an ideal network every core proceeds in lockstep: round r's sends
    // all happen at r * (compute + 2) + compute (the +2 covers the two send
    // ops themselves).
    for round in 0..p {
        let t = round as Cycle * (compute + 2) + compute;
        for row in 0..p {
            for col in 0..p {
                let thread = CannonThread::new(config.clone(), row, col);
                let src = config.node_at(row, col);
                events.push((t, src, thread.left(), flits));
                events.push((t + 1, src, thread.up(), flits));
            }
        }
    }
    events
}

/// Total execution time of Cannon's algorithm on an ideal single-cycle
/// network (the baseline the closed-loop run is compared against).
pub fn cannon_ideal_execution_time(config: &CannonConfig) -> Cycle {
    let compute = config.compute_cycles_per_round() as Cycle;
    config.grid_p as Cycle * (compute + 2) + 1
}

/// A MIPS program implementing one node of a token ring: node 0 injects a
/// token with value 1; every node receives the token, increments it, and
/// forwards it to `(node + 1) % node_count`; node 0 finally receives the
/// token back (value = `node_count`) into register `S0`.
pub fn token_ring_program(node: usize, node_count: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let next = ((node + 1) % node_count) as u64;
    if node == 0 {
        // Send the initial token.
        b.inst(Inst::Li(A0, next));
        b.inst(Inst::Li(A1, 1));
        b.inst(Inst::Li(A2, 2));
        b.inst(Inst::Li(V0, Syscall::NetSend as u64));
        b.inst(Inst::Syscall);
        // Wait for it to come back.
        b.inst(Inst::Li(A1, 0));
        b.inst(Inst::Li(V0, Syscall::NetRecv as u64));
        b.inst(Inst::Syscall);
        b.inst(Inst::Add(S0, V0, ZERO));
        b.inst(Inst::Halt);
    } else {
        // Receive, increment, forward.
        b.inst(Inst::Li(A1, 0));
        b.inst(Inst::Li(V0, Syscall::NetRecv as u64));
        b.inst(Inst::Syscall);
        b.inst(Inst::Addi(T0, V0, 1));
        b.inst(Inst::Li(A0, next));
        b.inst(Inst::Add(A1, T0, ZERO));
        b.inst(Inst::Li(A2, 2));
        b.inst(Inst::Li(V0, Syscall::NetSend as u64));
        b.inst(Inst::Syscall);
        b.inst(Inst::Add(S0, T0, ZERO));
        b.inst(Inst::Halt);
    }
    b.assemble().expect("token ring program assembles")
}

/// A MIPS kernel that stores `count` consecutive words and sums them back,
/// leaving the sum in `S0`. Exercises the cache hierarchy without any
/// message passing.
pub fn vector_sum_program(base_addr: u64, count: u64) -> Program {
    let mut b = ProgramBuilder::new();
    // Store phase: mem[base + 8*i] = i + 1.
    b.inst(Inst::Li(T0, base_addr));
    b.inst(Inst::Li(T1, 0)); // i
    b.inst(Inst::Li(T3, count));
    b.label("store");
    b.inst(Inst::Addi(T2, T1, 1));
    b.inst(Inst::Sw(T2, T0, 0));
    b.inst(Inst::Addi(T0, T0, 8));
    b.inst(Inst::Addi(T1, T1, 1));
    b.bne(T1, T3, "store");
    // Load phase: S0 = sum.
    b.inst(Inst::Li(T0, base_addr));
    b.inst(Inst::Li(T1, 0));
    b.inst(Inst::Li(S0, 0));
    b.label("load");
    b.inst(Inst::Lw(T2, T0, 0));
    b.inst(Inst::Add(S0, S0, T2));
    b.inst(Inst::Addi(T0, T0, 8));
    b.inst(Inst::Addi(T1, T1, 1));
    b.bne(T1, T3, "load");
    b.inst(Inst::Halt);
    b.assemble().expect("vector sum program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cannon_config_arithmetic() {
        let c = CannonConfig::default().validated();
        assert_eq!(c.block_dim(), 16);
        assert_eq!(c.flits_per_block(), 16 * 16 * 16 / 16);
        assert!(c.compute_cycles_per_round() >= 1024);
        assert_eq!(c.node_at(0, 0), NodeId::new(0));
        assert_eq!(c.node_at(7, 7), NodeId::new(63));
    }

    #[test]
    fn random_mapping_is_a_permutation() {
        let c = CannonConfig::default()
            .with_random_mapping(64, 5)
            .validated();
        let mut seen: Vec<u32> = c.mapping.iter().map(|n| n.raw()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn cannon_thread_emits_p_rounds() {
        let config = CannonConfig {
            matrix_n: 8,
            grid_p: 2,
            ..CannonConfig::default()
        }
        .validated();
        let mut t = CannonThread::new(config.clone(), 0, 1);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut sends = 0;
        let mut recvs = 0;
        loop {
            match t.next_op(&mut rng) {
                NativeOp::Finish => break,
                NativeOp::Send { dst, .. } => {
                    sends += 1;
                    assert_ne!(dst, config.node_at(0, 1));
                }
                NativeOp::Recv { .. } => recvs += 1,
                _ => {}
            }
        }
        assert_eq!(sends, 2 * config.grid_p);
        assert_eq!(recvs, 2 * config.grid_p);
    }

    #[test]
    fn ideal_schedule_covers_all_transfers() {
        let config = CannonConfig {
            matrix_n: 16,
            grid_p: 4,
            ..CannonConfig::default()
        }
        .validated();
        let sched = cannon_ideal_schedule(&config);
        assert_eq!(sched.len(), 4 * 4 * 4 * 2); // p rounds x p^2 cores x 2 sends
        let horizon = cannon_ideal_execution_time(&config);
        assert!(sched.iter().all(|(t, ..)| *t < horizon));
    }

    #[test]
    fn token_ring_programs_assemble_for_all_nodes() {
        for n in 0..8 {
            let p = token_ring_program(n, 8);
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn vector_sum_program_assembles() {
        let p = vector_sum_program(0x2000, 10);
        assert!(p.len() > 10);
    }
}
