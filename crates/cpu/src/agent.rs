//! The tile agent that couples a MIPS-like core, its memory hierarchy, and the
//! MPI-style network interface to the simulated network.

use crate::core::{Core, CoreContext, CoreStats};
use crate::isa::Program;
use hornet_mem::hierarchy::{MemoryConfig, MemoryNode};
use hornet_mem::l1::CoreMemOp;
use hornet_mem::msg::MemMessage;
use hornet_net::agent::{NodeAgent, NodeIo};
use hornet_net::flit::{Packet, Payload};
use hornet_net::ids::{Cycle, FlowId, NodeId};
use rand_chacha::ChaCha12Rng;
use std::collections::VecDeque;

/// First payload word of user-level (MPI-style) packets, distinguishing them
/// from memory-protocol packets at the receiving tile.
pub const USER_TAG: u64 = 4;

/// Configuration of one core tile.
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Memory-hierarchy configuration.
    pub memory: MemoryConfig,
    /// CPU cycles simulated per network cycle (the paper captures SPLASH
    /// traces with a 10× faster CPU clock; the integrated runs use 1).
    pub cpu_cycles_per_net_cycle: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            memory: MemoryConfig::default(),
            cpu_cycles_per_net_cycle: 1,
        }
    }
}

/// A received user-level packet waiting for a `net_recv` syscall.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct UserPacket {
    src: NodeId,
    word: u64,
}

/// The per-tile agent running one MIPS-like core.
#[derive(Debug)]
pub struct CoreAgent {
    node: NodeId,
    node_count: usize,
    core: Core,
    memory: MemoryNode,
    user_rx: VecDeque<UserPacket>,
    clock_ratio: u32,
}

impl CoreAgent {
    /// Creates a core agent for `node` running `program`.
    pub fn new(node: NodeId, node_count: usize, program: Program, config: CoreConfig) -> Self {
        Self {
            node,
            node_count,
            core: Core::new(program),
            memory: MemoryNode::new(node, node_count, config.memory),
            user_rx: VecDeque::new(),
            clock_ratio: config.cpu_cycles_per_net_cycle.max(1),
        }
    }

    /// The core's execution statistics.
    pub fn core_stats(&self) -> &CoreStats {
        self.core.stats()
    }

    /// The tile's memory system (for preloading data and extracting results).
    pub fn memory_mut(&mut self) -> &mut MemoryNode {
        &mut self.memory
    }

    /// The tile's memory system.
    pub fn memory(&self) -> &MemoryNode {
        &self.memory
    }

    /// Reads a core register (for extracting results in tests and examples).
    pub fn reg(&self, r: u8) -> u64 {
        self.core.reg(r)
    }

    /// True once the core has halted.
    pub fn halted(&self) -> bool {
        self.core.halted()
    }

    fn demux(&mut self, io: &mut dyn NodeIo, now: Cycle) {
        while let Some(d) = io.try_recv() {
            let words = d.packet.payload.words();
            match words.first() {
                Some(&USER_TAG) => self.user_rx.push_back(UserPacket {
                    src: d.packet.src,
                    word: words.get(1).copied().unwrap_or(0),
                }),
                Some(_) => {
                    if let Some(msg) = MemMessage::decode(&d.packet.payload) {
                        self.memory.handle_message(msg, now);
                    } else {
                        self.user_rx.push_back(UserPacket {
                            src: d.packet.src,
                            word: 0,
                        });
                    }
                }
                None => self.user_rx.push_back(UserPacket {
                    src: d.packet.src,
                    word: 0,
                }),
            }
        }
    }
}

/// The [`CoreContext`] the agent hands to the core each CPU cycle.
struct TileContext<'a> {
    node: NodeId,
    node_count: usize,
    now: Cycle,
    memory: &'a mut MemoryNode,
    user_rx: &'a mut VecDeque<UserPacket>,
    io: &'a mut dyn NodeIo,
}

impl CoreContext for TileContext<'_> {
    fn mem_access(&mut self, op: CoreMemOp) -> Option<u64> {
        self.memory.core_access(op, self.now)
    }

    fn mem_poll(&mut self) -> Option<u64> {
        self.memory.take_completion()
    }

    fn net_send(&mut self, dst: NodeId, word: u64, len_flits: u32) {
        if dst == self.node || dst.index() >= self.node_count {
            return; // self-sends and out-of-range destinations are dropped
        }
        let id = self.io.alloc_packet_id();
        let packet = Packet::new(
            id,
            FlowId::for_pair(self.node, dst, self.node_count),
            self.node,
            dst,
            len_flits.max(1),
            self.now,
        )
        .with_payload(Payload(vec![USER_TAG, word]));
        self.io.send(packet);
    }

    fn net_poll(&mut self, from: Option<NodeId>) -> usize {
        match from {
            None => self.user_rx.len(),
            Some(src) => self.user_rx.iter().filter(|p| p.src == src).count(),
        }
    }

    fn net_recv(&mut self, from: Option<NodeId>) -> Option<(NodeId, u64)> {
        let idx = match from {
            None => (!self.user_rx.is_empty()).then_some(0),
            Some(src) => self.user_rx.iter().position(|p| p.src == src),
        }?;
        let p = self.user_rx.remove(idx).expect("index valid");
        Some((p.src, p.word))
    }

    fn node(&self) -> NodeId {
        self.node
    }

    fn node_count(&self) -> usize {
        self.node_count
    }
}

impl NodeAgent for CoreAgent {
    fn tick(&mut self, io: &mut dyn NodeIo, _rng: &mut ChaCha12Rng) {
        let now = io.cycle();
        self.demux(io, now);
        self.memory.tick(io, now);
        for _ in 0..self.clock_ratio {
            if self.core.halted() {
                break;
            }
            let mut ctx = TileContext {
                node: self.node,
                node_count: self.node_count,
                now,
                memory: &mut self.memory,
                user_rx: &mut self.user_rx,
                io,
            };
            self.core.step(&mut ctx);
        }
        // Flush any messages the core's memory accesses produced this cycle.
        self.memory.tick(io, now);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.finished() {
            None
        } else {
            Some(now + 1)
        }
    }

    fn finished(&self) -> bool {
        self.core.halted() && self.memory.is_quiescent()
    }

    fn label(&self) -> &str {
        "mips-core"
    }

    fn snapshot(&self, e: &mut hornet_net::codec::Enc) {
        self.core.snapshot(e);
        self.memory.snapshot(e);
        e.u32(self.user_rx.len() as u32);
        for p in &self.user_rx {
            e.u32(p.src.raw()).u64(p.word);
        }
    }

    fn restore(&mut self, d: &mut hornet_net::codec::Dec) -> std::io::Result<()> {
        self.core.restore(d)?;
        self.memory.restore(d)?;
        self.user_rx.clear();
        let n = d.u32()? as usize;
        for _ in 0..n {
            let src = NodeId::new(d.u32()?);
            let word = d.u64()?;
            self.user_rx.push_back(UserPacket { src, word });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{regs::*, Inst, ProgramBuilder, Syscall};
    use hornet_net::config::NetworkConfig;
    use hornet_net::geometry::Geometry;
    use hornet_net::network::Network;
    use hornet_net::routing::FlowSpec;

    fn network(n: usize) -> Network {
        let side = (n as f64).sqrt() as usize;
        let g = Geometry::mesh2d(side, side);
        let cfg =
            NetworkConfig::new(g).with_flows(FlowSpec::all_to_all(&Geometry::mesh2d(side, side)));
        Network::new(&cfg, 17).unwrap()
    }

    /// Node 0 sends a token to node 3; node 3 adds 1 and sends it back;
    /// node 0 stores the result in S0.
    fn ping_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.inst(Inst::Li(A0, 3));
        b.inst(Inst::Li(A1, 41));
        b.inst(Inst::Li(A2, 4));
        b.inst(Inst::Li(V0, Syscall::NetSend as u64));
        b.inst(Inst::Syscall);
        b.inst(Inst::Li(A1, 0));
        b.inst(Inst::Li(V0, Syscall::NetRecv as u64));
        b.inst(Inst::Syscall);
        b.inst(Inst::Add(S0, V0, ZERO));
        b.inst(Inst::Halt);
        b.assemble().unwrap()
    }

    fn pong_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.inst(Inst::Li(A1, 0));
        b.inst(Inst::Li(V0, Syscall::NetRecv as u64));
        b.inst(Inst::Syscall);
        b.inst(Inst::Addi(T0, V0, 1));
        b.inst(Inst::Add(A0, V1, ZERO)); // reply to the sender
        b.inst(Inst::Add(A1, T0, ZERO));
        b.inst(Inst::Li(A2, 4));
        b.inst(Inst::Li(V0, Syscall::NetSend as u64));
        b.inst(Inst::Syscall);
        b.inst(Inst::Halt);
        b.assemble().unwrap()
    }

    #[test]
    fn mpi_style_ping_pong_across_the_network() {
        let mut net = network(4);
        net.attach_agent(
            NodeId::new(0),
            Box::new(CoreAgent::new(
                NodeId::new(0),
                4,
                ping_program(),
                CoreConfig::default(),
            )),
        );
        net.attach_agent(
            NodeId::new(3),
            Box::new(CoreAgent::new(
                NodeId::new(3),
                4,
                pong_program(),
                CoreConfig::default(),
            )),
        );
        assert!(net.run_to_completion(50_000), "cores must finish");
        let stats = net.stats();
        assert_eq!(stats.delivered_packets, 2);
        assert!(stats.avg_packet_latency() > 0.0);
    }

    #[test]
    fn cached_memory_traffic_flows_through_the_network() {
        // Node 0 stores to an address homed on another tile, then loads it
        // back: the MSI protocol must generate network traffic and still
        // return the right value.
        let mut b = ProgramBuilder::new();
        b.inst(Inst::Li(T0, 0x40 * 3)); // line 3 -> homed at node 3 (interleaved)
        b.inst(Inst::Li(T1, 1234));
        b.inst(Inst::Sw(T1, T0, 0));
        b.inst(Inst::Lw(S0, T0, 0));
        b.inst(Inst::Halt);
        let program = b.assemble().unwrap();
        let mut net = network(4);
        for i in 0..4u32 {
            let p = if i == 0 {
                program.clone()
            } else {
                Program::default()
            };
            net.attach_agent(
                NodeId::new(i),
                Box::new(CoreAgent::new(NodeId::new(i), 4, p, CoreConfig::default())),
            );
        }
        assert!(net.run_to_completion(100_000));
        let stats = net.stats();
        assert!(
            stats.delivered_packets >= 2,
            "a GetM and a Data packet must cross the network, got {}",
            stats.delivered_packets
        );
    }

    #[test]
    fn clock_ratio_speeds_up_the_core_relative_to_the_network() {
        let run = |ratio: u32| {
            let mut b = ProgramBuilder::new();
            b.inst(Inst::Li(T0, 500));
            b.label("loop");
            b.inst(Inst::Addi(T0, T0, -1));
            b.bne(T0, ZERO, "loop");
            b.inst(Inst::Halt);
            let mut net = network(4);
            net.attach_agent(
                NodeId::new(0),
                Box::new(CoreAgent::new(
                    NodeId::new(0),
                    4,
                    b.assemble().unwrap(),
                    CoreConfig {
                        cpu_cycles_per_net_cycle: ratio,
                        ..CoreConfig::default()
                    },
                )),
            );
            assert!(net.run_to_completion(100_000));
            net.stats().last_cycle
        };
        let slow = run(1);
        let fast = run(10);
        assert!(
            fast * 5 < slow,
            "10x CPU clock should finish much sooner ({fast} vs {slow})"
        );
    }
}
