//! The single-cycle, in-order MIPS-like core.
//!
//! The core executes one instruction per CPU cycle unless it is stalled
//! waiting for the memory hierarchy (a cache miss travelling over the network)
//! or for a blocking network receive. Sends are DMA-like and never stall.
//! Everything the core needs from the outside world is abstracted behind
//! [`CoreContext`], so the same core model runs against the real network, the
//! ideal network, or a mock in unit tests.

use crate::isa::{regs, Inst, Program, Syscall};
use hornet_mem::l1::CoreMemOp;
use hornet_net::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Services the core needs from its tile (memory hierarchy + network
/// interface). Implemented by the tile agent.
pub trait CoreContext {
    /// Issues a load/store. `Some(value)` means it completed this cycle;
    /// `None` means the access is outstanding and will complete later via
    /// [`mem_poll`](Self::mem_poll).
    fn mem_access(&mut self, op: CoreMemOp) -> Option<u64>;
    /// Polls for the completion of an outstanding memory access.
    fn mem_poll(&mut self) -> Option<u64>;
    /// Sends a packet of `len_flits` flits carrying `word` to `dst`
    /// (DMA-like, never stalls).
    fn net_send(&mut self, dst: NodeId, word: u64, len_flits: u32);
    /// Number of packets waiting at the processor ingress (optionally
    /// restricted to one source).
    fn net_poll(&mut self, from: Option<NodeId>) -> usize;
    /// Receives a waiting packet (optionally from a specific source);
    /// returns the source and the first payload word.
    fn net_recv(&mut self, from: Option<NodeId>) -> Option<(NodeId, u64)>;
    /// This tile's node id.
    fn node(&self) -> NodeId;
    /// Number of nodes in the system.
    fn node_count(&self) -> usize;
}

/// Execution statistics of one core.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// CPU cycles elapsed (including stalls).
    pub cycles: u64,
    /// Cycles stalled waiting for memory.
    pub mem_stall_cycles: u64,
    /// Cycles stalled waiting for a network receive.
    pub recv_stall_cycles: u64,
    /// Packets sent through the network syscalls.
    pub packets_sent: u64,
    /// Packets received through the network syscalls.
    pub packets_received: u64,
}

/// What the core is currently doing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum CoreState {
    Running,
    WaitingMem { dest: Option<u8> },
    WaitingRecv { from: Option<NodeId> },
    Halted,
}

/// The core model.
#[derive(Clone, Debug)]
pub struct Core {
    program: Program,
    regs: [u64; 32],
    pc: usize,
    state: CoreState,
    stats: CoreStats,
}

impl Core {
    /// Creates a core that will run `program` from instruction 0.
    pub fn new(program: Program) -> Self {
        Self {
            program,
            regs: [0; 32],
            pc: 0,
            state: CoreState::Running,
            stats: CoreStats::default(),
        }
    }

    /// True once the core has halted.
    pub fn halted(&self) -> bool {
        self.state == CoreState::Halted
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Reads a register (register 0 always reads as zero).
    pub fn reg(&self, r: u8) -> u64 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Writes a register (writes to register 0 are ignored).
    pub fn set_reg(&mut self, r: u8, v: u64) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// The initial data segment of the program (the agent loads it into the
    /// memory hierarchy before execution starts).
    pub fn initial_data(&self) -> &[(u64, u64)] {
        &self.program.data
    }

    /// Advances the core by one CPU cycle.
    pub fn step<C: CoreContext>(&mut self, ctx: &mut C) {
        if self.state == CoreState::Halted {
            return;
        }
        self.stats.cycles += 1;
        match self.state {
            CoreState::Halted => {}
            CoreState::WaitingMem { dest } => {
                if let Some(value) = ctx.mem_poll() {
                    if let Some(d) = dest {
                        self.set_reg(d, value);
                    }
                    self.state = CoreState::Running;
                } else {
                    self.stats.mem_stall_cycles += 1;
                }
            }
            CoreState::WaitingRecv { from } => {
                if let Some((src, word)) = ctx.net_recv(from) {
                    self.set_reg(regs::V0, word);
                    self.set_reg(regs::V1, src.raw() as u64);
                    self.stats.packets_received += 1;
                    self.state = CoreState::Running;
                } else {
                    self.stats.recv_stall_cycles += 1;
                }
            }
            CoreState::Running => self.execute(ctx),
        }
    }

    fn execute<C: CoreContext>(&mut self, ctx: &mut C) {
        let Some(&inst) = self.program.instructions.get(self.pc) else {
            self.state = CoreState::Halted;
            return;
        };
        self.stats.instructions += 1;
        self.pc += 1;
        match inst {
            Inst::Add(d, s, t) => self.set_reg(d, self.reg(s).wrapping_add(self.reg(t))),
            Inst::Sub(d, s, t) => self.set_reg(d, self.reg(s).wrapping_sub(self.reg(t))),
            Inst::Mul(d, s, t) => self.set_reg(d, self.reg(s).wrapping_mul(self.reg(t))),
            Inst::And(d, s, t) => self.set_reg(d, self.reg(s) & self.reg(t)),
            Inst::Or(d, s, t) => self.set_reg(d, self.reg(s) | self.reg(t)),
            Inst::Xor(d, s, t) => self.set_reg(d, self.reg(s) ^ self.reg(t)),
            Inst::Sltu(d, s, t) => self.set_reg(d, (self.reg(s) < self.reg(t)) as u64),
            Inst::Addi(d, s, imm) => self.set_reg(d, (self.reg(s) as i64).wrapping_add(imm) as u64),
            Inst::Li(d, imm) => self.set_reg(d, imm),
            Inst::Lw(d, base, offset) => {
                let addr = (self.reg(base) as i64 + offset) as u64;
                match ctx.mem_access(CoreMemOp::Load { addr }) {
                    Some(v) => self.set_reg(d, v),
                    None => self.state = CoreState::WaitingMem { dest: Some(d) },
                }
            }
            Inst::Sw(t, base, offset) => {
                let addr = (self.reg(base) as i64 + offset) as u64;
                let value = self.reg(t);
                if ctx.mem_access(CoreMemOp::Store { addr, value }).is_none() {
                    self.state = CoreState::WaitingMem { dest: None };
                }
            }
            Inst::Beq(s, t, target) => {
                if self.reg(s) == self.reg(t) {
                    self.pc = target;
                }
            }
            Inst::Bne(s, t, target) => {
                if self.reg(s) != self.reg(t) {
                    self.pc = target;
                }
            }
            Inst::J(target) => self.pc = target,
            Inst::Jal(target) => {
                self.set_reg(regs::RA, self.pc as u64);
                self.pc = target;
            }
            Inst::Jr(s) => self.pc = self.reg(s) as usize,
            Inst::Nop => {}
            Inst::Halt => self.state = CoreState::Halted,
            Inst::Syscall => self.syscall(ctx),
        }
    }

    fn syscall<C: CoreContext>(&mut self, ctx: &mut C) {
        let number = self.reg(regs::V0);
        match Syscall::from_number(number) {
            Some(Syscall::NetSend) => {
                let dst = NodeId::new(self.reg(regs::A0) as u32);
                let word = self.reg(regs::A1);
                let len = self.reg(regs::A2).clamp(1, 4096) as u32;
                ctx.net_send(dst, word, len);
                self.stats.packets_sent += 1;
            }
            Some(Syscall::NetPoll) => {
                let from =
                    (self.reg(regs::A1) != 0).then(|| NodeId::new(self.reg(regs::A0) as u32));
                let n = ctx.net_poll(from);
                self.set_reg(regs::V0, n as u64);
            }
            Some(Syscall::NetRecv) => {
                let from =
                    (self.reg(regs::A1) != 0).then(|| NodeId::new(self.reg(regs::A0) as u32));
                match ctx.net_recv(from) {
                    Some((src, word)) => {
                        self.set_reg(regs::V0, word);
                        self.set_reg(regs::V1, src.raw() as u64);
                        self.stats.packets_received += 1;
                    }
                    None => self.state = CoreState::WaitingRecv { from },
                }
            }
            Some(Syscall::MyNode) => self.set_reg(regs::V0, ctx.node().raw() as u64),
            Some(Syscall::NodeCount) => self.set_reg(regs::V0, ctx.node_count() as u64),
            Some(Syscall::Exit) | None => self.state = CoreState::Halted,
        }
    }

    /// Serializes the architectural state (registers, pc, run state, stats)
    /// into `e`. The program itself is not serialized: it is immutable and is
    /// rebuilt from the workload spec when the tile is reconstructed.
    pub fn snapshot(&self, e: &mut hornet_net::codec::Enc) {
        for r in &self.regs {
            e.u64(*r);
        }
        e.u64(self.pc as u64);
        match self.state {
            CoreState::Running => {
                e.u8(0);
            }
            CoreState::WaitingMem { dest } => {
                e.u8(1);
                match dest {
                    Some(d) => e.u8(1).u8(d),
                    None => e.u8(0),
                };
            }
            CoreState::WaitingRecv { from } => {
                e.u8(2);
                match from {
                    Some(n) => e.u8(1).u32(n.raw()),
                    None => e.u8(0),
                };
            }
            CoreState::Halted => {
                e.u8(3);
            }
        }
        e.u64(self.stats.instructions)
            .u64(self.stats.cycles)
            .u64(self.stats.mem_stall_cycles)
            .u64(self.stats.recv_stall_cycles)
            .u64(self.stats.packets_sent)
            .u64(self.stats.packets_received);
    }

    /// Restores architectural state captured by [`snapshot`](Self::snapshot).
    /// The core must already hold the same program the snapshot was taken
    /// against (the pc is validated against its length).
    pub fn restore(&mut self, d: &mut hornet_net::codec::Dec) -> std::io::Result<()> {
        let corrupt = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("core checkpoint: {what}"),
            )
        };
        for r in &mut self.regs {
            *r = d.u64()?;
        }
        // Note: a pc past the program end is legal (Jr can produce one; the
        // next step simply halts), so the pc is restored unvalidated.
        self.pc = d.u64()? as usize;
        self.state = match d.u8()? {
            0 => CoreState::Running,
            1 => {
                let dest = if d.u8()? != 0 { Some(d.u8()?) } else { None };
                CoreState::WaitingMem { dest }
            }
            2 => {
                let from = if d.u8()? != 0 {
                    Some(NodeId::new(d.u32()?))
                } else {
                    None
                };
                CoreState::WaitingRecv { from }
            }
            3 => CoreState::Halted,
            _ => return Err(corrupt("unknown core state tag")),
        };
        self.stats.instructions = d.u64()?;
        self.stats.cycles = d.u64()?;
        self.stats.mem_stall_cycles = d.u64()?;
        self.stats.recv_stall_cycles = d.u64()?;
        self.stats.packets_sent = d.u64()?;
        self.stats.packets_received = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;
    use std::collections::VecDeque;

    /// A CoreContext backed by a flat in-memory array and loopback queues,
    /// for testing the core in isolation.
    #[derive(Debug, Default)]
    pub struct MockContext {
        pub memory: std::collections::HashMap<u64, u64>,
        pub inbox: VecDeque<(NodeId, u64)>,
        pub sent: Vec<(NodeId, u64, u32)>,
        pub node: u32,
        pub node_count: usize,
        /// If set, memory accesses take this many polls to complete.
        pub mem_delay: u32,
        /// The in-flight access, if any.
        pub pending: Option<(CoreMemOp, u32)>,
    }

    impl CoreContext for MockContext {
        fn mem_access(&mut self, op: CoreMemOp) -> Option<u64> {
            if self.mem_delay == 0 {
                Some(self.do_access(op))
            } else {
                self.pending = Some((op, self.mem_delay));
                None
            }
        }
        fn mem_poll(&mut self) -> Option<u64> {
            let (op, mut left) = self.pending?;
            left -= 1;
            if left == 0 {
                self.pending = None;
                Some(self.do_access(op))
            } else {
                self.pending = Some((op, left));
                None
            }
        }
        fn net_send(&mut self, dst: NodeId, word: u64, len_flits: u32) {
            self.sent.push((dst, word, len_flits));
        }
        fn net_poll(&mut self, _from: Option<NodeId>) -> usize {
            self.inbox.len()
        }
        fn net_recv(&mut self, _from: Option<NodeId>) -> Option<(NodeId, u64)> {
            self.inbox.pop_front()
        }
        fn node(&self) -> NodeId {
            NodeId::new(self.node)
        }
        fn node_count(&self) -> usize {
            self.node_count
        }
    }

    impl MockContext {
        fn do_access(&mut self, op: CoreMemOp) -> u64 {
            match op {
                CoreMemOp::Load { addr } => self.memory.get(&(addr / 8)).copied().unwrap_or(0),
                CoreMemOp::Store { addr, value } => {
                    self.memory.insert(addr / 8, value);
                    value
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::MockContext;
    use super::*;
    use crate::isa::{regs::*, ProgramBuilder};

    fn run(core: &mut Core, ctx: &mut MockContext, max_cycles: u64) {
        for _ in 0..max_cycles {
            if core.halted() {
                break;
            }
            core.step(ctx);
        }
    }

    #[test]
    fn arithmetic_loop_computes_sum() {
        // Sum 1..=10 into S0.
        let mut b = ProgramBuilder::new();
        b.inst(Inst::Li(T0, 10));
        b.inst(Inst::Li(S0, 0));
        b.label("loop");
        b.inst(Inst::Add(S0, S0, T0));
        b.inst(Inst::Addi(T0, T0, -1));
        b.bne(T0, ZERO, "loop");
        b.inst(Inst::Halt);
        let mut core = Core::new(b.assemble().unwrap());
        let mut ctx = MockContext {
            node_count: 1,
            ..MockContext::default()
        };
        run(&mut core, &mut ctx, 1000);
        assert!(core.halted());
        assert_eq!(core.reg(S0), 55);
        assert!(core.stats().instructions > 30);
    }

    #[test]
    fn loads_and_stores_stall_on_slow_memory() {
        let mut b = ProgramBuilder::new();
        b.inst(Inst::Li(T0, 0x100));
        b.inst(Inst::Li(T1, 7));
        b.inst(Inst::Sw(T1, T0, 0));
        b.inst(Inst::Lw(S0, T0, 0));
        b.inst(Inst::Halt);
        let mut core = Core::new(b.assemble().unwrap());
        let mut ctx = MockContext {
            mem_delay: 5,
            node_count: 1,
            ..MockContext::default()
        };
        run(&mut core, &mut ctx, 1000);
        assert!(core.halted());
        assert_eq!(core.reg(S0), 7);
        assert!(
            core.stats().mem_stall_cycles >= 8,
            "two accesses x 4+ stalls"
        );
    }

    #[test]
    fn syscalls_send_poll_and_receive() {
        let mut b = ProgramBuilder::new();
        // send(node 3, word 42, 8 flits)
        b.inst(Inst::Li(A0, 3));
        b.inst(Inst::Li(A1, 42));
        b.inst(Inst::Li(A2, 8));
        b.inst(Inst::Li(V0, Syscall::NetSend as u64));
        b.inst(Inst::Syscall);
        // v0 = my node; v1 unchanged
        b.inst(Inst::Li(V0, Syscall::MyNode as u64));
        b.inst(Inst::Syscall);
        b.inst(Inst::Add(S1, V0, ZERO));
        // blocking receive from anyone
        b.inst(Inst::Li(A1, 0));
        b.inst(Inst::Li(V0, Syscall::NetRecv as u64));
        b.inst(Inst::Syscall);
        b.inst(Inst::Add(S0, V0, ZERO));
        b.inst(Inst::Halt);
        let mut core = Core::new(b.assemble().unwrap());
        let mut ctx = MockContext {
            node: 5,
            node_count: 16,
            ..MockContext::default()
        };
        // Run a while: the receive blocks because the inbox is empty.
        run(&mut core, &mut ctx, 50);
        assert!(!core.halted());
        assert!(core.stats().recv_stall_cycles > 0);
        assert_eq!(ctx.sent, vec![(NodeId::new(3), 42, 8)]);
        assert_eq!(core.reg(S1), 5);
        // A packet arrives; the core unblocks and finishes.
        ctx.inbox.push_back((NodeId::new(9), 123));
        run(&mut core, &mut ctx, 50);
        assert!(core.halted());
        assert_eq!(core.reg(S0), 123);
        assert_eq!(core.stats().packets_received, 1);
    }

    #[test]
    fn running_off_the_end_halts() {
        let mut b = ProgramBuilder::new();
        b.inst(Inst::Nop);
        let mut core = Core::new(b.assemble().unwrap());
        let mut ctx = MockContext::default();
        run(&mut core, &mut ctx, 10);
        assert!(core.halted());
    }

    #[test]
    fn register_zero_is_immutable() {
        let mut core = Core::new(Program::default());
        core.set_reg(0, 99);
        assert_eq!(core.reg(0), 0);
    }

    #[test]
    fn jal_and_jr_implement_calls() {
        let mut b = ProgramBuilder::new();
        b.jal("func");
        b.inst(Inst::Add(S0, V0, ZERO));
        b.inst(Inst::Halt);
        b.label("func");
        b.inst(Inst::Li(V0, 77));
        b.inst(Inst::Jr(RA));
        let mut core = Core::new(b.assemble().unwrap());
        let mut ctx = MockContext::default();
        run(&mut core, &mut ctx, 20);
        assert!(core.halted());
        assert_eq!(core.reg(S0), 77);
    }
}
