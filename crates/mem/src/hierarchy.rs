//! The per-tile memory system: private L1, directory slice, NUCA home, and
//! the glue that turns protocol messages into network packets.
//!
//! A [`MemoryNode`] is owned by the tile's core agent (or by the Pin-like
//! native frontend). The core presents loads and stores; hits complete
//! immediately, misses stall the core until the coherence protocol delivers
//! the line over the simulated network. Memory coherence is ensured either by
//! the directory-based MSI protocol or by NUCA-style remote accesses
//! (paper §II-D2).

use crate::cache::CacheConfig;
use crate::directory::DirectorySlice;
use crate::l1::{AccessOutcome, CoreMemOp, L1Controller, L1Out, L1Stats};
use crate::msg::{LineAddr, MemMessage, MsgClass};
use hornet_net::agent::NodeIo;
use hornet_net::ids::{Cycle, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How memory coherence is maintained.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoherenceMode {
    /// Directory-based MSI protocol over private L1 caches.
    MsiDirectory,
    /// NUCA-style distributed shared memory with remote-access reads and
    /// stores (no private caching of remote lines).
    Nuca,
}

/// Where directory slices (and their backing memory) live.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirectoryPlacement {
    /// Every tile owns the slice for `line % node_count == tile`.
    Interleaved,
    /// Only the listed tiles (e.g. the memory controllers) own slices;
    /// lines are interleaved among them.
    AtNodes(Vec<NodeId>),
}

impl DirectoryPlacement {
    /// The home node for a line.
    pub fn home_of(&self, line: LineAddr, node_count: usize) -> NodeId {
        match self {
            DirectoryPlacement::Interleaved => NodeId::from((line as usize) % node_count),
            DirectoryPlacement::AtNodes(nodes) => {
                assert!(
                    !nodes.is_empty(),
                    "directory placement needs at least one node"
                );
                nodes[(line as usize) % nodes.len()]
            }
        }
    }

    /// True if `node` hosts a directory slice.
    pub fn hosts_directory(&self, node: NodeId, _node_count: usize) -> bool {
        match self {
            DirectoryPlacement::Interleaved => true,
            DirectoryPlacement::AtNodes(nodes) => nodes.contains(&node),
        }
    }
}

/// Configuration of the per-tile memory system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Coherence mechanism.
    pub mode: CoherenceMode,
    /// Directory / home placement.
    pub placement: DirectoryPlacement,
    /// Private L1 geometry.
    pub l1: CacheConfig,
    /// Latency of an off-chip memory (DRAM) access, in network cycles.
    pub dram_latency: Cycle,
    /// Processing latency of a directory slice, in network cycles.
    pub directory_latency: Cycle,
    /// Latency of a local (same-tile) memory access, in cycles.
    pub local_latency: Cycle,
    /// Flits in a control packet.
    pub control_packet_len: u32,
    /// Flits in a data-bearing packet.
    pub data_packet_len: u32,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self {
            mode: CoherenceMode::MsiDirectory,
            placement: DirectoryPlacement::Interleaved,
            l1: CacheConfig::default(),
            dram_latency: 50,
            directory_latency: 2,
            local_latency: 1,
            control_packet_len: 2,
            data_packet_len: 8,
        }
    }
}

/// Aggregate statistics of a tile's memory system.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemNodeStats {
    /// Protocol messages sent over the network.
    pub messages_sent: u64,
    /// Protocol messages handled locally (same tile, no network).
    pub local_messages: u64,
    /// NUCA remote accesses issued.
    pub remote_accesses: u64,
    /// NUCA accesses that were local.
    pub local_accesses: u64,
}

/// A message waiting to be delivered (local latency or DRAM latency).
#[derive(Clone, Debug)]
struct Scheduled {
    ready_at: Cycle,
    dst: NodeId,
    msg: MemMessage,
}

/// The per-tile memory system.
#[derive(Clone, Debug)]
pub struct MemoryNode {
    node: NodeId,
    node_count: usize,
    config: MemoryConfig,
    l1: L1Controller,
    directory: DirectorySlice,
    hosts_directory: bool,
    scheduled: VecDeque<Scheduled>,
    stats: MemNodeStats,
}

impl MemoryNode {
    /// Creates the memory system for one tile.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn new(node: NodeId, node_count: usize, config: MemoryConfig) -> Self {
        assert!(node_count > 0, "a memory system needs at least one node");
        let hosts_directory = config.placement.hosts_directory(node, node_count);
        Self {
            node,
            node_count,
            l1: L1Controller::new(node, config.l1),
            directory: DirectorySlice::new(),
            hosts_directory,
            scheduled: VecDeque::new(),
            stats: MemNodeStats::default(),
            config,
        }
    }

    /// The tile this memory system belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> &L1Stats {
        self.l1.stats()
    }

    /// Directory statistics (meaningful only on tiles that host a slice).
    pub fn directory_stats(&self) -> &crate::directory::DirectoryStats {
        self.directory.stats()
    }

    /// Tile-level statistics.
    pub fn stats(&self) -> &MemNodeStats {
        &self.stats
    }

    /// True if this tile hosts a directory slice / NUCA home.
    pub fn hosts_directory(&self) -> bool {
        self.hosts_directory
    }

    /// The home node of a line under the configured placement.
    pub fn home_of(&self, line: LineAddr) -> NodeId {
        self.config.placement.home_of(line, self.node_count)
    }

    /// True if a core memory access is still outstanding.
    pub fn has_outstanding(&self) -> bool {
        self.l1.has_outstanding()
    }

    /// Takes the completion value of the last finished access, if any.
    pub fn take_completion(&mut self) -> Option<u64> {
        self.l1.take_completion()
    }

    /// Presents a core load or store. Returns `Some(value)` if it completed
    /// immediately (an L1 or local hit); otherwise the access is outstanding
    /// and the core must stall until [`take_completion`](Self::take_completion)
    /// yields a value.
    pub fn core_access(&mut self, op: CoreMemOp, now: Cycle) -> Option<u64> {
        match self.config.mode {
            CoherenceMode::MsiDirectory => match self.l1.access(op, now) {
                AccessOutcome::Hit(v) => Some(v),
                AccessOutcome::Busy => None,
                AccessOutcome::Miss(msg) => {
                    let line = self.l1.cache().config().line_of(op.addr());
                    let home = self.home_of(line);
                    self.route(home, msg, now, false);
                    None
                }
            },
            CoherenceMode::Nuca => {
                let line = op.addr() / 8; // word-granularity homes
                let home = self.home_of(line);
                if home == self.node {
                    self.stats.local_accesses += 1;
                    // Local access: read/write the home memory directly.
                    return Some(match op {
                        CoreMemOp::Load { .. } => {
                            let out = self.directory.handle(MemMessage::RemoteRead {
                                addr: op.addr(),
                                requester: self.node,
                            });
                            match out.first().map(|o| o.msg) {
                                Some(MemMessage::RemoteReadResp { value, .. }) => value,
                                _ => 0,
                            }
                        }
                        CoreMemOp::Store { addr, value } => {
                            self.directory.handle(MemMessage::RemoteWrite {
                                addr,
                                value,
                                requester: self.node,
                            });
                            value
                        }
                    });
                }
                self.stats.remote_accesses += 1;
                // Mark the L1 as having an outstanding access so completions
                // flow through the same path as MSI misses.
                let msg = match self.l1.access(op, now) {
                    AccessOutcome::Miss(_) => match op {
                        CoreMemOp::Load { addr } => MemMessage::RemoteRead {
                            addr,
                            requester: self.node,
                        },
                        CoreMemOp::Store { addr, value } => MemMessage::RemoteWrite {
                            addr,
                            value,
                            requester: self.node,
                        },
                    },
                    AccessOutcome::Hit(v) => return Some(v),
                    AccessOutcome::Busy => return None,
                };
                self.route(home, msg, now, false);
                None
            }
        }
    }

    /// Handles a memory-protocol message delivered to this tile by the
    /// network (the core agent demultiplexes packets by [`MsgClass`]).
    pub fn handle_message(&mut self, msg: MemMessage, now: Cycle) {
        match msg.class() {
            MsgClass::L1 => {
                let outs = self.l1.handle(msg, now);
                self.dispatch_l1_outputs(outs, now);
            }
            MsgClass::Directory | MsgClass::MemoryController => {
                if !self.hosts_directory {
                    // Misdirected message: treat this tile as hosting anyway so
                    // the protocol cannot wedge (counts as a local message).
                    self.stats.local_messages += 1;
                }
                let outs = self.directory.handle(msg);
                for o in outs {
                    let delay = self.config.directory_latency
                        + if o.from_memory {
                            self.config.dram_latency
                        } else {
                            0
                        };
                    self.route_delayed(o.dst, o.msg, now + delay);
                }
            }
            MsgClass::User => {}
        }
    }

    fn dispatch_l1_outputs(&mut self, outs: Vec<L1Out>, now: Cycle) {
        for out in outs {
            match out {
                L1Out::ToHome { line, msg } => {
                    let home = self.home_of(line);
                    self.route(home, msg, now, false);
                }
                L1Out::ToNode { dst, msg } => self.route(dst, msg, now, false),
            }
        }
    }

    fn route(&mut self, dst: NodeId, msg: MemMessage, now: Cycle, _from_memory: bool) {
        if dst == self.node {
            self.stats.local_messages += 1;
            self.route_delayed(dst, msg, now + self.config.local_latency);
        } else {
            self.scheduled.push_back(Scheduled {
                ready_at: now,
                dst,
                msg,
            });
        }
    }

    fn route_delayed(&mut self, dst: NodeId, msg: MemMessage, ready_at: Cycle) {
        self.scheduled.push_back(Scheduled { ready_at, dst, msg });
    }

    /// Per-cycle processing: releases delayed messages — local ones are
    /// handled in place, remote ones are packetised and sent through `io`.
    pub fn tick(&mut self, io: &mut dyn NodeIo, now: Cycle) {
        let mut still_waiting = VecDeque::new();
        while let Some(s) = self.scheduled.pop_front() {
            if s.ready_at > now {
                still_waiting.push_back(s);
                continue;
            }
            if s.dst == self.node {
                self.handle_message(s.msg, now);
            } else {
                let id = io.alloc_packet_id();
                let packet = s.msg.to_packet(
                    id,
                    self.node,
                    s.dst,
                    self.node_count,
                    now,
                    self.config.control_packet_len,
                    self.config.data_packet_len,
                );
                io.send(packet);
                self.stats.messages_sent += 1;
            }
        }
        self.scheduled = still_waiting;
    }

    /// True if no protocol message is waiting inside this tile.
    pub fn is_quiescent(&self) -> bool {
        self.scheduled.is_empty() && !self.l1.has_outstanding()
    }

    /// Writes a value directly into the functional backing store of this
    /// tile's directory slice (used to preload program data before a
    /// simulation starts; bypasses the coherence protocol entirely).
    pub fn poke(&mut self, line: LineAddr, value: u64) {
        self.directory.handle(MemMessage::RemoteWrite {
            addr: line,
            value,
            requester: self.node,
        });
    }

    /// Reads a value directly from the functional backing store (testing /
    /// result extraction; bypasses the coherence protocol).
    pub fn peek(&self, line: LineAddr) -> u64 {
        self.directory.value_of(line)
    }

    /// Serializes the tile's full memory-system state — L1, directory slice,
    /// the delayed-message queue and the counters — for a checkpoint. The
    /// construction-time parameters (node, placement, latencies) are not
    /// stored; the restored node must be built from the same configuration.
    pub fn snapshot(&self, e: &mut hornet_net::codec::Enc) {
        self.l1.snapshot(e);
        self.directory.snapshot(e);
        e.u32(self.scheduled.len() as u32);
        for s in &self.scheduled {
            e.u64(s.ready_at).u32(s.dst.raw());
            let words = s.msg.encode();
            e.u32(words.len() as u32);
            for w in words.words() {
                e.u64(*w);
            }
        }
        e.u64(self.stats.messages_sent)
            .u64(self.stats.local_messages)
            .u64(self.stats.remote_accesses)
            .u64(self.stats.local_accesses);
    }

    /// Restores the state captured by [`snapshot`](Self::snapshot).
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a corrupt record.
    pub fn restore(&mut self, d: &mut hornet_net::codec::Dec) -> std::io::Result<()> {
        self.l1.restore(d)?;
        self.directory.restore(d)?;
        self.scheduled.clear();
        for _ in 0..d.u32()? {
            let ready_at = d.u64()?;
            let dst = NodeId::new(d.u32()?);
            let words = (0..d.u32()?)
                .map(|_| d.u64())
                .collect::<std::io::Result<Vec<u64>>>()?;
            let payload = hornet_net::flit::Payload::from_words(&words);
            let msg = MemMessage::decode(&payload).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "memory checkpoint: bad scheduled message",
                )
            })?;
            self.scheduled.push_back(Scheduled { ready_at, dst, msg });
        }
        self.stats = MemNodeStats {
            messages_sent: d.u64()?,
            local_messages: d.u64()?,
            remote_accesses: d.u64()?,
            local_accesses: d.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_homes_are_stable() {
        let p = DirectoryPlacement::Interleaved;
        assert_eq!(p.home_of(5, 4), NodeId::new(1));
        assert!(p.hosts_directory(NodeId::new(3), 4));
        let mc = DirectoryPlacement::AtNodes(vec![NodeId::new(0), NodeId::new(7)]);
        assert_eq!(mc.home_of(2, 16), NodeId::new(0));
        assert_eq!(mc.home_of(3, 16), NodeId::new(7));
        assert!(mc.hosts_directory(NodeId::new(7), 16));
        assert!(!mc.hosts_directory(NodeId::new(3), 16));
    }

    #[test]
    fn local_msi_access_round_trips_without_network() {
        // One node: every line is homed locally, so a miss resolves through
        // the scheduled queue without any packets.
        let mut m = MemoryNode::new(NodeId::new(0), 1, MemoryConfig::default());
        assert_eq!(
            m.core_access(
                CoreMemOp::Store {
                    addr: 0x40,
                    value: 9
                },
                0
            ),
            None
        );
        // Drive ticks with a mock IO; nothing should be sent.
        struct NoIo;
        impl NodeIo for NoIo {
            fn node(&self) -> NodeId {
                NodeId::new(0)
            }
            fn cycle(&self) -> Cycle {
                0
            }
            fn alloc_packet_id(&mut self) -> hornet_net::ids::PacketId {
                hornet_net::ids::PacketId::new(0)
            }
            fn send(&mut self, _packet: hornet_net::flit::Packet) {
                panic!("local access must not use the network");
            }
            fn try_recv(&mut self) -> Option<hornet_net::flit::DeliveredPacket> {
                None
            }
            fn peek_recv(&self) -> Option<&hornet_net::flit::DeliveredPacket> {
                None
            }
            fn injection_backlog(&self) -> usize {
                0
            }
            fn recv_backlog(&self) -> usize {
                0
            }
        }
        let mut io = NoIo;
        let mut done = None;
        for cycle in 1..200 {
            m.tick(&mut io, cycle);
            if let Some(v) = m.take_completion() {
                done = Some((cycle, v));
                break;
            }
        }
        let (cycle, value) = done.expect("store completes");
        assert_eq!(value, 9);
        // Completion must include the DRAM latency for the cold miss.
        assert!(cycle >= MemoryConfig::default().dram_latency);
        // Subsequent store to the same line is an L1 hit.
        assert_eq!(
            m.core_access(
                CoreMemOp::Store {
                    addr: 0x48,
                    value: 10
                },
                cycle + 1
            ),
            Some(10)
        );
        assert_eq!(m.l1_stats().hits, 1);
    }

    #[test]
    fn nuca_local_accesses_bypass_the_protocol() {
        let cfg = MemoryConfig {
            mode: CoherenceMode::Nuca,
            ..MemoryConfig::default()
        };
        let mut m = MemoryNode::new(NodeId::new(0), 1, cfg);
        assert_eq!(
            m.core_access(
                CoreMemOp::Store {
                    addr: 0x10,
                    value: 3
                },
                0
            ),
            Some(3)
        );
        assert_eq!(m.core_access(CoreMemOp::Load { addr: 0x10 }, 1), Some(3));
        assert_eq!(m.stats().local_accesses, 2);
        assert_eq!(m.stats().remote_accesses, 0);
    }
}
