//! Memory-protocol messages and their packet encoding.
//!
//! All memory traffic (cache misses, coherence, NUCA remote accesses, DRAM
//! requests) travels through the simulated network as ordinary packets whose
//! payload words encode a [`MemMessage`]. The first payload word is a message
//! class so the receiving tile can demultiplex packets to its L1 controller,
//! directory slice, memory controller, or user (MPI-style) receive queues.

use hornet_net::flit::{Packet, Payload};
use hornet_net::ids::{Cycle, FlowId, NodeId, PacketId};
use serde::{Deserialize, Serialize};

/// Address of one cache line.
pub type LineAddr = u64;

/// Which component of a tile a packet is destined for.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgClass {
    /// L1 cache controller (data responses, invalidations, fetches).
    L1 = 1,
    /// Directory slice (coherence requests, writebacks, acks).
    Directory = 2,
    /// Memory controller (DRAM reads/writes).
    MemoryController = 3,
    /// User-level message passing (MPI-style network syscalls).
    User = 4,
}

impl MsgClass {
    fn from_word(w: u64) -> Option<Self> {
        match w {
            1 => Some(MsgClass::L1),
            2 => Some(MsgClass::Directory),
            3 => Some(MsgClass::MemoryController),
            4 => Some(MsgClass::User),
            _ => None,
        }
    }
}

/// A memory-system protocol message.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemMessage {
    /// L1 → directory: read (shared) request.
    GetS { line: LineAddr, requester: NodeId },
    /// L1 → directory: write (exclusive) request.
    GetM { line: LineAddr, requester: NodeId },
    /// Directory → L1: data response (with the number of invalidation acks the
    /// requester must wait for; 0 in this simplified protocol because the
    /// directory collects acks itself).
    Data { line: LineAddr, value: u64 },
    /// Directory → L1 (owner): forward the line to the requester and
    /// downgrade/invalidate.
    Fetch {
        line: LineAddr,
        requester: NodeId,
        invalidate: bool,
    },
    /// Directory → L1: invalidate a shared copy.
    Invalidate { line: LineAddr },
    /// L1 → directory: invalidation acknowledged.
    InvAck { line: LineAddr, from: NodeId },
    /// L1 → directory: writeback of a modified line (eviction or downgrade).
    PutM {
        line: LineAddr,
        value: u64,
        from: NodeId,
    },
    /// Owner L1 → requester L1: forwarded data (cache-to-cache transfer).
    FwdData { line: LineAddr, value: u64 },
    /// NUCA remote read request (no caching; executed at the home tile).
    RemoteRead { addr: u64, requester: NodeId },
    /// NUCA remote read reply.
    RemoteReadResp { addr: u64, value: u64 },
    /// NUCA remote write request.
    RemoteWrite {
        addr: u64,
        value: u64,
        requester: NodeId,
    },
    /// NUCA remote write acknowledgement.
    RemoteWriteAck { addr: u64 },
    /// Directory/L2 → memory controller: DRAM read.
    DramRead { line: LineAddr, requester: NodeId },
    /// Memory controller → requester: DRAM read reply.
    DramReadResp { line: LineAddr, value: u64 },
    /// Directory/L2 → memory controller: DRAM write (writeback).
    DramWrite { line: LineAddr, value: u64 },
}

impl MemMessage {
    /// The message class used for demultiplexing at the destination tile.
    pub fn class(&self) -> MsgClass {
        match self {
            MemMessage::GetS { .. }
            | MemMessage::GetM { .. }
            | MemMessage::InvAck { .. }
            | MemMessage::PutM { .. } => MsgClass::Directory,
            MemMessage::Data { .. }
            | MemMessage::Fetch { .. }
            | MemMessage::Invalidate { .. }
            | MemMessage::FwdData { .. }
            | MemMessage::RemoteReadResp { .. }
            | MemMessage::RemoteWriteAck { .. }
            | MemMessage::DramReadResp { .. } => MsgClass::L1,
            MemMessage::RemoteRead { .. } | MemMessage::RemoteWrite { .. } => MsgClass::Directory,
            MemMessage::DramRead { .. } | MemMessage::DramWrite { .. } => {
                MsgClass::MemoryController
            }
        }
    }

    /// True if the message carries a full cache line of data (and therefore
    /// uses a long packet).
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            MemMessage::Data { .. }
                | MemMessage::FwdData { .. }
                | MemMessage::PutM { .. }
                | MemMessage::RemoteReadResp { .. }
                | MemMessage::RemoteWrite { .. }
                | MemMessage::DramReadResp { .. }
                | MemMessage::DramWrite { .. }
        )
    }

    /// Encodes the message into payload words.
    pub fn encode(&self) -> Payload {
        let mut w = vec![self.class() as u64];
        match *self {
            MemMessage::GetS { line, requester } => {
                w.extend([1, line, requester.raw() as u64]);
            }
            MemMessage::GetM { line, requester } => {
                w.extend([2, line, requester.raw() as u64]);
            }
            MemMessage::Data { line, value } => w.extend([3, line, value]),
            MemMessage::Fetch {
                line,
                requester,
                invalidate,
            } => w.extend([4, line, requester.raw() as u64, invalidate as u64]),
            MemMessage::Invalidate { line } => w.extend([5, line]),
            MemMessage::InvAck { line, from } => w.extend([6, line, from.raw() as u64]),
            MemMessage::PutM { line, value, from } => {
                w.extend([7, line, value, from.raw() as u64]);
            }
            MemMessage::FwdData { line, value } => w.extend([8, line, value]),
            MemMessage::RemoteRead { addr, requester } => {
                w.extend([9, addr, requester.raw() as u64]);
            }
            MemMessage::RemoteReadResp { addr, value } => w.extend([10, addr, value]),
            MemMessage::RemoteWrite {
                addr,
                value,
                requester,
            } => w.extend([11, addr, value, requester.raw() as u64]),
            MemMessage::RemoteWriteAck { addr } => w.extend([12, addr]),
            MemMessage::DramRead { line, requester } => {
                w.extend([13, line, requester.raw() as u64]);
            }
            MemMessage::DramReadResp { line, value } => w.extend([14, line, value]),
            MemMessage::DramWrite { line, value } => w.extend([15, line, value]),
        }
        Payload(w)
    }

    /// Decodes a message from payload words.
    ///
    /// Returns `None` for malformed or non-memory payloads.
    pub fn decode(payload: &Payload) -> Option<Self> {
        let w = payload.words();
        if w.len() < 2 {
            return None;
        }
        MsgClass::from_word(w[0])?;
        let node = |i: usize| NodeId::new(w[i] as u32);
        Some(match w[1] {
            1 => MemMessage::GetS {
                line: w[2],
                requester: node(3),
            },
            2 => MemMessage::GetM {
                line: w[2],
                requester: node(3),
            },
            3 => MemMessage::Data {
                line: w[2],
                value: w[3],
            },
            4 => MemMessage::Fetch {
                line: w[2],
                requester: node(3),
                invalidate: w[4] != 0,
            },
            5 => MemMessage::Invalidate { line: w[2] },
            6 => MemMessage::InvAck {
                line: w[2],
                from: node(3),
            },
            7 => MemMessage::PutM {
                line: w[2],
                value: w[3],
                from: node(4),
            },
            8 => MemMessage::FwdData {
                line: w[2],
                value: w[3],
            },
            9 => MemMessage::RemoteRead {
                addr: w[2],
                requester: node(3),
            },
            10 => MemMessage::RemoteReadResp {
                addr: w[2],
                value: w[3],
            },
            11 => MemMessage::RemoteWrite {
                addr: w[2],
                value: w[3],
                requester: node(4),
            },
            12 => MemMessage::RemoteWriteAck { addr: w[2] },
            13 => MemMessage::DramRead {
                line: w[2],
                requester: node(3),
            },
            14 => MemMessage::DramReadResp {
                line: w[2],
                value: w[3],
            },
            15 => MemMessage::DramWrite {
                line: w[2],
                value: w[3],
            },
            _ => return None,
        })
    }

    /// Builds a network packet carrying this message.
    ///
    /// Control messages occupy `control_len` flits and data-bearing messages
    /// `data_len` flits, mirroring the short-request / long-response packets
    /// of a cache-coherent NoC.
    #[allow(clippy::too_many_arguments)]
    pub fn to_packet(
        &self,
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        node_count: usize,
        now: Cycle,
        control_len: u32,
        data_len: u32,
    ) -> Packet {
        let len = if self.carries_data() {
            data_len
        } else {
            control_len
        };
        Packet::new(
            id,
            FlowId::for_pair(src, dst, node_count),
            src,
            dst,
            len,
            now,
        )
        .with_payload(self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_for_all_variants() {
        let n = NodeId::new(7);
        let msgs = [
            MemMessage::GetS {
                line: 0x40,
                requester: n,
            },
            MemMessage::GetM {
                line: 0x80,
                requester: n,
            },
            MemMessage::Data {
                line: 0x40,
                value: 99,
            },
            MemMessage::Fetch {
                line: 1,
                requester: n,
                invalidate: true,
            },
            MemMessage::Invalidate { line: 2 },
            MemMessage::InvAck { line: 2, from: n },
            MemMessage::PutM {
                line: 3,
                value: 5,
                from: n,
            },
            MemMessage::FwdData { line: 3, value: 5 },
            MemMessage::RemoteRead {
                addr: 0x1000,
                requester: n,
            },
            MemMessage::RemoteReadResp {
                addr: 0x1000,
                value: 1,
            },
            MemMessage::RemoteWrite {
                addr: 0x1008,
                value: 2,
                requester: n,
            },
            MemMessage::RemoteWriteAck { addr: 0x1008 },
            MemMessage::DramRead {
                line: 9,
                requester: n,
            },
            MemMessage::DramReadResp { line: 9, value: 4 },
            MemMessage::DramWrite { line: 9, value: 4 },
        ];
        for m in msgs {
            let decoded = MemMessage::decode(&m.encode()).expect("decodes");
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(MemMessage::decode(&Payload(vec![])).is_none());
        assert!(MemMessage::decode(&Payload(vec![1])).is_none());
        assert!(MemMessage::decode(&Payload(vec![99, 1, 2, 3])).is_none());
        assert!(MemMessage::decode(&Payload(vec![1, 99, 2, 3])).is_none());
    }

    #[test]
    fn data_messages_use_long_packets() {
        let m = MemMessage::Data { line: 1, value: 2 };
        let p = m.to_packet(PacketId::new(1), NodeId::new(0), NodeId::new(1), 4, 0, 2, 8);
        assert_eq!(p.len_flits, 8);
        let c = MemMessage::GetS {
            line: 1,
            requester: NodeId::new(0),
        };
        let p = c.to_packet(PacketId::new(2), NodeId::new(0), NodeId::new(1), 4, 0, 2, 8);
        assert_eq!(p.len_flits, 2, "control messages use short packets");
    }

    #[test]
    fn classes_route_to_the_right_component() {
        assert_eq!(
            MemMessage::GetS {
                line: 0,
                requester: NodeId::new(0)
            }
            .class(),
            MsgClass::Directory
        );
        assert_eq!(MemMessage::Data { line: 0, value: 0 }.class(), MsgClass::L1);
        assert_eq!(
            MemMessage::DramRead {
                line: 0,
                requester: NodeId::new(0)
            }
            .class(),
            MsgClass::MemoryController
        );
    }
}
