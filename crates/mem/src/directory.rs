//! The directory slice of the MSI cache-coherence protocol.
//!
//! Each tile (or each memory-controller tile, depending on
//! [`DirectoryPlacement`](crate::hierarchy::DirectoryPlacement)) owns the
//! directory state and the functional backing storage for the cache lines
//! homed there. The directory serialises transactions per line: while a line
//! is busy (waiting for a writeback or for invalidation acknowledgements), new
//! requests for it are queued and replayed when the transaction completes.
//!
//! The slice is a pure state machine: it consumes [`MemMessage`]s and produces
//! `(destination, message, extra_latency)` triples; the surrounding
//! [`MemoryNode`](crate::hierarchy::MemoryNode) turns those into network
//! packets (adding DRAM latency where requested).

use crate::msg::{LineAddr, MemMessage};
use hornet_net::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Sharing state of one line, as known by the directory.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirState {
    /// No cache holds the line.
    Uncached,
    /// One or more caches hold read-only copies.
    Shared(BTreeSet<NodeId>),
    /// Exactly one cache holds a modified copy.
    Modified(NodeId),
}

/// A transaction the directory is waiting to finish.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Pending {
    /// Waiting for the owner's writeback triggered by a Fetch on behalf of
    /// `requester`; `exclusive` distinguishes GetM from GetS.
    AwaitWriteback {
        requester: NodeId,
        exclusive: bool,
        owner: NodeId,
    },
    /// Waiting for `remaining` invalidation acks before granting M to
    /// `requester`.
    AwaitInvAcks { requester: NodeId, remaining: usize },
}

/// Directory bookkeeping for one line.
#[derive(Clone, Debug)]
struct Entry {
    state: DirState,
    pending: Option<Pending>,
    queued: VecDeque<MemMessage>,
    value: u64,
}

impl Default for Entry {
    fn default() -> Self {
        Self {
            state: DirState::Uncached,
            pending: None,
            queued: VecDeque::new(),
            value: 0,
        }
    }
}

/// Counters kept by a directory slice.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryStats {
    /// GetS requests processed.
    pub get_s: u64,
    /// GetM requests processed.
    pub get_m: u64,
    /// Invalidations sent to sharers.
    pub invalidations: u64,
    /// Fetch/forward requests sent to owners.
    pub fetches: u64,
    /// Writebacks absorbed.
    pub writebacks: u64,
    /// Requests that had to read the backing memory (DRAM).
    pub dram_reads: u64,
    /// Requests queued behind a busy line.
    pub queued: u64,
}

/// An outbound message produced by the directory: destination, message, and
/// whether it models a DRAM access (so the caller adds memory latency).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirOutput {
    /// Destination node.
    pub dst: NodeId,
    /// The protocol message.
    pub msg: MemMessage,
    /// True if a DRAM access was needed to produce this message.
    pub from_memory: bool,
}

/// The directory slice homed at one node.
#[derive(Clone, Debug, Default)]
pub struct DirectorySlice {
    lines: HashMap<LineAddr, Entry>,
    stats: DirectoryStats,
}

impl DirectorySlice {
    /// Creates an empty directory slice.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters.
    pub fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    /// The directory's view of a line's sharing state (for tests and
    /// invariant checks).
    pub fn state_of(&self, line: LineAddr) -> DirState {
        self.lines
            .get(&line)
            .map(|e| e.state.clone())
            .unwrap_or(DirState::Uncached)
    }

    /// The functional value of a line as known by the home memory.
    pub fn value_of(&self, line: LineAddr) -> u64 {
        self.lines.get(&line).map(|e| e.value).unwrap_or(0)
    }

    /// True if the line currently has a transaction in flight.
    pub fn is_busy(&self, line: LineAddr) -> bool {
        self.lines
            .get(&line)
            .map(|e| e.pending.is_some())
            .unwrap_or(false)
    }

    /// Handles one inbound directory-class message and returns the outbound
    /// messages it produces.
    pub fn handle(&mut self, msg: MemMessage) -> Vec<DirOutput> {
        match msg {
            MemMessage::GetS { line, requester } => self.handle_get(line, requester, false),
            MemMessage::GetM { line, requester } => self.handle_get(line, requester, true),
            MemMessage::PutM { line, value, from } => self.handle_putm(line, value, from),
            MemMessage::InvAck { line, from } => self.handle_inv_ack(line, from),
            MemMessage::RemoteRead { addr, requester } => {
                let line = addr; // NUCA operates on word addresses directly
                let value = self.lines.entry(line).or_default().value;
                vec![DirOutput {
                    dst: requester,
                    msg: MemMessage::RemoteReadResp { addr, value },
                    from_memory: true,
                }]
            }
            MemMessage::RemoteWrite {
                addr,
                value,
                requester,
            } => {
                self.lines.entry(addr).or_default().value = value;
                vec![DirOutput {
                    dst: requester,
                    msg: MemMessage::RemoteWriteAck { addr },
                    from_memory: true,
                }]
            }
            _ => Vec::new(),
        }
    }

    fn handle_get(&mut self, line: LineAddr, requester: NodeId, exclusive: bool) -> Vec<DirOutput> {
        if exclusive {
            self.stats.get_m += 1;
        } else {
            self.stats.get_s += 1;
        }
        let entry = self.lines.entry(line).or_default();
        if entry.pending.is_some() {
            self.stats.queued += 1;
            entry.queued.push_back(if exclusive {
                MemMessage::GetM { line, requester }
            } else {
                MemMessage::GetS { line, requester }
            });
            return Vec::new();
        }
        let value = entry.value;
        match entry.state.clone() {
            DirState::Uncached => {
                entry.state = if exclusive {
                    DirState::Modified(requester)
                } else {
                    DirState::Shared(BTreeSet::from([requester]))
                };
                self.stats.dram_reads += 1;
                vec![DirOutput {
                    dst: requester,
                    msg: MemMessage::Data { line, value },
                    from_memory: true,
                }]
            }
            DirState::Shared(mut sharers) => {
                if !exclusive {
                    sharers.insert(requester);
                    entry.state = DirState::Shared(sharers);
                    return vec![DirOutput {
                        dst: requester,
                        msg: MemMessage::Data { line, value },
                        from_memory: false,
                    }];
                }
                // GetM over a shared line: invalidate every other sharer.
                let others: Vec<NodeId> = sharers
                    .iter()
                    .copied()
                    .filter(|&s| s != requester)
                    .collect();
                if others.is_empty() {
                    entry.state = DirState::Modified(requester);
                    return vec![DirOutput {
                        dst: requester,
                        msg: MemMessage::Data { line, value },
                        from_memory: false,
                    }];
                }
                entry.pending = Some(Pending::AwaitInvAcks {
                    requester,
                    remaining: others.len(),
                });
                self.stats.invalidations += others.len() as u64;
                others
                    .into_iter()
                    .map(|dst| DirOutput {
                        dst,
                        msg: MemMessage::Invalidate { line },
                        from_memory: false,
                    })
                    .collect()
            }
            DirState::Modified(owner) => {
                if owner == requester {
                    // The owner re-requesting (e.g. lost its copy silently is
                    // impossible in this protocol, but be permissive): grant.
                    entry.state = DirState::Modified(requester);
                    return vec![DirOutput {
                        dst: requester,
                        msg: MemMessage::Data { line, value },
                        from_memory: false,
                    }];
                }
                entry.pending = Some(Pending::AwaitWriteback {
                    requester,
                    exclusive,
                    owner,
                });
                self.stats.fetches += 1;
                vec![DirOutput {
                    dst: owner,
                    msg: MemMessage::Fetch {
                        line,
                        requester,
                        invalidate: exclusive,
                    },
                    from_memory: false,
                }]
            }
        }
    }

    fn handle_putm(&mut self, line: LineAddr, value: u64, from: NodeId) -> Vec<DirOutput> {
        self.stats.writebacks += 1;
        let entry = self.lines.entry(line).or_default();
        entry.value = value;
        match entry.pending.clone() {
            Some(Pending::AwaitWriteback {
                requester,
                exclusive,
                owner,
            }) if owner == from => {
                entry.pending = None;
                entry.state = if exclusive {
                    DirState::Modified(requester)
                } else {
                    DirState::Shared(BTreeSet::from([owner, requester]))
                };
                self.drain_queue(line)
            }
            _ => {
                // Plain eviction writeback.
                if entry.state == DirState::Modified(from) {
                    entry.state = DirState::Uncached;
                }
                self.drain_queue(line)
            }
        }
    }

    fn handle_inv_ack(&mut self, line: LineAddr, _from: NodeId) -> Vec<DirOutput> {
        let entry = self.lines.entry(line).or_default();
        let mut out = Vec::new();
        if let Some(Pending::AwaitInvAcks {
            requester,
            remaining,
        }) = entry.pending.clone()
        {
            if remaining <= 1 {
                entry.pending = None;
                entry.state = DirState::Modified(requester);
                let value = entry.value;
                out.push(DirOutput {
                    dst: requester,
                    msg: MemMessage::Data { line, value },
                    from_memory: false,
                });
                out.extend(self.drain_queue(line));
            } else {
                entry.pending = Some(Pending::AwaitInvAcks {
                    requester,
                    remaining: remaining - 1,
                });
            }
        }
        out
    }

    /// Replays requests queued behind a line that just became quiescent.
    fn drain_queue(&mut self, line: LineAddr) -> Vec<DirOutput> {
        let mut out = Vec::new();
        loop {
            let Some(entry) = self.lines.get_mut(&line) else {
                return out;
            };
            if entry.pending.is_some() {
                return out;
            }
            let Some(next) = entry.queued.pop_front() else {
                return out;
            };
            out.extend(self.handle(next));
        }
    }

    /// Serializes the slice's full state — per-line sharing state, in-flight
    /// transactions, queued requests, functional line values and counters —
    /// for a checkpoint. Lines are sorted by address so the encoding is
    /// canonical regardless of hash-map iteration order.
    pub fn snapshot(&self, e: &mut hornet_net::codec::Enc) {
        let mut lines: Vec<(&LineAddr, &Entry)> = self.lines.iter().collect();
        lines.sort_by_key(|(addr, _)| **addr);
        e.u32(lines.len() as u32);
        for (addr, entry) in lines {
            e.u64(*addr);
            match &entry.state {
                DirState::Uncached => {
                    e.u8(0);
                }
                DirState::Shared(sharers) => {
                    e.u8(1).u32(sharers.len() as u32);
                    for s in sharers {
                        e.u32(s.raw());
                    }
                }
                DirState::Modified(owner) => {
                    e.u8(2).u32(owner.raw());
                }
            }
            match &entry.pending {
                None => {
                    e.u8(0);
                }
                Some(Pending::AwaitWriteback {
                    requester,
                    exclusive,
                    owner,
                }) => {
                    e.u8(1)
                        .u32(requester.raw())
                        .u8(*exclusive as u8)
                        .u32(owner.raw());
                }
                Some(Pending::AwaitInvAcks {
                    requester,
                    remaining,
                }) => {
                    e.u8(2).u32(requester.raw()).u32(*remaining as u32);
                }
            }
            e.u32(entry.queued.len() as u32);
            for msg in &entry.queued {
                let words = msg.encode();
                e.u32(words.len() as u32);
                for w in words.words() {
                    e.u64(*w);
                }
            }
            e.u64(entry.value);
        }
        e.u64(self.stats.get_s)
            .u64(self.stats.get_m)
            .u64(self.stats.invalidations)
            .u64(self.stats.fetches)
            .u64(self.stats.writebacks)
            .u64(self.stats.dram_reads)
            .u64(self.stats.queued);
    }

    /// Restores the state captured by [`snapshot`](Self::snapshot).
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a corrupt record.
    pub fn restore(&mut self, d: &mut hornet_net::codec::Dec) -> std::io::Result<()> {
        let corrupt =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        self.lines.clear();
        for _ in 0..d.u32()? {
            let addr = d.u64()?;
            let state = match d.u8()? {
                0 => DirState::Uncached,
                1 => {
                    let mut sharers = BTreeSet::new();
                    for _ in 0..d.u32()? {
                        sharers.insert(NodeId::new(d.u32()?));
                    }
                    DirState::Shared(sharers)
                }
                2 => DirState::Modified(NodeId::new(d.u32()?)),
                _ => return Err(corrupt("directory checkpoint: bad sharing state")),
            };
            let pending = match d.u8()? {
                0 => None,
                1 => Some(Pending::AwaitWriteback {
                    requester: NodeId::new(d.u32()?),
                    exclusive: d.u8()? != 0,
                    owner: NodeId::new(d.u32()?),
                }),
                2 => Some(Pending::AwaitInvAcks {
                    requester: NodeId::new(d.u32()?),
                    remaining: d.u32()? as usize,
                }),
                _ => return Err(corrupt("directory checkpoint: bad pending state")),
            };
            let mut queued = VecDeque::new();
            for _ in 0..d.u32()? {
                let words = (0..d.u32()?)
                    .map(|_| d.u64())
                    .collect::<std::io::Result<Vec<u64>>>()?;
                let payload = hornet_net::flit::Payload::from_words(&words);
                queued.push_back(
                    MemMessage::decode(&payload)
                        .ok_or_else(|| corrupt("directory checkpoint: bad queued message"))?,
                );
            }
            let value = d.u64()?;
            self.lines.insert(
                addr,
                Entry {
                    state,
                    pending,
                    queued,
                    value,
                },
            );
        }
        self.stats = DirectoryStats {
            get_s: d.u64()?,
            get_m: d.u64()?,
            invalidations: d.u64()?,
            fetches: d.u64()?,
            writebacks: d.u64()?,
            dram_reads: d.u64()?,
            queued: d.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn get_s_on_uncached_reads_memory_and_shares() {
        let mut d = DirectorySlice::new();
        let out = d.handle(MemMessage::GetS {
            line: 4,
            requester: n(1),
        });
        assert_eq!(out.len(), 1);
        assert!(out[0].from_memory);
        assert_eq!(out[0].dst, n(1));
        assert!(matches!(out[0].msg, MemMessage::Data { line: 4, .. }));
        assert_eq!(d.state_of(4), DirState::Shared(BTreeSet::from([n(1)])));
        assert_eq!(d.stats().dram_reads, 1);
    }

    #[test]
    fn get_m_over_shared_invalidates_everyone_else() {
        let mut d = DirectorySlice::new();
        d.handle(MemMessage::GetS {
            line: 4,
            requester: n(1),
        });
        d.handle(MemMessage::GetS {
            line: 4,
            requester: n(2),
        });
        d.handle(MemMessage::GetS {
            line: 4,
            requester: n(3),
        });
        let out = d.handle(MemMessage::GetM {
            line: 4,
            requester: n(1),
        });
        // Invalidations to nodes 2 and 3; data comes only after both acks.
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|o| matches!(o.msg, MemMessage::Invalidate { line: 4 })));
        assert!(d.is_busy(4));
        assert!(d
            .handle(MemMessage::InvAck {
                line: 4,
                from: n(2)
            })
            .is_empty());
        let done = d.handle(MemMessage::InvAck {
            line: 4,
            from: n(3),
        });
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].dst, n(1));
        assert_eq!(d.state_of(4), DirState::Modified(n(1)));
        assert!(!d.is_busy(4));
    }

    #[test]
    fn get_s_over_modified_fetches_from_owner() {
        let mut d = DirectorySlice::new();
        d.handle(MemMessage::GetM {
            line: 8,
            requester: n(5),
        });
        assert_eq!(d.state_of(8), DirState::Modified(n(5)));
        let out = d.handle(MemMessage::GetS {
            line: 8,
            requester: n(6),
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, n(5));
        assert!(matches!(
            out[0].msg,
            MemMessage::Fetch { line: 8, requester, invalidate: false } if requester == n(6)
        ));
        // Owner writes back; directory becomes Shared{5,6}.
        let after = d.handle(MemMessage::PutM {
            line: 8,
            value: 99,
            from: n(5),
        });
        assert!(
            after.is_empty(),
            "owner forwards data directly to the requester"
        );
        assert_eq!(
            d.state_of(8),
            DirState::Shared(BTreeSet::from([n(5), n(6)]))
        );
        assert_eq!(d.value_of(8), 99);
    }

    #[test]
    fn busy_lines_queue_requests_and_replay_them() {
        let mut d = DirectorySlice::new();
        d.handle(MemMessage::GetM {
            line: 1,
            requester: n(1),
        });
        // Second requester: directory fetches from owner and goes busy.
        let _ = d.handle(MemMessage::GetM {
            line: 1,
            requester: n(2),
        });
        assert!(d.is_busy(1));
        // Third requester must be queued.
        let out = d.handle(MemMessage::GetS {
            line: 1,
            requester: n(3),
        });
        assert!(out.is_empty());
        assert_eq!(d.stats().queued, 1);
        // Owner's writeback completes the second transaction and replays the
        // queued GetS, which fetches from the new owner (node 2).
        let replay = d.handle(MemMessage::PutM {
            line: 1,
            value: 7,
            from: n(1),
        });
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].dst, n(2));
        assert!(matches!(replay[0].msg, MemMessage::Fetch { .. }));
    }

    #[test]
    fn eviction_writeback_returns_line_to_uncached() {
        let mut d = DirectorySlice::new();
        d.handle(MemMessage::GetM {
            line: 2,
            requester: n(4),
        });
        let out = d.handle(MemMessage::PutM {
            line: 2,
            value: 123,
            from: n(4),
        });
        assert!(out.is_empty());
        assert_eq!(d.state_of(2), DirState::Uncached);
        assert_eq!(d.value_of(2), 123);
        // A later read sees the written-back value.
        let read = d.handle(MemMessage::GetS {
            line: 2,
            requester: n(5),
        });
        assert!(matches!(read[0].msg, MemMessage::Data { value: 123, .. }));
    }

    #[test]
    fn nuca_remote_accesses_touch_home_memory() {
        let mut d = DirectorySlice::new();
        let w = d.handle(MemMessage::RemoteWrite {
            addr: 0x20,
            value: 77,
            requester: n(1),
        });
        assert!(matches!(
            w[0].msg,
            MemMessage::RemoteWriteAck { addr: 0x20 }
        ));
        let r = d.handle(MemMessage::RemoteRead {
            addr: 0x20,
            requester: n(2),
        });
        assert!(matches!(
            r[0].msg,
            MemMessage::RemoteReadResp {
                addr: 0x20,
                value: 77
            }
        ));
        assert_eq!(r[0].dst, n(2));
    }

    #[test]
    fn at_most_one_modified_owner_ever() {
        // Drive a random-ish sequence and check the single-owner invariant.
        let mut d = DirectorySlice::new();
        let line = 3;
        for i in 0..20u32 {
            let req = n(i % 4);
            let out = if i % 3 == 0 {
                d.handle(MemMessage::GetM {
                    line,
                    requester: req,
                })
            } else {
                d.handle(MemMessage::GetS {
                    line,
                    requester: req,
                })
            };
            // Answer any fetch/invalidate immediately so the protocol advances.
            for o in out {
                match o.msg {
                    MemMessage::Fetch { line, .. } => {
                        d.handle(MemMessage::PutM {
                            line,
                            value: 0,
                            from: o.dst,
                        });
                    }
                    MemMessage::Invalidate { line } => {
                        d.handle(MemMessage::InvAck { line, from: o.dst });
                    }
                    _ => {}
                }
            }
            match d.state_of(line) {
                DirState::Modified(_) | DirState::Shared(_) | DirState::Uncached => {}
            }
        }
    }
}
