//! A standalone memory-controller agent.
//!
//! Tiles at the edge of the chip (or a single corner tile, as in the paper's
//! SPLASH experiments) host memory controllers: they accept `DramRead` /
//! `DramWrite` packets, model DRAM access latency and limited service
//! bandwidth, and send `DramReadResp` packets back. The number and placement
//! of memory controllers is the knob Figure 11 sweeps.

use crate::msg::{MemMessage, MsgClass};
use hornet_net::agent::{NodeAgent, NodeIo};
use hornet_net::ids::{Cycle, NodeId};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Memory-controller timing parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryControllerConfig {
    /// DRAM access latency, in network cycles.
    pub dram_latency: Cycle,
    /// Requests the controller can start servicing per cycle.
    pub requests_per_cycle: u32,
    /// Flits in a control packet.
    pub control_packet_len: u32,
    /// Flits in a data packet.
    pub data_packet_len: u32,
}

impl Default for MemoryControllerConfig {
    fn default() -> Self {
        Self {
            dram_latency: 50,
            requests_per_cycle: 1,
            control_packet_len: 2,
            data_packet_len: 8,
        }
    }
}

/// Counters kept by a memory controller.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryControllerStats {
    /// Read requests served.
    pub reads: u64,
    /// Write requests absorbed.
    pub writes: u64,
    /// Sum of queueing delays (cycles spent waiting before service).
    pub total_queue_delay: u64,
    /// Maximum queue depth observed.
    pub max_queue_depth: usize,
}

#[derive(Copy, Clone, Debug)]
struct PendingRead {
    line: u64,
    requester: NodeId,
    arrived_at: Cycle,
}

#[derive(Copy, Clone, Debug)]
struct InService {
    line: u64,
    requester: NodeId,
    done_at: Cycle,
}

/// A memory-controller agent attached to one tile.
#[derive(Debug)]
pub struct MemoryControllerAgent {
    node: NodeId,
    node_count: usize,
    config: MemoryControllerConfig,
    queue: VecDeque<PendingRead>,
    in_service: Vec<InService>,
    values: std::collections::HashMap<u64, u64>,
    stats: MemoryControllerStats,
}

impl MemoryControllerAgent {
    /// Creates a memory controller for `node`.
    pub fn new(node: NodeId, node_count: usize, config: MemoryControllerConfig) -> Self {
        Self {
            node,
            node_count,
            config,
            queue: VecDeque::new(),
            in_service: Vec::new(),
            values: std::collections::HashMap::new(),
            stats: MemoryControllerStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &MemoryControllerStats {
        &self.stats
    }

    /// Pending plus in-service requests.
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.in_service.len()
    }
}

impl NodeAgent for MemoryControllerAgent {
    fn tick(&mut self, io: &mut dyn NodeIo, _rng: &mut ChaCha12Rng) {
        let now = io.cycle();
        // Accept new requests.
        while let Some(delivered) = io.peek_recv() {
            let Some(msg) = MemMessage::decode(&delivered.packet.payload) else {
                break; // not a memory packet; leave it for other agents
            };
            if msg.class() != MsgClass::MemoryController {
                break;
            }
            let delivered = io.try_recv().expect("peeked");
            let _ = delivered;
            match msg {
                MemMessage::DramRead { line, requester } => {
                    self.queue.push_back(PendingRead {
                        line,
                        requester,
                        arrived_at: now,
                    });
                    self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
                }
                MemMessage::DramWrite { line, value } => {
                    self.values.insert(line, value);
                    self.stats.writes += 1;
                }
                _ => {}
            }
        }
        // Start servicing up to `requests_per_cycle` queued reads.
        for _ in 0..self.config.requests_per_cycle {
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            self.stats.reads += 1;
            self.stats.total_queue_delay += now.saturating_sub(req.arrived_at);
            self.in_service.push(InService {
                line: req.line,
                requester: req.requester,
                done_at: now + self.config.dram_latency,
            });
        }
        // Complete finished reads.
        let mut done = Vec::new();
        self.in_service.retain(|s| {
            if s.done_at <= now {
                done.push(*s);
                false
            } else {
                true
            }
        });
        for s in done {
            let value = self.values.get(&s.line).copied().unwrap_or(0);
            let id = io.alloc_packet_id();
            let packet = MemMessage::DramReadResp {
                line: s.line,
                value,
            }
            .to_packet(
                id,
                self.node,
                s.requester,
                self.node_count,
                now,
                self.config.control_packet_len,
                self.config.data_packet_len,
            );
            io.send(packet);
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.queue.is_empty() && self.in_service.is_empty() {
            None
        } else {
            Some(
                self.in_service
                    .iter()
                    .map(|s| s.done_at)
                    .min()
                    .unwrap_or(now + 1)
                    .max(now + 1),
            )
        }
    }

    fn finished(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_empty()
    }

    fn label(&self) -> &str {
        "memory-controller"
    }

    fn snapshot(&self, e: &mut hornet_net::codec::Enc) {
        e.u32(self.queue.len() as u32);
        for r in &self.queue {
            e.u64(r.line).u32(r.requester.raw()).u64(r.arrived_at);
        }
        e.u32(self.in_service.len() as u32);
        for s in &self.in_service {
            e.u64(s.line).u32(s.requester.raw()).u64(s.done_at);
        }
        let mut values: Vec<(&u64, &u64)> = self.values.iter().collect();
        values.sort_by_key(|(line, _)| **line);
        e.u32(values.len() as u32);
        for (line, value) in values {
            e.u64(*line).u64(*value);
        }
        e.u64(self.stats.reads)
            .u64(self.stats.writes)
            .u64(self.stats.total_queue_delay)
            .u64(self.stats.max_queue_depth as u64);
    }

    fn restore(&mut self, d: &mut hornet_net::codec::Dec) -> std::io::Result<()> {
        self.queue.clear();
        for _ in 0..d.u32()? {
            self.queue.push_back(PendingRead {
                line: d.u64()?,
                requester: NodeId::new(d.u32()?),
                arrived_at: d.u64()?,
            });
        }
        self.in_service.clear();
        for _ in 0..d.u32()? {
            self.in_service.push(InService {
                line: d.u64()?,
                requester: NodeId::new(d.u32()?),
                done_at: d.u64()?,
            });
        }
        self.values.clear();
        for _ in 0..d.u32()? {
            let line = d.u64()?;
            let value = d.u64()?;
            self.values.insert(line, value);
        }
        self.stats = MemoryControllerStats {
            reads: d.u64()?,
            writes: d.u64()?,
            total_queue_delay: d.u64()?,
            max_queue_depth: d.u64()? as usize,
        };
        Ok(())
    }
}

/// Places memory controllers on a mesh: `1` puts one in the lower-left corner
/// (the paper's SPLASH configuration), `5` puts one in each corner plus the
/// centre (the Figure 11 comparison point).
pub fn default_mc_placement(width: usize, height: usize, count: usize) -> Vec<NodeId> {
    let at = |x: usize, y: usize| NodeId::from(y * width + x);
    match count {
        0 => Vec::new(),
        1 => vec![at(0, 0)],
        2 => vec![at(0, 0), at(width - 1, height - 1)],
        4 => vec![
            at(0, 0),
            at(width - 1, 0),
            at(0, height - 1),
            at(width - 1, height - 1),
        ],
        _ => {
            let mut v = vec![
                at(0, 0),
                at(width - 1, 0),
                at(0, height - 1),
                at(width - 1, height - 1),
                at(width / 2, height / 2),
            ];
            v.truncate(count);
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornet_net::config::NetworkConfig;
    use hornet_net::flit::Packet;
    use hornet_net::geometry::Geometry;
    use hornet_net::ids::PacketId;
    use hornet_net::network::Network;
    use hornet_net::routing::FlowSpec;

    /// An agent that sends a few DRAM reads to the MC and collects replies.
    struct Requester {
        mc: NodeId,
        to_send: u32,
        got: u32,
        node_count: usize,
    }
    impl NodeAgent for Requester {
        fn tick(&mut self, io: &mut dyn NodeIo, _rng: &mut ChaCha12Rng) {
            while let Some(d) = io.try_recv() {
                if matches!(
                    MemMessage::decode(&d.packet.payload),
                    Some(MemMessage::DramReadResp { .. })
                ) {
                    self.got += 1;
                }
            }
            if self.to_send > 0 {
                let id = io.alloc_packet_id();
                let src = io.node();
                let msg = MemMessage::DramRead {
                    line: self.to_send as u64,
                    requester: src,
                };
                io.send(msg.to_packet(id, src, self.mc, self.node_count, io.cycle(), 2, 8));
                self.to_send -= 1;
            }
        }
        fn next_event(&self, now: Cycle) -> Option<Cycle> {
            (self.to_send > 0).then_some(now + 1)
        }
        fn finished(&self) -> bool {
            self.to_send == 0 && self.got > 0
        }
    }

    #[test]
    fn default_placement_counts() {
        assert_eq!(default_mc_placement(8, 8, 1), vec![NodeId::new(0)]);
        assert_eq!(default_mc_placement(8, 8, 5).len(), 5);
        assert_eq!(default_mc_placement(8, 8, 4).len(), 4);
        assert!(default_mc_placement(8, 8, 0).is_empty());
    }

    #[test]
    fn controller_replies_to_requests_over_the_network() {
        let g = Geometry::mesh2d(3, 3);
        let flows = FlowSpec::all_to_all(&g);
        let cfg = NetworkConfig::new(g).with_flows(flows);
        let mut net = Network::new(&cfg, 5).unwrap();
        let mc = NodeId::new(0);
        net.attach_agent(
            mc,
            Box::new(MemoryControllerAgent::new(
                mc,
                9,
                MemoryControllerConfig {
                    dram_latency: 10,
                    ..MemoryControllerConfig::default()
                },
            )),
        );
        net.attach_agent(
            NodeId::new(8),
            Box::new(Requester {
                mc,
                to_send: 3,
                got: 0,
                node_count: 9,
            }),
        );
        assert!(net.run_to_completion(5_000));
        let stats = net.stats();
        // 3 requests + 3 responses crossed the network.
        assert_eq!(stats.delivered_packets, 6);
    }

    #[test]
    fn queueing_delay_grows_when_oversubscribed() {
        // Feed the MC directly (no network) through a mock IO and check that
        // the queue model reports delay when many requests arrive at once.
        struct MockIo {
            cycle: Cycle,
            inbox: VecDeque<hornet_net::flit::DeliveredPacket>,
            sent: Vec<Packet>,
            next: u64,
        }
        impl NodeIo for MockIo {
            fn node(&self) -> NodeId {
                NodeId::new(0)
            }
            fn cycle(&self) -> Cycle {
                self.cycle
            }
            fn alloc_packet_id(&mut self) -> PacketId {
                self.next += 1;
                PacketId::new(self.next)
            }
            fn send(&mut self, packet: Packet) {
                self.sent.push(packet);
            }
            fn try_recv(&mut self) -> Option<hornet_net::flit::DeliveredPacket> {
                self.inbox.pop_front()
            }
            fn peek_recv(&self) -> Option<&hornet_net::flit::DeliveredPacket> {
                self.inbox.front()
            }
            fn injection_backlog(&self) -> usize {
                0
            }
            fn recv_backlog(&self) -> usize {
                self.inbox.len()
            }
        }
        let mut mc =
            MemoryControllerAgent::new(NodeId::new(0), 4, MemoryControllerConfig::default());
        let mut io = MockIo {
            cycle: 0,
            inbox: VecDeque::new(),
            sent: Vec::new(),
            next: 0,
        };
        // Ten simultaneous requests.
        for i in 0..10u64 {
            let msg = MemMessage::DramRead {
                line: i,
                requester: NodeId::new(3),
            };
            let packet =
                msg.to_packet(PacketId::new(i), NodeId::new(3), NodeId::new(0), 4, 0, 2, 8);
            io.inbox.push_back(hornet_net::flit::DeliveredPacket {
                packet,
                delivered_at: 0,
                head_latency: 0,
                tail_latency: 0,
                hops: 0,
            });
        }
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        for cycle in 0..200 {
            io.cycle = cycle;
            mc.tick(&mut io, &mut rng);
        }
        assert_eq!(mc.stats().reads, 10);
        assert_eq!(io.sent.len(), 10);
        assert!(
            mc.stats().total_queue_delay > 0,
            "bandwidth limit must queue"
        );
        assert!(mc.finished());
    }
}
