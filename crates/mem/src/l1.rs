//! The private L1 cache controller (the requester side of the MSI protocol).
//!
//! The controller is blocking — one outstanding miss at a time — which matches
//! the single-cycle in-order core that drives it. Like the directory slice, it
//! is a pure state machine: core accesses and inbound protocol messages go in,
//! outbound protocol messages come out; the surrounding
//! [`MemoryNode`](crate::hierarchy::MemoryNode) handles packetisation.

use crate::cache::{Cache, CacheConfig, LineState};
use crate::msg::{LineAddr, MemMessage};
use hornet_net::ids::{Cycle, NodeId};
use serde::{Deserialize, Serialize};

/// A memory operation issued by the core.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreMemOp {
    /// Load a word.
    Load {
        /// Byte address.
        addr: u64,
    },
    /// Store a word.
    Store {
        /// Byte address.
        addr: u64,
        /// Value to store.
        value: u64,
    },
}

impl CoreMemOp {
    /// The byte address accessed.
    pub fn addr(&self) -> u64 {
        match self {
            CoreMemOp::Load { addr } => *addr,
            CoreMemOp::Store { addr, .. } => *addr,
        }
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, CoreMemOp::Store { .. })
    }
}

/// Outcome of a core access presented to the L1.
#[derive(Clone, Debug, PartialEq)]
pub enum AccessOutcome {
    /// The access hit in the L1 and completed immediately with this value.
    Hit(u64),
    /// The access missed; the returned coherence request must be sent to the
    /// line's home directory, and the core must stall until
    /// [`L1Controller::take_completion`] yields a value.
    Miss(MemMessage),
    /// A previous miss is still outstanding; the core must retry later.
    Busy,
}

/// Where an outbound L1 message should go.
#[derive(Clone, Debug, PartialEq)]
pub enum L1Out {
    /// Send to the home directory of `line`.
    ToHome {
        /// The line whose home should receive the message.
        line: LineAddr,
        /// The message.
        msg: MemMessage,
    },
    /// Send to an explicit node (cache-to-cache forwarding).
    ToNode {
        /// Destination node.
        dst: NodeId,
        /// The message.
        msg: MemMessage,
    },
}

/// Counters kept by the L1 controller.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct L1Stats {
    /// Core loads presented.
    pub loads: u64,
    /// Core stores presented.
    pub stores: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and generated coherence traffic).
    pub misses: u64,
    /// Invalidations received.
    pub invalidations: u64,
    /// Fetch/forward requests served.
    pub fetches_served: u64,
    /// Dirty writebacks sent (evictions and downgrades).
    pub writebacks: u64,
    /// Sum of miss latencies (issue to completion), in cycles.
    pub total_miss_latency: u64,
    /// Completed misses.
    pub completed_misses: u64,
}

#[derive(Copy, Clone, Debug)]
struct Outstanding {
    op: CoreMemOp,
    line: LineAddr,
    issued_at: Cycle,
}

/// The L1 cache controller for one core.
#[derive(Clone, Debug)]
pub struct L1Controller {
    node: NodeId,
    cache: Cache,
    outstanding: Option<Outstanding>,
    completion: Option<u64>,
    stats: L1Stats,
}

impl L1Controller {
    /// Creates an L1 controller with the given cache geometry.
    pub fn new(node: NodeId, config: CacheConfig) -> Self {
        Self {
            node,
            cache: Cache::new(config),
            outstanding: None,
            completion: None,
            stats: L1Stats::default(),
        }
    }

    /// The node this L1 belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Counters.
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    /// The underlying cache (for inspection in tests).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// True if a miss is outstanding.
    pub fn has_outstanding(&self) -> bool {
        self.outstanding.is_some()
    }

    /// Takes the completion value of the last finished miss, if any.
    pub fn take_completion(&mut self) -> Option<u64> {
        self.completion.take()
    }

    /// Presents a core access.
    pub fn access(&mut self, op: CoreMemOp, now: Cycle) -> AccessOutcome {
        if self.outstanding.is_some() {
            return AccessOutcome::Busy;
        }
        if op.is_store() {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let line = self.cache.config().line_of(op.addr());
        match (self.cache.lookup(line), op) {
            (Some((LineState::Modified, value)), CoreMemOp::Load { .. }) => {
                self.stats.hits += 1;
                AccessOutcome::Hit(value)
            }
            (Some((LineState::Shared, value)), CoreMemOp::Load { .. }) => {
                self.stats.hits += 1;
                AccessOutcome::Hit(value)
            }
            (Some((LineState::Modified, _)), CoreMemOp::Store { value, .. }) => {
                self.stats.hits += 1;
                self.cache.write_value(line, value);
                AccessOutcome::Hit(value)
            }
            (_, op) => {
                // Miss (or store to a Shared line, which needs an upgrade).
                self.stats.misses += 1;
                self.outstanding = Some(Outstanding {
                    op,
                    line,
                    issued_at: now,
                });
                let msg = if op.is_store() {
                    MemMessage::GetM {
                        line,
                        requester: self.node,
                    }
                } else {
                    MemMessage::GetS {
                        line,
                        requester: self.node,
                    }
                };
                AccessOutcome::Miss(msg)
            }
        }
    }

    /// Handles an inbound L1-class protocol message and returns any outbound
    /// messages it produces.
    pub fn handle(&mut self, msg: MemMessage, now: Cycle) -> Vec<L1Out> {
        match msg {
            MemMessage::Data { line, value } | MemMessage::FwdData { line, value } => {
                self.complete_fill(line, value, now)
            }
            MemMessage::Fetch {
                line,
                requester,
                invalidate,
            } => {
                self.stats.fetches_served += 1;
                let value = self.cache.peek(line).map(|(_, v)| v).unwrap_or(0);
                let new_state = if invalidate {
                    LineState::Invalid
                } else {
                    LineState::Shared
                };
                self.cache.set_state(line, new_state);
                self.stats.writebacks += 1;
                vec![
                    L1Out::ToNode {
                        dst: requester,
                        msg: MemMessage::FwdData { line, value },
                    },
                    L1Out::ToHome {
                        line,
                        msg: MemMessage::PutM {
                            line,
                            value,
                            from: self.node,
                        },
                    },
                ]
            }
            MemMessage::Invalidate { line } => {
                self.stats.invalidations += 1;
                self.cache.set_state(line, LineState::Invalid);
                vec![L1Out::ToHome {
                    line,
                    msg: MemMessage::InvAck {
                        line,
                        from: self.node,
                    },
                }]
            }
            MemMessage::RemoteReadResp { value, .. } | MemMessage::DramReadResp { value, .. } => {
                self.finish_outstanding(value, now);
                Vec::new()
            }
            MemMessage::RemoteWriteAck { .. } => {
                let value = match self.outstanding.map(|o| o.op) {
                    Some(CoreMemOp::Store { value, .. }) => value,
                    _ => 0,
                };
                self.finish_outstanding(value, now);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn complete_fill(&mut self, line: LineAddr, value: u64, now: Cycle) -> Vec<L1Out> {
        let mut out = Vec::new();
        let (state, fill_value, completion) = match self.outstanding {
            Some(o) if o.line == line => match o.op {
                CoreMemOp::Load { .. } => (LineState::Shared, value, value),
                CoreMemOp::Store { value: stored, .. } => (LineState::Modified, stored, stored),
            },
            // Fill we were not waiting for (e.g. prefetch-like duplicate):
            // install as Shared.
            _ => (LineState::Shared, value, value),
        };
        if let Some(evicted) = self.cache.insert(line, state, fill_value) {
            if evicted.state == LineState::Modified {
                self.stats.writebacks += 1;
                out.push(L1Out::ToHome {
                    line: evicted.line,
                    msg: MemMessage::PutM {
                        line: evicted.line,
                        value: evicted.value,
                        from: self.node,
                    },
                });
            }
        }
        if matches!(self.outstanding, Some(o) if o.line == line) {
            self.finish_outstanding(completion, now);
        }
        out
    }

    fn finish_outstanding(&mut self, value: u64, now: Cycle) {
        if let Some(o) = self.outstanding.take() {
            self.stats.completed_misses += 1;
            self.stats.total_miss_latency += now.saturating_sub(o.issued_at);
            self.completion = Some(value);
        }
    }

    /// Serializes the controller's state (cache contents, the outstanding
    /// miss, any unconsumed completion and the counters) for a checkpoint.
    pub fn snapshot(&self, e: &mut hornet_net::codec::Enc) {
        self.cache.snapshot(e);
        match self.outstanding {
            None => {
                e.u8(0);
            }
            Some(o) => {
                e.u8(1);
                match o.op {
                    CoreMemOp::Load { addr } => e.u8(0).u64(addr),
                    CoreMemOp::Store { addr, value } => e.u8(1).u64(addr).u64(value),
                };
                e.u64(o.line).u64(o.issued_at);
            }
        }
        match self.completion {
            None => e.u8(0),
            Some(v) => e.u8(1).u64(v),
        };
        e.u64(self.stats.loads)
            .u64(self.stats.stores)
            .u64(self.stats.hits)
            .u64(self.stats.misses)
            .u64(self.stats.invalidations)
            .u64(self.stats.fetches_served)
            .u64(self.stats.writebacks)
            .u64(self.stats.total_miss_latency)
            .u64(self.stats.completed_misses);
    }

    /// Restores the state captured by [`snapshot`](Self::snapshot).
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a corrupt record.
    pub fn restore(&mut self, d: &mut hornet_net::codec::Dec) -> std::io::Result<()> {
        let corrupt =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        self.cache.restore(d)?;
        self.outstanding = match d.u8()? {
            0 => None,
            _ => {
                let op = match d.u8()? {
                    0 => CoreMemOp::Load { addr: d.u64()? },
                    1 => CoreMemOp::Store {
                        addr: d.u64()?,
                        value: d.u64()?,
                    },
                    _ => return Err(corrupt("L1 checkpoint: bad op tag")),
                };
                Some(Outstanding {
                    op,
                    line: d.u64()?,
                    issued_at: d.u64()?,
                })
            }
        };
        self.completion = match d.u8()? {
            0 => None,
            _ => Some(d.u64()?),
        };
        self.stats = L1Stats {
            loads: d.u64()?,
            stores: d.u64()?,
            hits: d.u64()?,
            misses: d.u64()?,
            invalidations: d.u64()?,
            fetches_served: d.u64()?,
            writebacks: d.u64()?,
            total_miss_latency: d.u64()?,
            completed_misses: d.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Controller {
        L1Controller::new(
            NodeId::new(3),
            CacheConfig {
                sets: 4,
                ways: 2,
                line_bytes: 64,
            },
        )
    }

    #[test]
    fn load_miss_then_hit() {
        let mut c = l1();
        let out = c.access(CoreMemOp::Load { addr: 0x100 }, 0);
        let AccessOutcome::Miss(MemMessage::GetS { line, requester }) = out else {
            panic!("expected a GetS miss, got {out:?}");
        };
        assert_eq!(line, 4);
        assert_eq!(requester, NodeId::new(3));
        assert!(c.has_outstanding());
        // While the miss is outstanding, further accesses are refused.
        assert_eq!(
            c.access(CoreMemOp::Load { addr: 0x200 }, 1),
            AccessOutcome::Busy
        );
        // Data arrives.
        assert!(c
            .handle(MemMessage::Data { line: 4, value: 42 }, 10)
            .is_empty());
        assert_eq!(c.take_completion(), Some(42));
        assert!(!c.has_outstanding());
        // Now it hits.
        assert_eq!(
            c.access(CoreMemOp::Load { addr: 0x108 }, 11),
            AccessOutcome::Hit(42)
        );
        assert_eq!(c.stats().completed_misses, 1);
        assert_eq!(c.stats().total_miss_latency, 10);
    }

    #[test]
    fn store_to_shared_line_upgrades() {
        let mut c = l1();
        c.access(CoreMemOp::Load { addr: 0x40 }, 0);
        c.handle(MemMessage::Data { line: 1, value: 7 }, 1);
        c.take_completion();
        let out = c.access(
            CoreMemOp::Store {
                addr: 0x40,
                value: 9,
            },
            2,
        );
        assert!(matches!(
            out,
            AccessOutcome::Miss(MemMessage::GetM { line: 1, .. })
        ));
        c.handle(MemMessage::Data { line: 1, value: 7 }, 5);
        assert_eq!(c.take_completion(), Some(9));
        assert_eq!(c.cache().peek(1), Some((LineState::Modified, 9)));
        // A store to a Modified line hits.
        assert_eq!(
            c.access(
                CoreMemOp::Store {
                    addr: 0x48,
                    value: 11
                },
                6
            ),
            AccessOutcome::Hit(11)
        );
    }

    #[test]
    fn fetch_forwards_data_and_writes_back() {
        let mut c = l1();
        c.access(
            CoreMemOp::Store {
                addr: 0x80,
                value: 5,
            },
            0,
        );
        c.handle(MemMessage::Data { line: 2, value: 0 }, 1);
        c.take_completion();
        let out = c.handle(
            MemMessage::Fetch {
                line: 2,
                requester: NodeId::new(9),
                invalidate: false,
            },
            2,
        );
        assert_eq!(out.len(), 2);
        assert!(matches!(
            &out[0],
            L1Out::ToNode { dst, msg: MemMessage::FwdData { line: 2, value: 5 } } if *dst == NodeId::new(9)
        ));
        assert!(matches!(
            &out[1],
            L1Out::ToHome {
                line: 2,
                msg: MemMessage::PutM { value: 5, .. }
            }
        ));
        // Downgraded to Shared, not invalidated.
        assert_eq!(c.cache().peek(2), Some((LineState::Shared, 5)));
        // An invalidating fetch removes the line.
        c.handle(
            MemMessage::Fetch {
                line: 2,
                requester: NodeId::new(9),
                invalidate: true,
            },
            3,
        );
        assert_eq!(c.cache().peek(2), None);
    }

    #[test]
    fn invalidate_acks_to_home() {
        let mut c = l1();
        c.access(CoreMemOp::Load { addr: 0xc0 }, 0);
        c.handle(MemMessage::Data { line: 3, value: 1 }, 1);
        c.take_completion();
        let out = c.handle(MemMessage::Invalidate { line: 3 }, 2);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            L1Out::ToHome {
                line: 3,
                msg: MemMessage::InvAck { .. }
            }
        ));
        assert_eq!(c.cache().peek(3), None);
        // The next load misses again.
        assert!(matches!(
            c.access(CoreMemOp::Load { addr: 0xc0 }, 3),
            AccessOutcome::Miss(_)
        ));
    }

    #[test]
    fn dirty_eviction_emits_writeback() {
        let mut c = L1Controller::new(
            NodeId::new(0),
            CacheConfig {
                sets: 1,
                ways: 1,
                line_bytes: 64,
            },
        );
        c.access(
            CoreMemOp::Store {
                addr: 0x0,
                value: 1,
            },
            0,
        );
        c.handle(MemMessage::Data { line: 0, value: 0 }, 1);
        c.take_completion();
        // A miss to a different line evicts the dirty line 0.
        c.access(CoreMemOp::Load { addr: 0x40 }, 2);
        let out = c.handle(MemMessage::Data { line: 1, value: 3 }, 3);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            L1Out::ToHome {
                line: 0,
                msg: MemMessage::PutM {
                    line: 0,
                    value: 1,
                    ..
                }
            }
        ));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn nuca_responses_complete_without_caching() {
        let mut c = l1();
        // Simulate the hierarchy putting the L1 into a waiting state manually:
        // a NUCA access is issued as a miss by the MemoryNode, so here we just
        // check that the response completes an outstanding op.
        c.access(CoreMemOp::Load { addr: 0x200 }, 0);
        c.handle(
            MemMessage::RemoteReadResp {
                addr: 0x200,
                value: 55,
            },
            4,
        );
        assert_eq!(c.take_completion(), Some(55));
    }
}
