//! A set-associative cache with LRU replacement and MSI line states.
//!
//! Used as the private L1 (and optionally a shared L2 slice) of each simulated
//! core. The cache stores one 64-bit word of "data" per line — the functional
//! contents of memory travel out-of-band (the DMA model), so a single word is
//! enough to verify coherence end-to-end while keeping the model light.

use hornet_net::codec::{Dec, Enc};
use serde::{Deserialize, Serialize};

/// MSI coherence state of a cache line.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineState {
    /// Invalid: not present.
    Invalid,
    /// Shared: read-only copy.
    Shared,
    /// Modified: exclusive, dirty copy.
    Modified,
}

/// Geometry of a cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            sets: 64,
            ways: 4,
            line_bytes: 64,
        }
    }
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    /// The cache-line address (address with the offset bits stripped).
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes as u64
    }

    /// The set index for a line address.
    pub fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }
}

/// One cache way.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Way {
    line: u64,
    state: LineState,
    value: u64,
    lru: u64,
}

/// Hit/miss/eviction counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Evictions of modified (dirty) lines.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative cache.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
    stats: CacheStats,
}

/// The result of inserting a line: the evicted victim, if any.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the victim.
    pub line: u64,
    /// Its state at eviction time.
    pub state: LineState,
    /// Its data value.
    pub value: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways > 0, "associativity must be non-zero");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            sets: vec![Vec::with_capacity(config.ways); config.sets],
            config,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Looks up a line, updating LRU and hit/miss counters. Returns the state
    /// and value if present with at least the required state
    /// (`Shared` suffices for reads; writes require the caller to check for
    /// `Modified` and upgrade via the coherence protocol).
    pub fn lookup(&mut self, line: u64) -> Option<(LineState, u64)> {
        self.tick += 1;
        let set = self.config.set_of(line);
        let tick = self.tick;
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.line == line) {
            w.lru = tick;
            self.stats.hits += 1;
            Some((w.state, w.value))
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Peeks at a line without touching LRU or statistics.
    pub fn peek(&self, line: u64) -> Option<(LineState, u64)> {
        let set = self.config.set_of(line);
        self.sets[set]
            .iter()
            .find(|w| w.line == line)
            .map(|w| (w.state, w.value))
    }

    /// Inserts (or updates) a line with the given state and value, returning
    /// the evicted victim if the set was full.
    pub fn insert(&mut self, line: u64, state: LineState, value: u64) -> Option<Evicted> {
        self.tick += 1;
        let set = self.config.set_of(line);
        let tick = self.tick;
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.line == line) {
            w.state = state;
            w.value = value;
            w.lru = tick;
            return None;
        }
        let mut evicted = None;
        if self.sets[set].len() >= self.config.ways {
            let victim_idx = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            let victim = self.sets[set].swap_remove(victim_idx);
            self.stats.evictions += 1;
            if victim.state == LineState::Modified {
                self.stats.dirty_evictions += 1;
            }
            evicted = Some(Evicted {
                line: victim.line,
                state: victim.state,
                value: victim.value,
            });
        }
        self.sets[set].push(Way {
            line,
            state,
            value,
            lru: tick,
        });
        evicted
    }

    /// Changes the state of a resident line (e.g. S→I on invalidation, M→S on
    /// downgrade). Returns the previous state and value, or `None` if the line
    /// is not resident. Transitioning to `Invalid` removes the line.
    pub fn set_state(&mut self, line: u64, state: LineState) -> Option<(LineState, u64)> {
        let set = self.config.set_of(line);
        let idx = self.sets[set].iter().position(|w| w.line == line)?;
        let prev = (self.sets[set][idx].state, self.sets[set][idx].value);
        if state == LineState::Invalid {
            self.sets[set].swap_remove(idx);
        } else {
            self.sets[set][idx].state = state;
        }
        Some(prev)
    }

    /// Updates the value of a resident line (used by stores that hit in M).
    pub fn write_value(&mut self, line: u64, value: u64) -> bool {
        let set = self.config.set_of(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.line == line) {
            w.value = value;
            true
        } else {
            false
        }
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True if the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all resident lines as (line, state, value).
    pub fn iter(&self) -> impl Iterator<Item = (u64, LineState, u64)> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|w| (w.line, w.state, w.value)))
    }

    /// Serializes the cache's full state for a checkpoint. The LRU tick and
    /// per-way ages are included — replacement decisions (and therefore the
    /// miss traffic a restored run generates) must match the uninterrupted
    /// run exactly. Ways are stored in their in-set order, which
    /// `swap_remove` permutes over time, so the encoding is reproducible for
    /// a given history.
    pub fn snapshot(&self, e: &mut Enc) {
        e.u64(self.tick);
        e.u64(self.stats.hits)
            .u64(self.stats.misses)
            .u64(self.stats.evictions)
            .u64(self.stats.dirty_evictions);
        e.u32(self.sets.len() as u32);
        for set in &self.sets {
            e.u32(set.len() as u32);
            for w in set {
                e.u64(w.line)
                    .u8(match w.state {
                        LineState::Invalid => 0,
                        LineState::Shared => 1,
                        LineState::Modified => 2,
                    })
                    .u64(w.value)
                    .u64(w.lru);
            }
        }
    }

    /// Restores the state captured by [`snapshot`](Self::snapshot) into this
    /// cache (which must have the same geometry).
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a geometry mismatch or corrupt record.
    pub fn restore(&mut self, d: &mut Dec) -> std::io::Result<()> {
        let corrupt =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        self.tick = d.u64()?;
        self.stats = CacheStats {
            hits: d.u64()?,
            misses: d.u64()?,
            evictions: d.u64()?,
            dirty_evictions: d.u64()?,
        };
        if d.u32()? as usize != self.sets.len() {
            return Err(corrupt("cache checkpoint: set count mismatch"));
        }
        let max_ways = self.config.ways;
        for set in &mut self.sets {
            let ways = d.u32()? as usize;
            if ways > max_ways {
                return Err(corrupt("cache checkpoint: way count exceeds associativity"));
            }
            set.clear();
            for _ in 0..ways {
                set.push(Way {
                    line: d.u64()?,
                    state: match d.u8()? {
                        0 => LineState::Invalid,
                        1 => LineState::Shared,
                        2 => LineState::Modified,
                        _ => return Err(corrupt("cache checkpoint: bad line state")),
                    },
                    value: d.u64()?,
                    lru: d.u64()?,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = small();
        assert!(c.lookup(10).is_none());
        c.insert(10, LineState::Shared, 77);
        assert_eq!(c.lookup(10), Some((LineState::Shared, 77)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Lines 0, 2, 4 all map to set 0 (even line addresses with 2 sets).
        c.insert(0, LineState::Shared, 1);
        c.insert(2, LineState::Shared, 2);
        assert!(c.lookup(0).is_some()); // touch 0 so 2 becomes LRU
        let evicted = c.insert(4, LineState::Shared, 3).expect("eviction");
        assert_eq!(evicted.line, 2);
        assert!(c.peek(0).is_some());
        assert!(c.peek(2).is_none());
        assert!(c.peek(4).is_some());
    }

    #[test]
    fn dirty_evictions_are_counted() {
        let mut c = small();
        c.insert(0, LineState::Modified, 1);
        c.insert(2, LineState::Shared, 2);
        c.insert(4, LineState::Shared, 3); // evicts line 0 (LRU, dirty)
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn set_state_invalid_removes_line() {
        let mut c = small();
        c.insert(0, LineState::Shared, 5);
        assert_eq!(
            c.set_state(0, LineState::Invalid),
            Some((LineState::Shared, 5))
        );
        assert!(c.peek(0).is_none());
        assert_eq!(c.set_state(0, LineState::Shared), None);
        assert!(c.is_empty());
    }

    #[test]
    fn write_value_requires_residency() {
        let mut c = small();
        assert!(!c.write_value(3, 9));
        c.insert(3, LineState::Modified, 0);
        assert!(c.write_value(3, 9));
        assert_eq!(c.peek(3), Some((LineState::Modified, 9)));
    }

    #[test]
    fn config_address_helpers() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.capacity_bytes(), 64 * 4 * 64);
        assert_eq!(cfg.line_of(0x1000), 0x40);
        assert_eq!(cfg.line_of(0x103f), 0x40);
        assert_eq!(cfg.set_of(0x40), 0);
        assert_eq!(cfg.set_of(0x41), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 64,
        });
    }
}
