//! # hornet-mem
//!
//! The memory hierarchy of HORNET-RS: set-associative caches, a
//! directory-based MSI coherence protocol, NUCA-style distributed shared
//! memory with remote accesses, and memory-controller agents — all
//! communicating over the simulated network, so that memory traffic shapes
//! (and is shaped by) on-chip congestion exactly as in the paper.
//!
//! The main entry point is [`hierarchy::MemoryNode`], the per-tile memory
//! system owned by a core model or native frontend.
//!
//! ```
//! use hornet_mem::hierarchy::{MemoryConfig, MemoryNode};
//! use hornet_mem::l1::CoreMemOp;
//! use hornet_net::ids::NodeId;
//!
//! let mut mem = MemoryNode::new(NodeId::new(0), 1, MemoryConfig::default());
//! // A cold store misses and will complete after the (local) DRAM latency.
//! assert_eq!(mem.core_access(CoreMemOp::Store { addr: 0x40, value: 1 }, 0), None);
//! ```

pub mod cache;
pub mod controller;
pub mod directory;
pub mod hierarchy;
pub mod l1;
pub mod msg;

pub use cache::{Cache, CacheConfig, CacheStats, LineState};
pub use controller::{MemoryControllerAgent, MemoryControllerConfig};
pub use directory::{DirState, DirectorySlice};
pub use hierarchy::{CoherenceMode, DirectoryPlacement, MemoryConfig, MemoryNode};
pub use l1::{AccessOutcome, CoreMemOp, L1Controller};
pub use msg::{MemMessage, MsgClass};
