//! Criterion bench backing Figure 6b: simulation cost as a function of the
//! synchronization period (4 threads, transpose traffic).

use criterion::{criterion_group, criterion_main, Criterion};
use hornet_core::engine::SyncMode;
use hornet_core::sim::{SimulationBuilder, TrafficKind};
use hornet_net::geometry::Geometry;
use hornet_traffic::pattern::SyntheticPattern;

fn sync_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_period_fig6b");
    group.sample_size(10);
    for period in [1u64, 5, 10, 100] {
        let sync = if period == 1 {
            SyncMode::CycleAccurate
        } else {
            SyncMode::Periodic(period)
        };
        group.bench_function(format!("period_{period}"), |b| {
            b.iter(|| {
                SimulationBuilder::new()
                    .geometry(Geometry::mesh2d(8, 8))
                    .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, 0.02))
                    .measured_cycles(1_000)
                    .threads(4)
                    .sync(sync)
                    .seed(5)
                    .build()
                    .unwrap()
                    .run()
                    .unwrap()
                    .network
                    .delivered_packets
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sync_period);
criterion_main!(benches);
