//! Criterion bench backing Figure 7: simulation cost of a low-traffic bursty
//! workload with and without fast-forwarding of idle periods.

use criterion::{criterion_group, criterion_main, Criterion};
use hornet_core::sim::{SimulationBuilder, TrafficKind};
use hornet_net::geometry::Geometry;
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};

fn run(fast_forward: bool, bursty: bool) -> u64 {
    let process = if bursty {
        InjectionProcess::Burst {
            burst_len: 4,
            gap: 600,
        }
    } else {
        InjectionProcess::Periodic {
            period: 150,
            offset: 0,
        }
    };
    SimulationBuilder::new()
        .geometry(Geometry::mesh2d(8, 8))
        .traffic(TrafficKind::Synthetic {
            pattern: SyntheticPattern::BitComplement,
            process,
            packet_len: 8,
        })
        .measured_cycles(10_000)
        .fast_forward(fast_forward)
        .seed(7)
        .build()
        .unwrap()
        .run()
        .unwrap()
        .network
        .delivered_packets
}

fn fast_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_forward_fig7");
    group.sample_size(10);
    group.bench_function("bursty_without_ff", |b| b.iter(|| run(false, true)));
    group.bench_function("bursty_with_ff", |b| b.iter(|| run(true, true)));
    group.bench_function("steady_without_ff", |b| b.iter(|| run(false, false)));
    group.bench_function("steady_with_ff", |b| b.iter(|| run(true, false)));
    group.finish();
}

criterion_group!(benches, fast_forward);
criterion_main!(benches);
