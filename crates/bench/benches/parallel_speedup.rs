//! Criterion bench backing Figure 6a: wall-clock cost of simulating a fixed
//! number of cycles of 16×16 and 32×32 systems with 1, 2 and 4 host threads,
//! in cycle-accurate, 5-cycle-slack and 5-cycle-periodic synchronization
//! modes (the sharded runtime's three operating points).

use criterion::{criterion_group, criterion_main, Criterion};
use hornet_core::engine::SyncMode;
use hornet_core::sim::{SimulationBuilder, TrafficKind};
use hornet_net::geometry::Geometry;
use hornet_traffic::pattern::SyntheticPattern;

fn run(mesh: usize, cycles: u64, threads: usize, sync: SyncMode) -> u64 {
    SimulationBuilder::new()
        .geometry(Geometry::mesh2d(mesh, mesh))
        .traffic(TrafficKind::pattern(SyntheticPattern::Shuffle, 0.02))
        .measured_cycles(cycles)
        .threads(threads)
        .sync(sync)
        .seed(3)
        .build()
        .unwrap()
        .run()
        .unwrap()
        .network
        .delivered_packets
}

fn parallel_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup_fig6a");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("cycle_accurate_{threads}t"), |b| {
            b.iter(|| run(16, 500, threads, SyncMode::CycleAccurate))
        });
        group.bench_function(format!("sync5_{threads}t"), |b| {
            b.iter(|| run(16, 500, threads, SyncMode::Periodic(5)))
        });
        group.bench_function(format!("slack5_{threads}t"), |b| {
            b.iter(|| run(16, 500, threads, SyncMode::Slack(5)))
        });
    }
    group.finish();

    // The 32×32 system (1024 tiles): the regime the sharded runtime targets.
    let mut group = c.benchmark_group("parallel_speedup_mesh32");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("cycle_accurate_{threads}t"), |b| {
            b.iter(|| run(32, 300, threads, SyncMode::CycleAccurate))
        });
        group.bench_function(format!("slack5_{threads}t"), |b| {
            b.iter(|| run(32, 300, threads, SyncMode::Slack(5)))
        });
    }
    group.finish();
}

criterion_group!(benches, parallel_speedup);
criterion_main!(benches);
