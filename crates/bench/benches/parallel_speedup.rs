//! Criterion bench backing Figure 6a: wall-clock cost of simulating a fixed
//! number of cycles of a 16×16 system with 1, 2 and 4 host threads, in
//! cycle-accurate and 5-cycle-loose synchronization modes.

use criterion::{criterion_group, criterion_main, Criterion};
use hornet_core::engine::SyncMode;
use hornet_core::sim::{SimulationBuilder, TrafficKind};
use hornet_net::geometry::Geometry;
use hornet_traffic::pattern::SyntheticPattern;

fn run(threads: usize, sync: SyncMode) -> u64 {
    SimulationBuilder::new()
        .geometry(Geometry::mesh2d(16, 16))
        .traffic(TrafficKind::pattern(SyntheticPattern::Shuffle, 0.02))
        .measured_cycles(500)
        .threads(threads)
        .sync(sync)
        .seed(3)
        .build()
        .unwrap()
        .run()
        .unwrap()
        .network
        .delivered_packets
}

fn parallel_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup_fig6a");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("cycle_accurate_{threads}t"), |b| {
            b.iter(|| run(threads, SyncMode::CycleAccurate))
        });
        group.bench_function(format!("sync5_{threads}t"), |b| {
            b.iter(|| run(threads, SyncMode::Periodic(5)))
        });
    }
    group.finish();
}

criterion_group!(benches, parallel_speedup);
criterion_main!(benches);
