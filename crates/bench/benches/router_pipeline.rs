//! Criterion micro-benchmark: raw router-pipeline throughput — how fast the
//! sequential engine pushes simulated cycles for an 8×8 mesh under moderate
//! synthetic load (the per-tile cost every other result builds on).

use criterion::{criterion_group, criterion_main, Criterion};
use hornet_core::sim::{SimulationBuilder, TrafficKind};
use hornet_net::geometry::Geometry;
use hornet_traffic::pattern::SyntheticPattern;

fn router_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_pipeline");
    group.sample_size(10);
    for rate in [0.01f64, 0.05] {
        group.bench_function(format!("mesh8x8_rate{rate}"), |b| {
            b.iter(|| {
                SimulationBuilder::new()
                    .geometry(Geometry::mesh2d(8, 8))
                    .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, rate))
                    .measured_cycles(1_000)
                    .seed(1)
                    .build()
                    .unwrap()
                    .run()
                    .unwrap()
                    .network
                    .delivered_packets
            })
        });
    }
    group.finish();
}

criterion_group!(benches, router_pipeline);
criterion_main!(benches);
