//! Shared experiment harness for the `repro_*` binaries and the Criterion
//! benches.
//!
//! Each function here corresponds to one measurement the paper reports; the
//! `repro_*` binaries wire them to the paper's parameters and print the same
//! rows/series the corresponding table or figure shows (plus a CSV copy under
//! `target/repro/`). See `DESIGN.md` §4 for the experiment ↔ module map and
//! `EXPERIMENTS.md` for paper-vs-measured numbers.

use hornet_core::engine::SyncMode;
use hornet_core::sim::{SimulationBuilder, TrafficKind};
use hornet_cpu::pinlike::{NativeFrontendAgent, SyntheticThread, SyntheticThreadConfig};
use hornet_cpu::programs::{cannon_ideal_execution_time, CannonConfig, CannonThread};
use hornet_mem::hierarchy::MemoryConfig;
use hornet_net::geometry::Geometry;
use hornet_net::ideal::{IdealConfig, IdealNetwork};
use hornet_net::ids::{Cycle, NodeId};
use hornet_net::routing::RoutingKind;
use hornet_net::stats::NetworkStats;
use hornet_net::vca::VcAllocKind;
use hornet_power::energy::PowerConfig;
use hornet_power::thermal::ThermalConfig;
use hornet_traffic::pattern::SyntheticPattern;
use hornet_traffic::splash::{SplashBenchmark, SplashWorkload};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// Extracts the `"current": { ... }` object from a bench JSON emission
/// (`BENCH_hotpath.json` / `BENCH_shard.json`), without a JSON parser: the
/// emitters control the format, so the section is always a single-level
/// object starting at `"current": {` and ending at the first `}`. Shared by
/// `bench_hotpath`, `bench_shard` (baseline embedding) and `bench_compare`.
pub fn extract_current_section(contents: &str) -> Option<String> {
    let start = contents.find("\"current\":")?;
    let open = contents[start..].find('{')? + start;
    let close = contents[open..].find('}')? + open;
    Some(contents[open..=close].to_string())
}

/// Parses the numeric `"key": value` fields of a bench emission's
/// `"current"` section (non-numeric fields are skipped).
pub fn parse_current_numbers(contents: &str) -> Vec<(String, f64)> {
    let Some(section) = extract_current_section(contents) else {
        return Vec::new();
    };
    let inner = section.trim_start_matches('{').trim_end_matches('}');
    let mut out = Vec::new();
    for field in inner.split(',') {
        let mut parts = field.splitn(2, ':');
        let (Some(key), Some(value)) = (parts.next(), parts.next()) else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        if let Ok(value) = value.trim().parse::<f64>() {
            out.push((key, value));
        }
    }
    out
}

/// Writes a CSV table under `target/repro/<name>.csv` and echoes it to stdout.
pub fn emit_table(name: &str, header: &str, rows: &[String]) {
    println!("# {name}");
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
    println!();
    let dir = std::path::Path::new("target/repro");
    if std::fs::create_dir_all(dir).is_ok() {
        if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.csv"))) {
            let _ = writeln!(f, "{header}");
            for r in rows {
                let _ = writeln!(f, "{r}");
            }
        }
    }
}

/// Scale knob for the repro binaries: `HORNET_REPRO_SCALE=full` runs the
/// paper-sized experiments (1024 tiles, millions of cycles); the default
/// `quick` scale keeps every binary under a few minutes on a laptop while
/// preserving the qualitative shapes.
pub fn full_scale() -> bool {
    std::env::var("HORNET_REPRO_SCALE")
        .map(|v| v.eq_ignore_ascii_case("full"))
        .unwrap_or(false)
}

/// Result of one SPLASH-like network run.
#[derive(Clone, Debug)]
pub struct SplashRun {
    /// Average in-network packet latency (cycles).
    pub avg_packet_latency: f64,
    /// Average flit latency (cycles).
    pub avg_flit_latency: f64,
    /// Delivered packets.
    pub delivered_packets: u64,
    /// Merged statistics.
    pub stats: NetworkStats,
}

/// Runs a SPLASH-like workload on the cycle-accurate network and reports the
/// average in-network latency (the measurement most of the paper's figures
/// use).
#[allow(clippy::too_many_arguments)]
pub fn splash_network_latency(
    benchmark: SplashBenchmark,
    mesh: usize,
    routing: RoutingKind,
    vca: VcAllocKind,
    vcs: usize,
    vc_capacity: usize,
    memory_controllers: Vec<NodeId>,
    load_scale: f64,
    cycles: Cycle,
    seed: u64,
) -> SplashRun {
    let geometry = Arc::new(Geometry::mesh2d(mesh, mesh));
    let workload = SplashWorkload::new(benchmark, Arc::clone(&geometry))
        .with_memory_controllers(memory_controllers)
        .scaled(load_scale);
    let mut network = workload.build_network(routing, vca, vcs, vc_capacity, seed);
    network.run(cycles / 10); // warm-up
    network.reset_stats();
    network.run(cycles);
    let stats = network.stats();
    SplashRun {
        avg_packet_latency: stats.avg_packet_latency(),
        avg_flit_latency: stats.avg_flit_latency(),
        delivered_packets: stats.delivered_packets,
        stats,
    }
}

/// Runs the same SPLASH-like workload on the congestion-oblivious (ideal)
/// network model: injection bandwidth is still limited, but transit latency is
/// a pure hop count (Figure 8's "without congestion" bars).
pub fn splash_ideal_latency(
    benchmark: SplashBenchmark,
    mesh: usize,
    memory_controllers: Vec<NodeId>,
    load_scale: f64,
    cycles: Cycle,
    seed: u64,
) -> f64 {
    let geometry = Arc::new(Geometry::mesh2d(mesh, mesh));
    let workload = SplashWorkload::new(benchmark, Arc::clone(&geometry))
        .with_memory_controllers(memory_controllers)
        .scaled(load_scale);
    let mut ideal = IdealNetwork::new(&geometry, IdealConfig::default(), seed);
    for node in geometry.nodes() {
        ideal.attach_agent(node, workload.agent_for(node));
    }
    ideal.run(cycles / 10);
    // The ideal model has no warm-up artefacts worth excluding; run measured.
    ideal.run(cycles);
    ideal.stats().avg_flit_latency()
}

/// Measures wall-clock simulation speed (simulated cycles per second) of a
/// synthetic workload for a given thread count and sync mode (Figure 6a).
pub fn parallel_speed(
    mesh: usize,
    threads: usize,
    sync: SyncMode,
    rate: f64,
    cycles: Cycle,
    seed: u64,
) -> f64 {
    let report = SimulationBuilder::new()
        .geometry(Geometry::mesh2d(mesh, mesh))
        .routing(RoutingKind::Xy)
        .traffic(TrafficKind::pattern(SyntheticPattern::Shuffle, rate))
        .measured_cycles(cycles)
        .threads(threads)
        .sync(sync)
        .seed(seed)
        .build()
        .expect("valid configuration")
        .run()
        .expect("runs");
    report.simulation_speed()
}

/// Measures wall-clock simulation speed of a multicore running the
/// blackscholes-like native workload (the MIPS/blackscholes curve of
/// Figure 6a).
pub fn parallel_speed_blackscholes(
    mesh: usize,
    threads: usize,
    sync: SyncMode,
    cycles: Cycle,
    seed: u64,
) -> f64 {
    let geometry = Geometry::mesh2d(mesh, mesh);
    let nodes = geometry.node_count();
    let mut builder = SimulationBuilder::new()
        .geometry(geometry)
        .routing(RoutingKind::Xy)
        .traffic(TrafficKind::None)
        .measured_cycles(cycles)
        .threads(threads)
        .sync(sync)
        .seed(seed)
        .flows(hornet_net::routing::FlowSpec::all_to_all(
            &Geometry::mesh2d(mesh, mesh),
        ));
    for i in 0..nodes {
        let node = NodeId::from(i);
        builder = builder.agent(
            node,
            Box::new(NativeFrontendAgent::new(
                node,
                nodes,
                Box::new(SyntheticThread::new(
                    node,
                    SyntheticThreadConfig::blackscholes(u64::MAX),
                )),
                MemoryConfig::default(),
                1,
            )),
        );
    }
    let start = Instant::now();
    let report = builder.build().expect("valid").run().expect("runs");
    let _ = report;
    cycles as f64 / start.elapsed().as_secs_f64()
}

/// Runs a synthetic workload twice — cycle-accurately and with the given sync
/// period — and returns `(speedup vs cycle-accurate, latency accuracy)`
/// (Figure 6b).
pub fn sync_period_tradeoff(
    mesh: usize,
    threads: usize,
    period: u64,
    rate: f64,
    cycles: Cycle,
    seed: u64,
) -> (f64, f64) {
    let run = |sync: SyncMode| {
        let start = Instant::now();
        let report = SimulationBuilder::new()
            .geometry(Geometry::mesh2d(mesh, mesh))
            .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, rate))
            .warmup_cycles(cycles / 10)
            .measured_cycles(cycles)
            .threads(threads)
            .sync(sync)
            .seed(seed)
            .build()
            .expect("valid")
            .run()
            .expect("runs");
        (start.elapsed().as_secs_f64(), report.network)
    };
    let (t_acc, stats_acc) = run(SyncMode::CycleAccurate);
    let (t_loose, stats_loose) = if period <= 1 {
        (t_acc, stats_acc.clone())
    } else {
        run(SyncMode::Periodic(period))
    };
    let speedup = t_acc / t_loose.max(1e-9);
    let accuracy = stats_loose.latency_accuracy_vs(&stats_acc);
    (speedup, accuracy)
}

/// Measures the fast-forwarding benefit for a low-traffic workload
/// (Figure 7): returns wall-clock seconds without and with fast-forwarding.
pub fn fast_forward_benefit(
    mesh: usize,
    threads: usize,
    pattern: SyntheticPattern,
    bursty: bool,
    cycles: Cycle,
    seed: u64,
) -> (f64, f64) {
    let process = if bursty {
        hornet_traffic::pattern::InjectionProcess::Burst {
            burst_len: 4,
            gap: 600,
        }
    } else {
        hornet_traffic::pattern::InjectionProcess::Periodic {
            period: 150,
            offset: 0,
        }
    };
    let run = |ff: bool| {
        let start = Instant::now();
        let _ = SimulationBuilder::new()
            .geometry(Geometry::mesh2d(mesh, mesh))
            .traffic(TrafficKind::Synthetic {
                pattern: pattern.clone(),
                process,
                packet_len: 8,
            })
            .measured_cycles(cycles)
            .threads(threads)
            .fast_forward(ff)
            .seed(seed)
            .build()
            .expect("valid")
            .run()
            .expect("runs");
        start.elapsed().as_secs_f64()
    };
    (run(false), run(true))
}

/// Result of the Cannon trace-vs-closed-loop comparison (Figure 12).
#[derive(Clone, Debug)]
pub struct CannonComparison {
    /// Total execution time assumed by the trace-based (ideal network) run.
    pub trace_execution_cycles: Cycle,
    /// Total execution time measured with the integrated core + network run.
    pub closed_loop_execution_cycles: Cycle,
    /// Average injection rate (flits/cycle/node) of the trace-based run.
    pub trace_injection_rate: f64,
    /// Average injection rate of the closed-loop run.
    pub closed_loop_injection_rate: f64,
}

/// Runs Cannon's algorithm both ways: the trace-based execution time assumes
/// an ideal single-cycle network (the schedule `cannon_ideal_schedule`
/// produces), while the closed-loop run executes the same message-passing
/// program on cores that interact with the real network.
pub fn cannon_comparison(config: &CannonConfig, seed: u64) -> CannonComparison {
    let p = config.grid_p;
    let nodes = p * p;
    let geometry = Geometry::mesh2d(p, p);
    let mut builder = SimulationBuilder::new()
        .geometry(geometry.clone())
        .routing(RoutingKind::Xy)
        .traffic(TrafficKind::None)
        .threads(1)
        .seed(seed)
        .flows(hornet_net::routing::FlowSpec::all_to_all(&geometry));
    for row in 0..p {
        for col in 0..p {
            let node = config.node_at(row, col);
            builder = builder.agent(
                node,
                Box::new(NativeFrontendAgent::new(
                    node,
                    nodes,
                    Box::new(CannonThread::new(config.clone(), row, col)),
                    MemoryConfig::default(),
                    1,
                )),
            );
        }
    }
    let report = builder
        .build()
        .expect("valid")
        .run_to_completion(200_000_000)
        .expect("cannon completes");
    let closed_cycles = report.measured_cycles.max(1);
    let trace_cycles = cannon_ideal_execution_time(config).max(1);
    let total_flits = report.network.injected_flits as f64;
    CannonComparison {
        trace_execution_cycles: trace_cycles,
        closed_loop_execution_cycles: closed_cycles,
        trace_injection_rate: total_flits / (trace_cycles as f64 * nodes as f64),
        closed_loop_injection_rate: total_flits / (closed_cycles as f64 * nodes as f64),
    }
}

/// Runs a SPLASH-like workload with power + thermal modeling and returns the
/// thermal report (Figures 13 and 14).
pub fn splash_thermal(
    benchmark: SplashBenchmark,
    mesh: usize,
    cycles: Cycle,
    sample_interval: Cycle,
    seed: u64,
) -> hornet_core::report::ThermalReport {
    let report = SimulationBuilder::new()
        .geometry(Geometry::mesh2d(mesh, mesh))
        .routing(RoutingKind::Xy)
        .traffic(TrafficKind::splash(benchmark))
        .measured_cycles(cycles)
        .power_model(
            PowerConfig::default(),
            Some(ThermalConfig::default()),
            sample_interval,
            20_000.0,
        )
        .seed(seed)
        .build()
        .expect("valid")
        .run()
        .expect("runs");
    report.thermal.expect("thermal enabled")
}

/// The worst-link flow count under DOR on an n×n mesh with all-to-all traffic
/// (the n³/4 analysis of §IV-A / footnote 1).
pub fn worst_link_flows(n: usize) -> usize {
    n * n * n / 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_link_formula_matches_paper_examples() {
        assert_eq!(worst_link_flows(8), 128);
        assert_eq!(worst_link_flows(32), 8192);
    }

    #[test]
    fn radix_vs_swaptions_congestion_shape_holds() {
        // Scaled-down Figure 8 sanity check: the congestion-accurate latency
        // of the heavy benchmark exceeds its congestion-oblivious estimate by
        // a much larger factor than for the light benchmark.
        let mcs = vec![NodeId::new(0)];
        let cycles = 3_000;
        let radix = splash_network_latency(
            SplashBenchmark::Radix,
            8,
            RoutingKind::Xy,
            VcAllocKind::Dynamic,
            4,
            4,
            mcs.clone(),
            1.0,
            cycles,
            1,
        );
        let radix_ideal =
            splash_ideal_latency(SplashBenchmark::Radix, 8, mcs.clone(), 1.0, cycles, 1);
        let swap = splash_network_latency(
            SplashBenchmark::Swaptions,
            8,
            RoutingKind::Xy,
            VcAllocKind::Dynamic,
            4,
            4,
            mcs.clone(),
            1.0,
            cycles,
            1,
        );
        let swap_ideal = splash_ideal_latency(SplashBenchmark::Swaptions, 8, mcs, 1.0, cycles, 1);
        let radix_ratio = radix.avg_flit_latency / radix_ideal.max(1.0);
        let swap_ratio = swap.avg_flit_latency / swap_ideal.max(1.0);
        assert!(
            radix_ratio > swap_ratio,
            "congestion must matter more for radix ({radix_ratio:.2}) than swaptions ({swap_ratio:.2})"
        );
    }

    #[test]
    fn sync_period_five_keeps_high_accuracy() {
        let (_speedup, accuracy) = sync_period_tradeoff(4, 2, 5, 0.02, 2_000, 3);
        // Loose-sync timing accuracy is a statistical property of the real
        // scheduling interleaving; on a deliberately tiny 4×4 mesh with both
        // shards time-slicing one CI core it sits well below the paper's
        // 1024-tile numbers and fluctuates run to run (the old 0.85 bound
        // was already flaky on a busy host). The fidelity-vs-period curve
        // itself is measured by `repro_fig6b`.
        assert!(accuracy > 0.7, "accuracy {accuracy}");
    }
}
