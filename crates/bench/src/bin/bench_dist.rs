//! Distributed-backend throughput emitter: measures simulated cycles per
//! second with shards in separate OS processes and writes `BENCH_dist.json`
//! so successive PRs can track multi-process scaling deltas.
//!
//! Scenarios (16×16 mesh, transpose, rate 0.05):
//!
//! * `seq` — single-process, single-thread baseline;
//! * `dist4_unix_ca` — 4 worker processes over Unix sockets in bit-exact
//!   CycleAccurate mode. The emitter *asserts* the identical packet count
//!   and latency histogram as the sequential baseline — the distributed
//!   backend's core correctness claim — and records the verdict;
//! * `dist4_unix_slack5` — 4 processes with 5-cycle slack (the
//!   accuracy-vs-speed knob across process boundaries); socket frames are
//!   coalesced 5 cycles per flush here (`socket_batch`), so this scenario
//!   also tracks the syscall-batching win;
//! * `dist2_shm_ca` — 2 processes over a shared-memory segment (skipped
//!   fail-soft where shared mappings are unavailable);
//! * `dist4_unix_mem_vsum` — the payload-over-wire scenario: a
//!   `crates/mem`-driven workload (MIPS-like cores over MSI coherence,
//!   protocol messages in packet payloads) on 4 socket-transport processes,
//!   asserted bit-identical to sequential.
//!
//! The worker binary (`hornet-dist`) is looked up next to this executable;
//! scenarios degrade fail-soft (recorded as absent) when it is missing, so
//! the emitter never breaks a build.
//!
//! Usage: `cargo run --release -p hornet-bench --bin bench_dist
//! [--baseline FILE] [--out FILE]`.

use hornet_bench::extract_current_section;
use hornet_dist::spec::{DistSpec, DistSync, DistWorkload, RunKind};
use hornet_dist::{run_distributed, DistOutcome, HostOptions, TransportKind};
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use std::path::PathBuf;
use std::time::Instant;

const CYCLES: u64 = 3_000;
const SEED: u64 = 1;

fn spec(sync: DistSync) -> DistSpec {
    DistSpec {
        width: 16,
        height: 16,
        pattern: SyntheticPattern::Transpose,
        process: InjectionProcess::Bernoulli { rate: 0.05 },
        packet_len: 4,
        seed: SEED,
        sync,
        run: RunKind::Cycles(CYCLES),
        ..DistSpec::default()
    }
}

fn worker_bin() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let bin = exe.parent()?.join(if cfg!(windows) {
        "hornet-dist.exe"
    } else {
        "hornet-dist"
    });
    bin.exists().then_some(bin)
}

fn run_dist(
    sync: DistSync,
    workers: usize,
    transport: TransportKind,
) -> Option<(f64, DistOutcome)> {
    let opts = HostOptions {
        workers,
        transport,
        worker_cmd: Some(worker_bin()?),
        ..HostOptions::default()
    };
    let s = spec(sync);
    let start = Instant::now();
    match run_distributed(&s, &opts) {
        Ok(outcome) => {
            let secs = start.elapsed().as_secs_f64();
            Some((CYCLES as f64 / secs, outcome))
        }
        Err(e) => {
            eprintln!("bench_dist: scenario failed fail-soft: {e}");
            None
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    let mut out_path = "BENCH_dist.json".to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next(),
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut current_fields = Vec::new();

    // Sequential baseline.
    let s = spec(DistSync::CycleAccurate);
    let start = Instant::now();
    let (seq_stats, _, _) = s.run_sequential().expect("sequential baseline");
    let seq_secs = start.elapsed().as_secs_f64();
    let seq_cps = CYCLES as f64 / seq_secs;
    println!(
        "{:<22} {:>12.0} cycles/sec ({} packets delivered)",
        "seq", seq_cps, seq_stats.delivered_packets
    );
    current_fields.push(format!("\"seq_cycles_per_sec\": {seq_cps:.0}"));
    current_fields.push(format!(
        "\"seq_delivered_packets\": {}",
        seq_stats.delivered_packets
    ));

    // 4 processes, Unix sockets, bit-exact.
    if let Some((cps, outcome)) = run_dist(DistSync::CycleAccurate, 4, TransportKind::UnixSocket) {
        println!(
            "{:<22} {:>12.0} cycles/sec ({} packets delivered)",
            "dist4_unix_ca", cps, outcome.stats.delivered_packets
        );
        let identical = outcome.stats.delivered_packets == seq_stats.delivered_packets
            && outcome.stats.total_packet_latency == seq_stats.total_packet_latency
            && outcome.stats.latency_histogram == seq_stats.latency_histogram;
        assert!(
            identical,
            "4-process CycleAccurate must deliver the identical packet count and \
             latency histogram as sequential (got {} vs {} packets)",
            outcome.stats.delivered_packets, seq_stats.delivered_packets
        );
        current_fields.push(format!("\"dist4_unix_ca_cycles_per_sec\": {cps:.0}"));
        current_fields.push(format!("\"dist4_unix_ca_bit_identical\": {identical}"));
        current_fields.push(format!("\"dist4_cut_links\": {}", outcome.cut_links));
    }

    // 4 processes, 5-cycle slack — socket flushes batched 5 cycles per
    // syscall (the Slack/Periodic coalescing optimization).
    if let Some((cps, outcome)) = run_dist(DistSync::Slack(5), 4, TransportKind::UnixSocket) {
        println!(
            "{:<22} {:>12.0} cycles/sec ({} packets delivered)",
            "dist4_unix_slack5", cps, outcome.stats.delivered_packets
        );
        current_fields.push(format!("\"dist4_unix_slack5_cycles_per_sec\": {cps:.0}"));
        current_fields.push(format!(
            "\"dist4_unix_slack5_speedup\": {:.3}",
            cps / seq_cps
        ));
        current_fields.push(format!(
            "\"dist4_unix_slack5_socket_batch\": {}",
            spec(DistSync::Slack(5)).socket_batch()
        ));
    }

    // 2 processes over shared memory (fail-soft where unavailable).
    if hornet_shard::sys::shared_mappings_available() {
        if let Some((cps, outcome)) = run_dist(DistSync::CycleAccurate, 2, TransportKind::Shm) {
            println!(
                "{:<22} {:>12.0} cycles/sec ({} packets delivered)",
                "dist2_shm_ca", cps, outcome.stats.delivered_packets
            );
            let identical = outcome.stats.delivered_packets == seq_stats.delivered_packets
                && outcome.stats.latency_histogram == seq_stats.latency_histogram;
            assert!(
                identical,
                "2-process shm CycleAccurate must be bit-identical"
            );
            current_fields.push(format!("\"dist2_shm_ca_cycles_per_sec\": {cps:.0}"));
            current_fields.push(format!("\"dist2_shm_ca_bit_identical\": {identical}"));
        }
    } else {
        println!("dist2_shm_ca           skipped (no shared mappings on this platform)");
    }

    // Payload-over-wire: memory workload on 4 socket processes. The
    // sequential reference is only computed when the worker binary exists
    // (fail-soft, like every other multi-process scenario).
    if let Some(bin) = worker_bin() {
        let mem_spec = DistSpec {
            width: 4,
            height: 4,
            workload: DistWorkload::MemVectorSum {
                base_stride: 0x1_0000,
                count: 6,
            },
            seed: SEED,
            sync: DistSync::CycleAccurate,
            run: RunKind::ToCompletion { max: 400_000 },
            ..DistSpec::default()
        };
        let (mem_seq, mem_cycle, completed) = mem_spec.run_sequential().expect("mem reference");
        assert!(completed, "memory workload reference must complete");
        {
            let opts = HostOptions {
                workers: 4,
                transport: TransportKind::UnixSocket,
                worker_cmd: Some(bin),
                ..HostOptions::default()
            };
            let start = Instant::now();
            match run_distributed(&mem_spec, &opts) {
                Ok(outcome) => {
                    let secs = start.elapsed().as_secs_f64();
                    let cps = outcome.final_cycle as f64 / secs.max(1e-9);
                    println!(
                        "{:<22} {:>12.0} cycles/sec ({} packets delivered)",
                        "dist4_unix_mem_vsum", cps, outcome.stats.delivered_packets
                    );
                    let identical = outcome.completed
                        && outcome.stats.delivered_packets == mem_seq.delivered_packets
                        && outcome.stats.total_packet_latency == mem_seq.total_packet_latency
                        && outcome.stats.latency_histogram == mem_seq.latency_histogram;
                    assert!(
                        identical,
                        "4-process memory workload must be bit-identical to sequential \
                         ({} vs {} packets)",
                        outcome.stats.delivered_packets, mem_seq.delivered_packets
                    );
                    current_fields
                        .push(format!("\"dist4_unix_mem_vsum_cycles_per_sec\": {cps:.0}"));
                    current_fields.push(format!(
                        "\"dist4_unix_mem_vsum_bit_identical\": {identical}"
                    ));
                    current_fields.push(format!("\"mem_vsum_completion_cycle\": {mem_cycle}"));
                }
                Err(e) => eprintln!("bench_dist: mem workload failed fail-soft: {e}"),
            }
        }
    }

    let baseline = baseline_path
        .and_then(|p| std::fs::read_to_string(&p).ok())
        .and_then(|c| extract_current_section(&c));

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"dist\",\n");
    json.push_str(&format!(
        "  \"config\": \"transpose rate=0.05 seed={SEED} mesh16@{CYCLES} cycles, multi-process\",\n"
    ));
    if let Some(b) = baseline {
        json.push_str(&format!("  \"baseline\": {b},\n"));
    }
    json.push_str(&format!(
        "  \"current\": {{ {} }}\n",
        current_fields.join(", ")
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write output file");
    println!("wrote {out_path}");
}
