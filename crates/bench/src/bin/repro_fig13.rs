//! Figure 13 — temperature traces over the runtime of the OCEAN-like (slowly
//! varying) and RADIX-like (strongly phase-dependent) workloads on an 8×8
//! mesh with XY routing and one corner memory controller.

use hornet_bench::{emit_table, full_scale, splash_thermal};
use hornet_traffic::splash::SplashBenchmark;

fn main() {
    let cycles = if full_scale() { 400_000 } else { 40_000 };
    let interval = cycles / 40;
    for benchmark in [SplashBenchmark::Ocean, SplashBenchmark::Radix] {
        let thermal = splash_thermal(benchmark, 8, cycles, interval, 31);
        let rows: Vec<String> = thermal
            .time_series
            .iter()
            .map(|(cycle, temps)| {
                let max = temps.iter().copied().fold(f64::MIN, f64::max);
                let mean = temps.iter().sum::<f64>() / temps.len() as f64;
                format!("{cycle},{mean:.2},{max:.2}")
            })
            .collect();
        emit_table(
            &format!("fig13_temperature_trace_{}", benchmark.label()),
            "cycle,mean_temp_c,max_temp_c",
            &rows,
        );
    }
}
