//! Figure 11 — the effect of the number of memory controllers (1 vs 5) on
//! in-network latency for the RADIX-like workload, across routing × VCA
//! choices. Five controllers reduce congestion substantially but nowhere near
//! five-fold, and they flatten the differences between routing/VCA schemes.

use hornet_bench::{emit_table, full_scale, splash_network_latency};
use hornet_mem::controller::default_mc_placement;
use hornet_net::routing::RoutingKind;
use hornet_net::vca::VcAllocKind;
use hornet_traffic::splash::SplashBenchmark;

fn main() {
    let cycles = if full_scale() { 200_000 } else { 8_000 };
    let mut rows = Vec::new();
    for mc_count in [1usize, 5] {
        let mcs = default_mc_placement(8, 8, mc_count);
        for routing in [RoutingKind::Xy, RoutingKind::O1Turn, RoutingKind::Romm] {
            for vca in [VcAllocKind::Dynamic, VcAllocKind::Edvca] {
                let run = splash_network_latency(
                    SplashBenchmark::Radix,
                    8,
                    routing,
                    vca,
                    4,
                    4,
                    mcs.clone(),
                    1.0,
                    cycles,
                    17,
                );
                rows.push(format!(
                    "{mc_count}MC,{},{},{:.2}",
                    routing.label(),
                    vca.label(),
                    run.avg_packet_latency
                ));
            }
        }
    }
    emit_table(
        "fig11_memory_controllers",
        "memory_controllers,routing,vca,avg_packet_latency",
        &rows,
    );
}
