//! Sharded-runtime throughput emitter: measures simulated cycles per second
//! on 16×16 and 32×32 meshes under the shard runtime's synchronization modes
//! and writes `BENCH_shard.json` so successive PRs can track parallel-scaling
//! deltas.
//!
//! Scenarios:
//!
//! * `mesh16_seq` / `mesh32_seq` — single-threaded cycle-accurate baselines;
//! * `mesh16_t4_slack5` / `mesh32_t4_slack5` — 4 shards with 5-cycle slack
//!   (the accuracy-vs-speed knob at the paper's headline operating point);
//! * `mesh16_t4_periodic5` — 4 shards, 5-cycle batched synchronization;
//! * `mesh16_t4_ca` — 4 shards in bit-exact cycle-accurate mode. The emitter
//!   *asserts* that this run delivers the identical packet count and latency
//!   histogram as the sequential baseline — the sharded runtime's core
//!   correctness claim — and records the verdict in the JSON.
//!
//! Usage: `cargo run --release -p hornet-bench --bin bench_shard
//! [--baseline FILE] [--out FILE]`.

use hornet_bench::extract_current_section;
use hornet_core::engine::SyncMode;
use hornet_core::report::SimReport;
use hornet_core::sim::{SimulationBuilder, TrafficKind};
use hornet_net::geometry::Geometry;
use hornet_traffic::pattern::SyntheticPattern;
use std::time::Instant;

const RATE: f64 = 0.05;
const SEED: u64 = 1;

struct Scenario {
    name: &'static str,
    mesh: usize,
    cycles: u64,
    threads: usize,
    sync: SyncMode,
}

fn run_scenario(s: &Scenario) -> (f64, SimReport) {
    let sim = SimulationBuilder::new()
        .geometry(Geometry::mesh2d(s.mesh, s.mesh))
        .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, RATE))
        .measured_cycles(s.cycles)
        .seed(SEED)
        .threads(s.threads)
        .sync(s.sync)
        .build()
        .expect("valid config");
    let start = Instant::now();
    let report = sim.run().expect("run succeeds");
    let secs = start.elapsed().as_secs_f64();
    (s.cycles as f64 / secs, report)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    let mut out_path = "BENCH_shard.json".to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next(),
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let scenarios = [
        Scenario {
            name: "mesh16_seq",
            mesh: 16,
            cycles: 10_000,
            threads: 1,
            sync: SyncMode::CycleAccurate,
        },
        Scenario {
            name: "mesh16_t4_ca",
            mesh: 16,
            cycles: 10_000,
            threads: 4,
            sync: SyncMode::CycleAccurate,
        },
        Scenario {
            name: "mesh16_t4_slack5",
            mesh: 16,
            cycles: 10_000,
            threads: 4,
            sync: SyncMode::Slack(5),
        },
        Scenario {
            name: "mesh16_t4_periodic5",
            mesh: 16,
            cycles: 10_000,
            threads: 4,
            sync: SyncMode::Periodic(5),
        },
        Scenario {
            name: "mesh32_seq",
            mesh: 32,
            cycles: 4_000,
            threads: 1,
            sync: SyncMode::CycleAccurate,
        },
        Scenario {
            name: "mesh32_t4_slack5",
            mesh: 32,
            cycles: 4_000,
            threads: 4,
            sync: SyncMode::Slack(5),
        },
    ];

    let mut current_fields = Vec::new();
    let mut seq16: Option<SimReport> = None;
    let mut seq16_cps = 0.0f64;
    let mut seq32_cps = 0.0f64;
    for s in &scenarios {
        // Warm-up run (page in code + allocator + worker pool), then measure.
        run_scenario(s);
        let (cps, report) = run_scenario(s);
        println!(
            "{:<22} {:>12.0} cycles/sec ({} packets delivered)",
            s.name, cps, report.network.delivered_packets
        );
        current_fields.push(format!("\"{}_cycles_per_sec\": {:.0}", s.name, cps));
        current_fields.push(format!(
            "\"{}_delivered_packets\": {}",
            s.name, report.network.delivered_packets
        ));
        match s.name {
            "mesh16_seq" => {
                seq16_cps = cps;
                seq16 = Some(report);
            }
            "mesh16_t4_ca" => {
                let seq = seq16.as_ref().expect("sequential baseline ran first");
                let identical = report.network.delivered_packets == seq.network.delivered_packets
                    && report.network.total_packet_latency == seq.network.total_packet_latency
                    && report.network.latency_histogram == seq.network.latency_histogram;
                assert!(
                    identical,
                    "multi-thread CycleAccurate must deliver the identical packet count \
                     and latency histogram as sequential (got {} vs {} packets)",
                    report.network.delivered_packets, seq.network.delivered_packets
                );
                current_fields.push(format!("\"mesh16_t4_ca_bit_identical\": {identical}"));
            }
            "mesh16_t4_slack5" => {
                let speedup = cps / seq16_cps;
                println!("    -> slack5 speedup over sequential: {speedup:.2}x");
                current_fields.push(format!("\"mesh16_t4_slack5_speedup\": {speedup:.3}"));
                if let Some(info) = report.shard.as_ref() {
                    current_fields.push(format!("\"mesh16_cut_links\": {}", info.cut_links));
                }
            }
            "mesh32_seq" => seq32_cps = cps,
            "mesh32_t4_slack5" => {
                let speedup = cps / seq32_cps;
                println!("    -> slack5 speedup over sequential: {speedup:.2}x");
                current_fields.push(format!("\"mesh32_t4_slack5_speedup\": {speedup:.3}"));
            }
            _ => {}
        }
    }

    let baseline = baseline_path
        .and_then(|p| std::fs::read_to_string(&p).ok())
        .and_then(|c| extract_current_section(&c));

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"shard\",\n");
    json.push_str(&format!(
        "  \"config\": \"transpose rate={RATE} seed={SEED} mesh16@10k mesh32@4k cycles\",\n"
    ));
    if let Some(b) = baseline {
        json.push_str(&format!("  \"baseline\": {b},\n"));
    }
    json.push_str(&format!(
        "  \"current\": {{ {} }}\n",
        current_fields.join(", ")
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write output file");
    println!("wrote {out_path}");
}
