//! Table I — the configuration space used in the paper's evaluation.
//!
//! Instantiates every configuration combination the table lists (meshes,
//! routing, VC allocation, VC counts/depths) and verifies each one builds and
//! moves traffic, printing the resulting matrix.

use hornet_bench::{emit_table, full_scale};
use hornet_core::sim::{SimulationBuilder, TrafficKind};
use hornet_net::geometry::Geometry;
use hornet_net::routing::RoutingKind;
use hornet_net::vca::VcAllocKind;
use hornet_traffic::pattern::SyntheticPattern;

fn main() {
    let mesh_sizes: &[usize] = if full_scale() { &[8, 32] } else { &[8] };
    let cycles = if full_scale() { 50_000 } else { 3_000 };
    let mut rows = Vec::new();
    for &mesh in mesh_sizes {
        for routing in [RoutingKind::Xy, RoutingKind::O1Turn, RoutingKind::Romm] {
            for vca in [VcAllocKind::Dynamic, VcAllocKind::Edvca] {
                for (vcs, depth) in [(4usize, 4usize), (4, 8), (8, 4), (8, 8)] {
                    let report = SimulationBuilder::new()
                        .geometry(Geometry::mesh2d(mesh, mesh))
                        .routing(routing)
                        .vc_allocation(vca)
                        .vcs_per_port(vcs)
                        .vc_buffer_depth(depth)
                        .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, 0.01))
                        .warmup_cycles(cycles / 10)
                        .measured_cycles(cycles)
                        .seed(1)
                        .build()
                        .expect("valid configuration")
                        .run()
                        .expect("runs");
                    rows.push(format!(
                        "{mesh}x{mesh},{routing},{vca},{vcs},{depth},{},{:.2}",
                        report.network.delivered_packets,
                        report.network.avg_packet_latency()
                    ));
                }
            }
        }
    }
    emit_table(
        "table1_configurations",
        "mesh,routing,vca,vcs_per_port,vc_depth,delivered_packets,avg_packet_latency",
        &rows,
    );
}
