//! Fail-soft benchmark comparison: reads two bench JSON emissions (a
//! committed baseline and a fresh run), compares every shared numeric metric
//! in their `"current"` sections, and prints GitHub-annotation warnings for
//! regressions beyond a threshold. Always exits 0 — bench noise on shared CI
//! runners must never fail a build; the warnings and uploaded artifacts are
//! the signal.
//!
//! Metric direction is inferred from the key: `*_cycles_per_sec` and
//! `*_speedup` are higher-is-better, `*_ns` lower-is-better; other numeric
//! keys (delivered-packet counts, flags) are compared for drift in either
//! direction but only reported informationally.
//!
//! Usage: `bench_compare BASELINE.json CURRENT.json [--warn-pct 15]`

use hornet_bench::parse_current_numbers;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_compare BASELINE.json CURRENT.json [--warn-pct N]");
        return; // fail-soft: never a hard error
    }
    let mut warn_pct = 15.0f64;
    if let Some(i) = args.iter().position(|a| a == "--warn-pct") {
        if let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
            warn_pct = v;
        }
    }
    let (baseline_path, current_path) = (&args[0], &args[1]);
    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        println!("bench_compare: no baseline at {baseline_path}; skipping");
        return;
    };
    let Ok(current) = std::fs::read_to_string(current_path) else {
        println!("bench_compare: no current emission at {current_path}; skipping");
        return;
    };
    let baseline = parse_current_numbers(&baseline);
    let current = parse_current_numbers(&current);
    let mut warnings = 0usize;
    for (key, base) in &baseline {
        let Some((_, now)) = current.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let delta_pct = if *base != 0.0 {
            (now - base) / base * 100.0
        } else {
            0.0
        };
        let higher_is_better = key.ends_with("_cycles_per_sec") || key.ends_with("_speedup");
        let lower_is_better = key.ends_with("_ns");
        let regressed = (higher_is_better && delta_pct < -warn_pct)
            || (lower_is_better && delta_pct > warn_pct);
        if regressed {
            // `::warning::` renders as an annotation in GitHub Actions.
            println!(
                "::warning::bench regression: {key} {base:.0} -> {now:.0} ({delta_pct:+.1}%, threshold {warn_pct}%)"
            );
            warnings += 1;
        } else if higher_is_better || lower_is_better {
            println!("bench_compare: {key} {base:.0} -> {now:.0} ({delta_pct:+.1}%)");
        }
    }
    println!(
        "bench_compare: {} metrics compared, {warnings} regression warning(s) (fail-soft)",
        baseline.len()
    );
}
