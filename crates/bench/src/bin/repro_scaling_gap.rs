//! §IV-A / Figure 5 — why small-scale NoC results do not extrapolate.
//!
//! Reports (a) the worst-link flow count under DOR with all-to-all traffic for
//! 8×8 vs 32×32 meshes (128 vs 8192 flows, footnote 1), and (b) the latency of
//! long-path flows relative to short-path flows under heavy load, showing the
//! super-linear penalty long flows suffer on larger meshes.

use hornet_bench::{emit_table, full_scale, worst_link_flows};
use hornet_core::sim::{SimulationBuilder, TrafficKind};
use hornet_net::geometry::Geometry;
use hornet_net::routing::RoutingKind;
use hornet_traffic::pattern::SyntheticPattern;

fn main() {
    let mut rows = Vec::new();
    for n in [8usize, 16, 32] {
        rows.push(format!("{n}x{n},{}", worst_link_flows(n)));
    }
    emit_table("fig5_worst_link_flows", "mesh,worst_link_flows_dor", &rows);

    // Long-flow penalty under load: compare average latency per hop for short
    // and long flows on meshes of increasing size.
    let sizes: &[usize] = if full_scale() { &[8, 16, 32] } else { &[8, 16] };
    let cycles = if full_scale() { 200_000 } else { 6_000 };
    let mut rows = Vec::new();
    for &n in sizes {
        let report = SimulationBuilder::new()
            .geometry(Geometry::mesh2d(n, n))
            .routing(RoutingKind::Xy)
            .traffic(TrafficKind::pattern(SyntheticPattern::UniformRandom, 0.03))
            .warmup_cycles(cycles / 10)
            .measured_cycles(cycles)
            .seed(7)
            .build()
            .expect("valid")
            .run()
            .expect("runs");
        let per_hop = report.network.avg_packet_latency() / report.network.avg_hops().max(1.0);
        rows.push(format!(
            "{n}x{n},{:.2},{:.2},{:.3}",
            report.network.avg_packet_latency(),
            report.network.avg_hops(),
            per_hop
        ));
    }
    emit_table(
        "fig5_latency_growth",
        "mesh,avg_packet_latency,avg_hops,latency_per_hop",
        &rows,
    );
}
