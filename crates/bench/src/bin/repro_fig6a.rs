//! Figure 6a — parallel speedup vs number of host threads, for cycle-accurate
//! and 5-cycle-loose synchronization, on synthetic SHUFFLE traffic and the
//! blackscholes-like native workload.
//!
//! The paper runs 1024 tiles on a 24-hyperthread host; the quick scale uses a
//! 16×16 (256-tile) system and thread counts up to the host's parallelism so
//! the run completes quickly. Set `HORNET_REPRO_SCALE=full` for 32×32.

use hornet_bench::{emit_table, full_scale, parallel_speed, parallel_speed_blackscholes};
use hornet_core::engine::SyncMode;

fn main() {
    let mesh = if full_scale() { 32 } else { 16 };
    let cycles = if full_scale() { 20_000 } else { 2_000 };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut thread_counts = vec![1usize, 2, 4, 6, 8, 12, 16, 24];
    thread_counts.retain(|&t| t <= host_threads.max(1) * 2);

    let mut rows = Vec::new();
    let mut baselines: [Option<f64>; 4] = [None, None, None, None];
    for &threads in &thread_counts {
        let configs = [
            ("shuffle,cycle-accurate", 0),
            ("shuffle,5-cycle-sync", 1),
            ("blackscholes,cycle-accurate", 2),
            ("blackscholes,5-cycle-sync", 3),
        ];
        for (label, idx) in configs {
            let sync = if idx % 2 == 0 {
                SyncMode::CycleAccurate
            } else {
                SyncMode::Periodic(5)
            };
            let speed = if idx < 2 {
                parallel_speed(mesh, threads, sync, 0.02, cycles, 11)
            } else {
                parallel_speed_blackscholes(mesh, threads, sync, cycles, 11)
            };
            if baselines[idx].is_none() {
                baselines[idx] = Some(speed);
            }
            let speedup = speed / baselines[idx].unwrap();
            rows.push(format!("{label},{threads},{speed:.0},{speedup:.2}"));
        }
    }
    emit_table(
        "fig6a_parallel_speedup",
        "workload,sync,threads,cycles_per_second,speedup_vs_1_thread",
        &rows,
    );
}
