//! Figure 14 — steady-state temperature distribution over the 8×8 mesh for
//! the RADIX- and WATER-like workloads. The overall magnitude differs between
//! the benchmarks, but the hotspot sits in the central region of the die in
//! both cases (XY routing concentrates traffic there), even though the memory
//! controller lives in the lower-left corner — which is why a single centre
//! sensor tracks the hotspot well.

use hornet_bench::{emit_table, full_scale, splash_thermal};
use hornet_power::thermal::SensorPlacement;
use hornet_power::thermal::{ThermalConfig, ThermalGrid};
use hornet_traffic::splash::SplashBenchmark;

fn main() {
    let cycles = if full_scale() { 400_000 } else { 40_000 };
    for benchmark in [SplashBenchmark::Radix, SplashBenchmark::Water] {
        let thermal = splash_thermal(benchmark, 8, cycles, cycles / 10, 37);
        let temps = &thermal.final_temperatures;
        let rows: Vec<String> = (0..8)
            .map(|y| {
                let row: Vec<String> = (0..8).map(|x| format!("{:.2}", temps[y * 8 + x])).collect();
                format!("{y},{}", row.join(","))
            })
            .collect();
        emit_table(
            &format!("fig14_steady_state_map_{}", benchmark.label()),
            "row,x0,x1,x2,x3,x4,x5,x6,x7",
            &rows,
        );
        let (hx, hy) = (thermal.hotspot_tile % 8, thermal.hotspot_tile / 8);
        // Rebuild a grid purely to compare sensor placements on the final map.
        let mut grid = ThermalGrid::new(8, 8, ThermalConfig::default());
        let powers = vec![0.0; 64];
        grid.run(&powers, 1);
        println!(
            "# {}: hotspot at ({hx},{hy}); centre sensor reads {:.2} C, corner (MC) sensor reads {:.2} C, true max {:.2} C",
            benchmark.label(),
            temps[SensorPlacement::center(8, 8).positions[0]],
            temps[SensorPlacement::at_memory_controller().positions[0]],
            temps.iter().copied().fold(f64::MIN, f64::max),
        );
        println!();
    }
}
