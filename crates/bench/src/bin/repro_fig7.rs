//! Figure 7 — the benefit of fast-forwarding idle periods.
//!
//! Low-traffic bit-complement sends coordinated bursts separated by long idle
//! gaps, so fast-forwarding helps a lot; the H.264-profile-like workload
//! spreads the same light load evenly over time, the network rarely drains,
//! and fast-forwarding helps little.

use hornet_bench::{emit_table, fast_forward_benefit, full_scale};
use hornet_traffic::pattern::SyntheticPattern;

fn main() {
    let mesh = if full_scale() { 16 } else { 8 };
    let cycles = if full_scale() { 200_000 } else { 20_000 };
    let threads: &[usize] = &[1, 2, 4, 6, 8];
    let mut rows = Vec::new();
    for &t in threads {
        let (no_ff, ff) =
            fast_forward_benefit(mesh, t, SyntheticPattern::BitComplement, true, cycles, 3);
        rows.push(format!(
            "bit-complement,{t},{no_ff:.3},{ff:.3},{:.2}",
            no_ff / ff.max(1e-9)
        ));
        let (no_ff, ff) =
            fast_forward_benefit(mesh, t, SyntheticPattern::UniformRandom, false, cycles, 3);
        rows.push(format!(
            "h264-profile,{t},{no_ff:.3},{ff:.3},{:.2}",
            no_ff / ff.max(1e-9)
        ));
    }
    emit_table(
        "fig7_fast_forward",
        "workload,threads,seconds_without_ff,seconds_with_ff,ff_speedup",
        &rows,
    );
}
