//! Figure 12 — trace-driven vs integrated core+network simulation of Cannon's
//! matrix multiplication (64 cores, 128×128 matrix, message passing, randomly
//! mapped cores).
//!
//! The trace-based run assumes an ideal single-cycle network, so cores inject
//! unrealistically fast and the application appears to finish much earlier
//! than the closed-loop run, in which cores stall on network backpressure and
//! on blocked receives.

use hornet_bench::{cannon_comparison, emit_table, full_scale};
use hornet_cpu::programs::CannonConfig;

fn main() {
    let config = if full_scale() {
        CannonConfig::default()
            .with_random_mapping(64, 42)
            .validated()
    } else {
        CannonConfig {
            matrix_n: 64,
            grid_p: 8,
            ..CannonConfig::default()
        }
        .with_random_mapping(64, 42)
        .validated()
    };
    let cmp = cannon_comparison(&config, 42);
    let rows = vec![
        format!(
            "trace-based,{},{:.4},1.00,1.00",
            cmp.trace_execution_cycles, cmp.trace_injection_rate
        ),
        format!(
            "core+network,{},{:.4},{:.2},{:.2}",
            cmp.closed_loop_execution_cycles,
            cmp.closed_loop_injection_rate,
            cmp.closed_loop_injection_rate / cmp.trace_injection_rate,
            cmp.closed_loop_execution_cycles as f64 / cmp.trace_execution_cycles as f64
        ),
    ];
    emit_table(
        "fig12_trace_vs_closed_loop",
        "mode,total_execution_cycles,avg_injection_rate,normalized_injection_rate,normalized_execution_time",
        &rows,
    );
}
