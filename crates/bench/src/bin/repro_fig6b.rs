//! Figure 6b — speedup and accuracy vs synchronization period (transpose
//! traffic, 4 hyperthreaded cores in the paper).

use hornet_bench::{emit_table, full_scale, sync_period_tradeoff};

fn main() {
    let mesh = if full_scale() { 32 } else { 8 };
    let cycles = if full_scale() { 100_000 } else { 5_000 };
    let periods: &[u64] = &[1, 5, 10, 50, 100, 500, 1000];
    let mut rows = Vec::new();
    for &period in periods {
        let (speedup, accuracy) = sync_period_tradeoff(mesh, 4, period, 0.02, cycles, 21);
        rows.push(format!("{period},{speedup:.2},{:.1}", accuracy * 100.0));
    }
    emit_table(
        "fig6b_sync_period",
        "sync_period_cycles,speedup_vs_cycle_accurate,latency_accuracy_percent",
        &rows,
    );
}
