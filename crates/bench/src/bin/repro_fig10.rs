//! Figure 10 — routing × VC-allocation on the WATER-like workload in a
//! congested network, at 2 and 4 VCs per port: O1TURN and ROMM outperform XY,
//! but not by as much as their extra path diversity might suggest.

use hornet_bench::{emit_table, full_scale, splash_network_latency};
use hornet_net::ids::NodeId;
use hornet_net::routing::RoutingKind;
use hornet_net::vca::VcAllocKind;
use hornet_traffic::splash::SplashBenchmark;

fn main() {
    let cycles = if full_scale() { 200_000 } else { 8_000 };
    let mcs = vec![NodeId::new(0)];
    // Scale the WATER-like load up so the network is "relatively congested".
    let load = 1.6;
    let mut rows = Vec::new();
    for vcs in [2usize, 4] {
        for routing in [RoutingKind::Xy, RoutingKind::O1Turn, RoutingKind::Romm] {
            for vca in [VcAllocKind::Dynamic, VcAllocKind::Edvca] {
                let run = splash_network_latency(
                    SplashBenchmark::Water,
                    8,
                    routing,
                    vca,
                    vcs,
                    8,
                    mcs.clone(),
                    load,
                    cycles,
                    13,
                );
                rows.push(format!(
                    "{vcs}VCs,{},{},{:.2}",
                    routing.label(),
                    vca.label(),
                    run.avg_packet_latency
                ));
            }
        }
    }
    emit_table(
        "fig10_routing_vca_water",
        "vc_count,routing,vca,avg_packet_latency",
        &rows,
    );
}
