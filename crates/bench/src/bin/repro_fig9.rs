//! Figure 9 — in-network latency for different VC buffer configurations
//! (2VC×8, 4VC×8, 4VC×4; dynamic vs EDVCA) on the SWAPTIONS- and RADIX-like
//! workloads.
//!
//! The counter-intuitive result: doubling the VCs while keeping their depth
//! (2VC×8 → 4VC×8) *increases* latency in a congested network because total
//! buffering doubles; holding total buffer space constant (4VC×4) recovers the
//! expected improvement.

use hornet_bench::{emit_table, full_scale, splash_network_latency};
use hornet_net::ids::NodeId;
use hornet_net::routing::RoutingKind;
use hornet_net::vca::VcAllocKind;
use hornet_traffic::splash::SplashBenchmark;

fn main() {
    let cycles = if full_scale() { 200_000 } else { 8_000 };
    let mcs = vec![NodeId::new(0)];
    let mut rows = Vec::new();
    for benchmark in [SplashBenchmark::Swaptions, SplashBenchmark::Radix] {
        for (vcs, depth) in [(2usize, 8usize), (4, 8), (4, 4)] {
            for vca in [VcAllocKind::Dynamic, VcAllocKind::Edvca] {
                let run = splash_network_latency(
                    benchmark,
                    8,
                    RoutingKind::Xy,
                    vca,
                    vcs,
                    depth,
                    mcs.clone(),
                    1.0,
                    cycles,
                    9,
                );
                rows.push(format!(
                    "{},{vcs}VCx{depth},{},{:.2}",
                    benchmark.label(),
                    vca.label(),
                    run.avg_packet_latency
                ));
            }
        }
    }
    emit_table(
        "fig9_vc_configurations",
        "benchmark,vc_config,vca,avg_packet_latency",
        &rows,
    );
}
