//! Figure 8 — the effect of congestion modeling on reported flit latency.
//!
//! For the heavy RADIX-like workload, ignoring congestion (hop-count latency)
//! underestimates flit latency by roughly 2×; for the light SWAPTIONS-like
//! workload the difference is small. 64-core (8×8) system, 4 VCs.

use hornet_bench::{emit_table, full_scale, splash_ideal_latency, splash_network_latency};
use hornet_net::ids::NodeId;
use hornet_net::routing::RoutingKind;
use hornet_net::vca::VcAllocKind;
use hornet_traffic::splash::SplashBenchmark;

fn main() {
    let cycles = if full_scale() { 200_000 } else { 8_000 };
    let mcs = vec![NodeId::new(0)];
    let mut rows = Vec::new();
    for benchmark in [SplashBenchmark::Radix, SplashBenchmark::Swaptions] {
        let with = splash_network_latency(
            benchmark,
            8,
            RoutingKind::Xy,
            VcAllocKind::Dynamic,
            4,
            4,
            mcs.clone(),
            1.0,
            cycles,
            5,
        );
        let without = splash_ideal_latency(benchmark, 8, mcs.clone(), 1.0, cycles, 5);
        rows.push(format!(
            "{},{:.2},{:.2},{:.2}",
            benchmark.label(),
            with.avg_flit_latency,
            without,
            with.avg_flit_latency / without.max(1.0)
        ));
    }
    emit_table(
        "fig8_congestion_effect",
        "benchmark,avg_flit_latency_with_congestion,without_congestion,ratio",
        &rows,
    );
}
