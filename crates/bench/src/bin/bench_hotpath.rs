//! Hot-path throughput emitter: measures simulated cycles per second for the
//! canonical 8×8-mesh configuration and writes `BENCH_hotpath.json` so
//! successive PRs can track hot-path perf deltas.
//!
//! Two scenarios are measured, matching the paper's two operating points:
//!
//! * `mesh8x8_seq` — single-threaded cycle-accurate simulation;
//! * `mesh8x8_t4_periodic5` — 4 worker threads, loose synchronization every
//!   5 cycles (the paper's headline configuration, Table I).
//!
//! A third scenario, `mesh8x8_seq_traced`, repeats the sequential run with
//! flit-lifecycle event tracing enabled; the emitted
//! `tracing_overhead_pct` is the throughput cost of turning tracing on
//! (`mesh8x8_seq` itself measures the tracing-compiled-in-but-disabled
//! configuration, which the observability work must keep within noise).
//!
//! Kernel-vs-interpreter scenarios pin the execution path explicitly:
//! `*_interp` forces the per-router interpreter ([`KernelMode::Off`]) and
//! `*_kernel` forces the compiled SoA cycle kernel ([`KernelMode::Force`]);
//! the unsuffixed scenarios run the default auto-detection. The emitted
//! `kernel_speedup` is kernel over interpreter on the sequential hot
//! path, and `kernel_stage_*_ns` break one timed kernel run down into its
//! pipeline sweeps (absorb, SA, VA, RC, negedge, bridge).
//!
//! Usage: `cargo run --release -p hornet-bench --bin bench_hotpath [--baseline
//! FILE] [--out FILE]`. When `--baseline` points at a previous emission, its
//! `current` section is embedded under `baseline` in the new file, so a single
//! artifact records both sides of a before/after comparison.

use hornet_bench::extract_current_section;
use hornet_core::engine::SyncMode;
use hornet_core::sim::{SimulationBuilder, TrafficKind};
use hornet_net::config::NetworkConfig;
use hornet_net::geometry::Geometry;
use hornet_net::kernel::KernelMode;
use hornet_net::network::Network;
use hornet_net::routing::RoutingKind;
use hornet_net::vca::VcAllocKind;
use hornet_traffic::injector::{flows_for_pattern, SyntheticConfig, SyntheticInjector};
use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
use std::sync::Arc;
use std::time::Instant;

const MEASURED_CYCLES: u64 = 20_000;
const RATE: f64 = 0.05;
const SEED: u64 = 1;

struct Scenario {
    name: &'static str,
    threads: usize,
    sync: SyncMode,
    /// Per-tile trace-ring capacity; 0 leaves tracing disabled (the
    /// compiled-in-but-off configuration every other scenario measures).
    trace_events: usize,
    /// Execution path: auto-detect, force the interpreter, or force the
    /// compiled kernel. Results are bit-identical either way.
    kernel: KernelMode,
}

fn run_scenario(s: &Scenario) -> (f64, u64) {
    let sim = SimulationBuilder::new()
        .geometry(Geometry::mesh2d(8, 8))
        .traffic(TrafficKind::pattern(SyntheticPattern::Transpose, RATE))
        .measured_cycles(MEASURED_CYCLES)
        .seed(SEED)
        .threads(s.threads)
        .sync(s.sync)
        .trace_events(s.trace_events)
        .kernel(s.kernel)
        .build()
        .expect("valid config");
    let start = Instant::now();
    let report = sim.run().expect("run succeeds");
    let secs = start.elapsed().as_secs_f64();
    (
        MEASURED_CYCLES as f64 / secs,
        report.network.delivered_packets,
    )
}

/// One timed kernel run on the canonical workload; returns the per-stage
/// wall-clock breakdown in nanoseconds (absorb, SA, VA, RC, negedge,
/// bridge).
fn kernel_stage_breakdown() -> Option<Vec<(&'static str, u128)>> {
    let geometry = Arc::new(Geometry::mesh2d(8, 8));
    let pattern = SyntheticPattern::Transpose;
    let cfg = NetworkConfig::new((*geometry).clone())
        .with_routing(RoutingKind::Xy)
        .with_vca(VcAllocKind::Dynamic)
        .with_flows(flows_for_pattern(&pattern, &geometry));
    let mut network = Network::new(&cfg, SEED).expect("valid config");
    for node in geometry.nodes() {
        network.attach_agent(
            node,
            Box::new(SyntheticInjector::new(
                Arc::clone(&geometry),
                SyntheticConfig {
                    pattern: pattern.clone(),
                    process: InjectionProcess::Bernoulli { rate: RATE },
                    packet_len: 8,
                    stop_after: None,
                    max_packets: None,
                },
            )),
        );
    }
    network.set_kernel_mode(KernelMode::Force);
    network.set_kernel_timing(true);
    network.run(MEASURED_CYCLES);
    let t = network.kernel_stage_times()?;
    Some(vec![
        ("absorb", t.absorb.as_nanos()),
        ("sa", t.sa.as_nanos()),
        ("va", t.va.as_nanos()),
        ("rc", t.rc.as_nanos()),
        ("negedge", t.negedge.as_nanos()),
        ("bridge", t.bridge.as_nanos()),
    ])
}

/// The latest `router_pipeline` medians from the criterion-lite CSV log, if a
/// `cargo bench -p hornet-bench --bench router_pipeline` ran from this
/// directory. Embedding them here keeps the criterion trajectory in the same
/// artifact as the cycles/sec numbers.
fn criterion_medians() -> Vec<(String, u128)> {
    let Ok(csv) = std::fs::read_to_string(criterion::target_dir().join("criterion-lite.csv"))
    else {
        return Vec::new();
    };
    let mut latest: Vec<(String, u128)> = Vec::new();
    for line in csv.lines() {
        let mut parts = line.split(',');
        let (Some(id), Some(_min), Some(median)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if !id.starts_with("router_pipeline/") {
            continue;
        }
        let Ok(median) = median.parse::<u128>() else {
            continue;
        };
        let key = format!("{}_median_ns", id.replace(['/', '.'], "_"));
        match latest.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 = median,
            None => latest.push((key, median)),
        }
    }
    latest
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path: Option<String> = None;
    let mut out_path = "BENCH_hotpath.json".to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next(),
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let scenarios = [
        Scenario {
            name: "mesh8x8_seq",
            threads: 1,
            sync: SyncMode::CycleAccurate,
            trace_events: 0,
            kernel: KernelMode::Auto,
        },
        Scenario {
            name: "mesh8x8_seq_interp",
            threads: 1,
            sync: SyncMode::CycleAccurate,
            trace_events: 0,
            kernel: KernelMode::Off,
        },
        Scenario {
            name: "mesh8x8_seq_kernel",
            threads: 1,
            sync: SyncMode::CycleAccurate,
            trace_events: 0,
            kernel: KernelMode::Force,
        },
        Scenario {
            name: "mesh8x8_t4_periodic5",
            threads: 4,
            sync: SyncMode::Periodic(5),
            trace_events: 0,
            kernel: KernelMode::Auto,
        },
        Scenario {
            name: "mesh8x8_t4_periodic5_interp",
            threads: 4,
            sync: SyncMode::Periodic(5),
            trace_events: 0,
            kernel: KernelMode::Off,
        },
        Scenario {
            name: "mesh8x8_seq_traced",
            threads: 1,
            sync: SyncMode::CycleAccurate,
            trace_events: 1 << 16,
            kernel: KernelMode::Auto,
        },
    ];

    let mut current_fields = Vec::new();
    let mut cps_by_name: Vec<(&str, f64)> = Vec::new();
    for s in &scenarios {
        // Warm-up run (page in code + allocator), then the measured run.
        run_scenario(s);
        let (cps, delivered) = run_scenario(s);
        println!(
            "{:<24} {:>12.0} cycles/sec ({delivered} packets delivered)",
            s.name, cps
        );
        current_fields.push(format!("\"{}_cycles_per_sec\": {:.0}", s.name, cps));
        current_fields.push(format!("\"{}_delivered_packets\": {}", s.name, delivered));
        cps_by_name.push((s.name, cps));
    }
    // Tracing-on vs. tracing-off delta for the sequential hot path.
    let cps_of = |name: &str| {
        cps_by_name
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    };
    let (off, on) = (cps_of("mesh8x8_seq"), cps_of("mesh8x8_seq_traced"));
    if off > 0.0 {
        let overhead_pct = (off - on) / off * 100.0;
        println!("tracing overhead       {overhead_pct:>12.2} %");
        current_fields.push(format!("\"tracing_overhead_pct\": {overhead_pct:.2}"));
    }
    // Kernel-over-interpreter speedup on the sequential hot path.
    let (interp, kernel) = (cps_of("mesh8x8_seq_interp"), cps_of("mesh8x8_seq_kernel"));
    if interp > 0.0 {
        let speedup = kernel / interp;
        println!("kernel speedup         {speedup:>12.2} x");
        current_fields.push(format!("\"kernel_speedup\": {speedup:.2}"));
    }
    if let Some(stages) = kernel_stage_breakdown() {
        let total: u128 = stages.iter().map(|(_, ns)| ns).sum();
        for (stage, ns) in &stages {
            let pct = (*ns * 100).checked_div(total).unwrap_or(0);
            println!("kernel stage {stage:<10} {ns:>12} ns ({pct:>2} %)");
            current_fields.push(format!("\"kernel_stage_{stage}_ns\": {ns}"));
        }
    }
    for (key, median) in criterion_medians() {
        current_fields.push(format!("\"{key}\": {median}"));
    }

    let baseline = baseline_path
        .and_then(|p| std::fs::read_to_string(&p).ok())
        .and_then(|c| extract_current_section(&c));

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"hotpath\",\n");
    json.push_str(&format!(
        "  \"config\": \"mesh8x8 transpose rate={RATE} cycles={MEASURED_CYCLES} seed={SEED}\",\n"
    ));
    if let Some(b) = baseline {
        json.push_str(&format!("  \"baseline\": {b},\n"));
    }
    json.push_str(&format!(
        "  \"current\": {{ {} }}\n",
        current_fields.join(", ")
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write output file");
    println!("wrote {out_path}");
}
