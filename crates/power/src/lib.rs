//! # hornet-power
//!
//! Power and thermal modeling for HORNET-RS (paper §II-B): an ORION-like
//! per-event dynamic + leakage energy model driven by the router activity
//! counters, and a HOTSPOT-like RC-grid thermal model producing per-tile,
//! per-interval temperature traces and steady-state maps.
//!
//! ```
//! use hornet_power::energy::{PowerConfig, RouterPowerModel};
//! use hornet_power::thermal::{ThermalConfig, ThermalGrid};
//! use hornet_net::stats::RouterActivity;
//!
//! let model = RouterPowerModel::new(PowerConfig::default());
//! let sample = model.sample(&RouterActivity::default(), 1_000);
//! let mut grid = ThermalGrid::new(8, 8, ThermalConfig::default());
//! grid.run(&vec![sample.total_w(); 64], 10);
//! assert!(grid.mean_temp() > 0.0);
//! ```

pub mod energy;
pub mod thermal;

pub use energy::{activity_delta, PowerConfig, PowerSample, RouterPowerModel};
pub use thermal::{SensorPlacement, ThermalConfig, ThermalGrid};
