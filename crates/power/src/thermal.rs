//! HOTSPOT-like RC thermal model.
//!
//! The chip floorplan is a grid of tiles (one per router + core). Each tile
//! has a thermal capacitance, a lateral thermal conductance to its neighbours,
//! and a vertical conductance through the heat spreader and sink to ambient.
//! Per-tile power traces (from the [`energy`](crate::energy) model) drive the
//! transient temperature response; running the transient model to convergence
//! with constant power yields the steady-state map used in Figure 14.

use serde::{Deserialize, Serialize};

/// Thermal parameters of the floorplan.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Ambient (heat-sink) temperature, in °C.
    pub ambient_c: f64,
    /// Vertical thermal resistance from one tile to ambient, in K/W.
    pub vertical_resistance: f64,
    /// Lateral thermal resistance between adjacent tiles, in K/W.
    pub lateral_resistance: f64,
    /// Thermal capacitance of one tile, in J/K.
    pub capacitance: f64,
    /// Simulation time step, in seconds.
    pub dt: f64,
    /// Power that is always present per tile besides the router (core +
    /// cache background), in watts; lets the absolute temperatures land in a
    /// realistic 70–95 °C band as in the paper's figures.
    pub background_power_w: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        Self {
            ambient_c: 45.0,
            vertical_resistance: 2.0,
            lateral_resistance: 4.0,
            capacitance: 0.03,
            dt: 1.0e-4,
            background_power_w: 12.0,
        }
    }
}

/// The RC grid and its current temperatures.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThermalGrid {
    config: ThermalConfig,
    width: usize,
    height: usize,
    temps: Vec<f64>,
}

impl ThermalGrid {
    /// Creates a grid of `width × height` tiles, initialised to a temperature
    /// consistent with every tile dissipating only the background power.
    pub fn new(width: usize, height: usize, config: ThermalConfig) -> Self {
        assert!(width > 0 && height > 0, "floorplan must be non-empty");
        let initial = config.ambient_c + config.background_power_w * config.vertical_resistance;
        Self {
            config,
            width,
            height,
            temps: vec![initial; width * height],
        }
    }

    /// The floorplan width in tiles.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The floorplan height in tiles.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Current per-tile temperatures (row-major), in °C.
    pub fn temperatures(&self) -> &[f64] {
        &self.temps
    }

    /// Maximum tile temperature, in °C.
    pub fn max_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Mean tile temperature, in °C.
    pub fn mean_temp(&self) -> f64 {
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Index of the hottest tile.
    pub fn hotspot(&self) -> usize {
        self.temps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite temperatures"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn neighbors(&self, idx: usize) -> impl Iterator<Item = usize> + '_ {
        let (x, y) = (idx % self.width, idx / self.width);
        let mut v = Vec::with_capacity(4);
        if x > 0 {
            v.push(idx - 1);
        }
        if x + 1 < self.width {
            v.push(idx + 1);
        }
        if y > 0 {
            v.push(idx - self.width);
        }
        if y + 1 < self.height {
            v.push(idx + self.width);
        }
        v.into_iter()
    }

    /// Advances the transient model by one time step under the given per-tile
    /// power dissipation (watts, router power; the configured background power
    /// is added automatically).
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` does not match the floorplan.
    pub fn step(&mut self, powers: &[f64]) {
        assert_eq!(powers.len(), self.temps.len(), "one power value per tile");
        let cfg = &self.config;
        let mut next = self.temps.clone();
        for i in 0..self.temps.len() {
            let t = self.temps[i];
            let mut flow = (powers[i] + cfg.background_power_w)
                - (t - cfg.ambient_c) / cfg.vertical_resistance;
            for n in self.neighbors(i) {
                flow -= (t - self.temps[n]) / cfg.lateral_resistance;
            }
            next[i] = t + cfg.dt / cfg.capacitance * flow;
        }
        self.temps = next;
    }

    /// Advances the transient model by `steps` time steps under constant
    /// power.
    pub fn run(&mut self, powers: &[f64], steps: usize) {
        for _ in 0..steps {
            self.step(powers);
        }
    }

    /// Computes the steady-state temperature map for a constant power
    /// distribution (iterates the transient model until the largest per-step
    /// change drops below `tolerance` °C).
    pub fn steady_state(&mut self, powers: &[f64], tolerance: f64) -> &[f64] {
        for _ in 0..200_000 {
            let before = self.temps.clone();
            self.step(powers);
            let delta = self
                .temps
                .iter()
                .zip(&before)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            if delta < tolerance {
                break;
            }
        }
        &self.temps
    }
}

/// A set of on-die thermal sensors and the readings they would report.
///
/// Sensors are expensive, so designers place only a few; the question the
/// paper investigates (§IV-E) is where to put them so the reading tracks the
/// true hotspot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensorPlacement {
    /// Tile indices carrying a sensor.
    pub positions: Vec<usize>,
}

impl SensorPlacement {
    /// A single sensor at the centre of the die.
    pub fn center(width: usize, height: usize) -> Self {
        Self {
            positions: vec![(height / 2) * width + width / 2],
        }
    }

    /// A single sensor next to the memory controller in the lower-left corner.
    pub fn at_memory_controller() -> Self {
        Self { positions: vec![0] }
    }

    /// The highest temperature any of the sensors reads.
    pub fn max_reading(&self, grid: &ThermalGrid) -> f64 {
        self.positions
            .iter()
            .map(|&i| grid.temperatures()[i])
            .fold(f64::MIN, f64::max)
    }

    /// How far the sensors' reading is below the true hotspot temperature
    /// (0 = the sensors see the real maximum).
    pub fn tracking_error(&self, grid: &ThermalGrid) -> f64 {
        (grid.max_temp() - self.max_reading(grid)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, w: f64) -> Vec<f64> {
        vec![w; n]
    }

    #[test]
    fn uniform_power_gives_a_uniform_map() {
        let mut grid = ThermalGrid::new(8, 8, ThermalConfig::default());
        grid.steady_state(&uniform(64, 0.01), 1e-5);
        let spread = grid.max_temp() - grid.temperatures().iter().copied().fold(f64::MAX, f64::min);
        assert!(
            spread < 0.5,
            "uniform power must not create a hotspot (spread {spread})"
        );
        assert!(grid.max_temp() > grid.config.ambient_c);
    }

    #[test]
    fn centre_heavy_power_puts_the_hotspot_in_the_centre() {
        // XY routing concentrates traffic (and therefore router power) on the
        // central tiles; the steady-state hotspot must follow it (Figure 14).
        let mut grid = ThermalGrid::new(8, 8, ThermalConfig::default());
        let mut powers = vec![0.005; 64];
        for y in 0..8usize {
            for x in 0..8usize {
                let centrality = (4.0 - (x as f64 - 3.5).abs()) + (4.0 - (y as f64 - 3.5).abs());
                powers[y * 8 + x] = 0.005 + 0.01 * centrality;
            }
        }
        grid.steady_state(&powers, 1e-5);
        let hotspot = grid.hotspot();
        let (x, y) = (hotspot % 8, hotspot / 8);
        assert!(
            (2..6).contains(&x) && (2..6).contains(&y),
            "hotspot at ({x},{y})"
        );
    }

    #[test]
    fn more_power_means_higher_steady_temperature() {
        let mut cool = ThermalGrid::new(4, 4, ThermalConfig::default());
        cool.steady_state(&uniform(16, 0.005), 1e-4);
        let mut hot = ThermalGrid::new(4, 4, ThermalConfig::default());
        hot.steady_state(&uniform(16, 0.05), 1e-4);
        assert!(hot.mean_temp() > cool.mean_temp());
    }

    #[test]
    fn transient_response_lags_power_changes() {
        let mut grid = ThermalGrid::new(4, 4, ThermalConfig::default());
        let idle = grid.mean_temp();
        // One burst of high power: temperature rises but not instantly to the
        // steady-state value.
        grid.run(&uniform(16, 2.0), 10);
        let after_burst = grid.mean_temp();
        assert!(after_burst > idle);
        let mut steady = ThermalGrid::new(4, 4, ThermalConfig::default());
        steady.steady_state(&uniform(16, 2.0), 1e-4);
        assert!(after_burst < steady.mean_temp());
        // Power removed: it cools back down.
        grid.run(&uniform(16, 0.0), 2_000);
        assert!(grid.mean_temp() < after_burst);
    }

    #[test]
    fn centre_sensor_tracks_hotspot_better_than_corner_sensor() {
        // Skewed but roughly centre-heavy power map, as produced by XY routing.
        let mut grid = ThermalGrid::new(8, 8, ThermalConfig::default());
        let mut powers = vec![0.002; 64];
        for y in 0..8 {
            for x in 0..8 {
                let centrality = (4.0 - (x as f64 - 3.5).abs()) + (4.0 - (y as f64 - 3.5).abs());
                powers[y * 8 + x] = 0.002 + 0.004 * centrality;
            }
        }
        grid.steady_state(&powers, 1e-4);
        let center = SensorPlacement::center(8, 8);
        let corner = SensorPlacement::at_memory_controller();
        assert!(center.max_reading(&grid) > corner.max_reading(&grid));
    }

    #[test]
    fn absolute_temperatures_are_in_a_plausible_band() {
        // With the default background power the idle die sits around 69 °C and
        // a busy NoC pushes tiles into the 70–95 °C band of Figure 13/14.
        let mut grid = ThermalGrid::new(8, 8, ThermalConfig::default());
        grid.steady_state(&uniform(64, 0.02), 1e-4);
        assert!(
            grid.mean_temp() > 60.0 && grid.max_temp() < 110.0,
            "{}",
            grid.mean_temp()
        );
    }

    #[test]
    #[should_panic(expected = "one power value per tile")]
    fn mismatched_power_vector_panics() {
        let mut grid = ThermalGrid::new(2, 2, ThermalConfig::default());
        grid.step(&[0.0; 3]);
    }
}
