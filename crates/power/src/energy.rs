//! ORION-like dynamic and leakage power model.
//!
//! The paper couples HORNET to ORION 2.0: at runtime, configuration parameters
//! (buffer sizes, port counts, flit width) and activity statistics (buffer
//! reads/writes, crossbar transits, arbitrations, link traversals) are passed
//! to the power library for on-the-fly energy estimation. This module
//! reproduces that interface with an analytical per-event energy model: each
//! router event is charged an energy derived from the router configuration and
//! technology parameters, and idle routers still burn leakage power.
//! Absolute numbers are calibrated to be plausible for a 45 nm NoC router
//! (a few mW per router at moderate load), but the model's purpose — like
//! ORION's inside HORNET — is to expose per-tile, per-interval power that the
//! thermal model and power-aware experiments can consume.

use hornet_net::stats::RouterActivity;
use serde::{Deserialize, Serialize};

/// Technology / configuration parameters of the power model.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Flit width in bits.
    pub flit_bits: u32,
    /// Virtual channels per port.
    pub vcs_per_port: u32,
    /// Buffer depth per VC, in flits.
    pub vc_depth: u32,
    /// Router ports (5 for a 2-D mesh router with a local port).
    pub ports: u32,
    /// Clock frequency, in Hz (used to convert energy/cycle to watts).
    pub frequency_hz: f64,
    /// Supply voltage, in volts.
    pub vdd: f64,
    /// Energy per bit for a buffer write, in joules at nominal voltage.
    pub buffer_write_energy_per_bit: f64,
    /// Energy per bit for a buffer read.
    pub buffer_read_energy_per_bit: f64,
    /// Energy per bit for one crossbar traversal.
    pub crossbar_energy_per_bit: f64,
    /// Energy per arbitration operation.
    pub arbiter_energy: f64,
    /// Energy per bit for one inter-router link traversal.
    pub link_energy_per_bit: f64,
    /// Leakage power per router, in watts.
    pub router_leakage_w: f64,
    /// Leakage power per link driver, in watts.
    pub link_leakage_w: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        // Loosely calibrated to ORION 2.0's 45 nm numbers for a 128-bit,
        // 4-VC, 5-port mesh router at 1 GHz.
        Self {
            flit_bits: 128,
            vcs_per_port: 4,
            vc_depth: 4,
            ports: 5,
            frequency_hz: 1.0e9,
            vdd: 1.0,
            buffer_write_energy_per_bit: 0.15e-12,
            buffer_read_energy_per_bit: 0.11e-12,
            crossbar_energy_per_bit: 0.19e-12,
            arbiter_energy: 1.5e-12,
            link_energy_per_bit: 0.25e-12,
            router_leakage_w: 2.0e-3,
            link_leakage_w: 0.5e-3,
        }
    }
}

impl PowerConfig {
    /// Scales the dynamic energies for a different supply voltage
    /// (energy ∝ V²).
    pub fn at_voltage(mut self, vdd: f64) -> Self {
        let scale = (vdd / self.vdd).powi(2);
        self.buffer_write_energy_per_bit *= scale;
        self.buffer_read_energy_per_bit *= scale;
        self.crossbar_energy_per_bit *= scale;
        self.arbiter_energy *= scale;
        self.link_energy_per_bit *= scale;
        self.vdd = vdd;
        self
    }

    /// Buffer capacity scaling factor: bigger buffers leak and cost more per
    /// access (modelled as a square-root capacity dependence, as in ORION's
    /// SRAM model).
    fn buffer_scale(&self) -> f64 {
        ((self.vcs_per_port * self.vc_depth) as f64 / 16.0)
            .sqrt()
            .max(0.25)
    }
}

/// A power sample for one router over one measurement interval.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Dynamic power, in watts.
    pub dynamic_w: f64,
    /// Leakage power, in watts.
    pub leakage_w: f64,
    /// Total energy consumed over the interval, in joules.
    pub energy_j: f64,
    /// Interval length, in cycles.
    pub cycles: u64,
}

impl PowerSample {
    /// Total power (dynamic + leakage), in watts.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w + self.leakage_w
    }
}

/// The per-router energy model.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouterPowerModel {
    config: PowerConfig,
}

impl RouterPowerModel {
    /// Creates a power model from a configuration.
    pub fn new(config: PowerConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PowerConfig {
        &self.config
    }

    /// Energy consumed by the given activity counts, in joules.
    pub fn dynamic_energy(&self, activity: &RouterActivity) -> f64 {
        let bits = self.config.flit_bits as f64;
        let bscale = self.config.buffer_scale();
        activity.buffer_writes as f64 * self.config.buffer_write_energy_per_bit * bits * bscale
            + activity.buffer_reads as f64 * self.config.buffer_read_energy_per_bit * bits * bscale
            + activity.crossbar_transits as f64
                * self.config.crossbar_energy_per_bit
                * bits
                * (self.config.ports as f64 / 5.0)
            + activity.arbitrations as f64 * self.config.arbiter_energy
            + activity.link_flits as f64 * self.config.link_energy_per_bit * bits
    }

    /// Leakage energy over `cycles` cycles, in joules.
    pub fn leakage_energy(&self, cycles: u64) -> f64 {
        let seconds = cycles as f64 / self.config.frequency_hz;
        (self.config.router_leakage_w
            + self.config.link_leakage_w * self.config.ports as f64
            + self.config.router_leakage_w * 0.1 * self.config.buffer_scale())
            * seconds
    }

    /// Converts an activity delta over an interval into a power sample.
    pub fn sample(&self, activity: &RouterActivity, cycles: u64) -> PowerSample {
        let cycles = cycles.max(1);
        let seconds = cycles as f64 / self.config.frequency_hz;
        let dyn_e = self.dynamic_energy(activity);
        let leak_e = self.leakage_energy(cycles);
        PowerSample {
            dynamic_w: dyn_e / seconds,
            leakage_w: leak_e / seconds,
            energy_j: dyn_e + leak_e,
            cycles,
        }
    }
}

/// Subtracts two cumulative activity records, yielding the activity of the
/// most recent interval.
pub fn activity_delta(current: &RouterActivity, previous: &RouterActivity) -> RouterActivity {
    RouterActivity {
        buffer_writes: current.buffer_writes - previous.buffer_writes,
        buffer_reads: current.buffer_reads - previous.buffer_reads,
        crossbar_transits: current.crossbar_transits - previous.crossbar_transits,
        link_flits: current.link_flits - previous.link_flits,
        arbitrations: current.arbitrations - previous.arbitrations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity(n: u64) -> RouterActivity {
        RouterActivity {
            buffer_writes: n,
            buffer_reads: n,
            crossbar_transits: n,
            link_flits: n,
            arbitrations: n,
        }
    }

    #[test]
    fn idle_router_burns_only_leakage() {
        let model = RouterPowerModel::new(PowerConfig::default());
        let s = model.sample(&RouterActivity::default(), 1000);
        assert_eq!(s.dynamic_w, 0.0);
        assert!(s.leakage_w > 0.0);
        assert!(s.total_w() > 0.0);
    }

    #[test]
    fn dynamic_power_scales_with_activity() {
        let model = RouterPowerModel::new(PowerConfig::default());
        let light = model.sample(&activity(100), 10_000);
        let heavy = model.sample(&activity(1_000), 10_000);
        assert!(heavy.dynamic_w > 9.0 * light.dynamic_w);
        assert!((heavy.leakage_w - light.leakage_w).abs() < 1e-12);
    }

    #[test]
    fn power_magnitude_is_plausible_for_a_45nm_router() {
        // A fully busy router (one flit through every stage every cycle)
        // should land in the single-digit mW to tens-of-mW range.
        let model = RouterPowerModel::new(PowerConfig::default());
        let s = model.sample(&activity(10_000), 10_000);
        assert!(s.total_w() > 1e-3 && s.total_w() < 100e-3, "{s:?}");
    }

    #[test]
    fn bigger_buffers_cost_more() {
        let small = RouterPowerModel::new(PowerConfig {
            vcs_per_port: 2,
            vc_depth: 4,
            ..PowerConfig::default()
        });
        let big = RouterPowerModel::new(PowerConfig {
            vcs_per_port: 8,
            vc_depth: 8,
            ..PowerConfig::default()
        });
        let a = activity(1000);
        assert!(big.dynamic_energy(&a) > small.dynamic_energy(&a));
        assert!(big.leakage_energy(1000) > small.leakage_energy(1000));
    }

    #[test]
    fn voltage_scaling_is_quadratic() {
        let base = PowerConfig::default();
        let low = base.at_voltage(0.5);
        assert!(
            (low.buffer_write_energy_per_bit / base.buffer_write_energy_per_bit - 0.25).abs()
                < 1e-9
        );
    }

    #[test]
    fn activity_delta_subtracts() {
        let d = activity_delta(&activity(10), &activity(4));
        assert_eq!(d.buffer_reads, 6);
        assert_eq!(d.link_flits, 6);
    }
}
