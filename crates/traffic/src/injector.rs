//! Synthetic traffic injector agents.
//!
//! A [`SyntheticInjector`] is attached to one node; every cycle it consults
//! its [`InjectionProcess`] to decide whether to offer a packet and its
//! [`SyntheticPattern`] to pick the destination. Delivered packets addressed
//! to the node are consumed and counted.

use crate::pattern::{InjectionProcess, ProcessState, SyntheticPattern};
use hornet_net::agent::{NodeAgent, NodeIo};
use hornet_net::flit::Packet;
use hornet_net::geometry::Geometry;
#[cfg(test)]
use hornet_net::ids::NodeId;
use hornet_net::ids::{Cycle, FlowId};
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;

/// Configuration of a synthetic injector.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Destination pattern.
    pub pattern: SyntheticPattern,
    /// Injection process.
    pub process: InjectionProcess,
    /// Packet length in flits (the paper uses an average of 8).
    pub packet_len: u32,
    /// Stop offering new packets after this cycle (`None` = never stop).
    pub stop_after: Option<Cycle>,
    /// Cap on the number of packets to offer (`None` = unlimited).
    pub max_packets: Option<u64>,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            pattern: SyntheticPattern::UniformRandom,
            process: InjectionProcess::Bernoulli { rate: 0.01 },
            packet_len: 8,
            stop_after: None,
            max_packets: None,
        }
    }
}

/// A synthetic traffic source/sink attached to one node.
#[derive(Debug)]
pub struct SyntheticInjector {
    geometry: Arc<Geometry>,
    config: SyntheticConfig,
    state: ProcessState,
    offered: u64,
    received: u64,
    last_cycle_seen: Cycle,
}

impl SyntheticInjector {
    /// Creates an injector for a node of the given geometry.
    pub fn new(geometry: Arc<Geometry>, config: SyntheticConfig) -> Self {
        Self {
            geometry,
            config,
            state: ProcessState::default(),
            offered: 0,
            received: 0,
            last_cycle_seen: 0,
        }
    }

    /// Packets offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets received (consumed) so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    fn may_offer(&self, now: Cycle) -> bool {
        if let Some(stop) = self.config.stop_after {
            if now > stop {
                return false;
            }
        }
        if let Some(max) = self.config.max_packets {
            if self.offered >= max {
                return false;
            }
        }
        true
    }
}

impl NodeAgent for SyntheticInjector {
    fn tick(&mut self, io: &mut dyn NodeIo, rng: &mut ChaCha12Rng) {
        let now = io.cycle();
        self.last_cycle_seen = now;
        // Drain anything delivered to this node.
        while io.try_recv().is_some() {
            self.received += 1;
        }
        if !self.may_offer(now) {
            return;
        }
        let count = self.config.process.injections_at(now, &mut self.state, rng);
        for _ in 0..count {
            if !self.may_offer(now) {
                break;
            }
            let src = io.node();
            let dst = self.config.pattern.destination(src, &self.geometry, rng);
            if dst == src {
                continue;
            }
            let id = io.alloc_packet_id();
            let flow = FlowId::for_pair(src, dst, self.geometry.node_count());
            io.send(Packet::new(id, flow, src, dst, self.config.packet_len, now));
            self.offered += 1;
            self.state.injected += 1;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.may_offer(now) {
            return None;
        }
        let next = self.config.process.next_injection(now)?;
        if let Some(stop) = self.config.stop_after {
            if next > stop {
                return None;
            }
        }
        Some(next.max(now))
    }

    fn finished(&self) -> bool {
        match (self.config.stop_after, self.config.max_packets) {
            (None, None) => true, // open-loop sources never block completion
            (Some(stop), _) => self.last_cycle_seen >= stop,
            (_, Some(max)) => self.offered >= max,
        }
    }

    fn label(&self) -> &str {
        self.config.pattern.label()
    }

    fn snapshot(&self, e: &mut hornet_net::codec::Enc) {
        e.u64(self.state.injected)
            .u64(self.offered)
            .u64(self.received)
            .u64(self.last_cycle_seen);
    }

    fn restore(&mut self, d: &mut hornet_net::codec::Dec) -> std::io::Result<()> {
        self.state.injected = d.u64()?;
        self.offered = d.u64()?;
        self.received = d.u64()?;
        self.last_cycle_seen = d.u64()?;
        Ok(())
    }
}

/// Attaches one [`SyntheticInjector`] with the same configuration to every
/// node of a network built over `geometry`.
pub fn attach_everywhere(
    network: &mut hornet_net::network::Network,
    geometry: &Arc<Geometry>,
    config: &SyntheticConfig,
) {
    for node in geometry.nodes() {
        network.attach_agent(
            node,
            Box::new(SyntheticInjector::new(Arc::clone(geometry), config.clone())),
        );
    }
}

/// Builds the flow set a synthetic pattern needs the routing tables to cover.
pub fn flows_for_pattern(
    pattern: &SyntheticPattern,
    geometry: &Geometry,
) -> Vec<hornet_net::routing::FlowSpec> {
    pattern
        .flow_pairs(geometry)
        .into_iter()
        .map(|(s, d)| hornet_net::routing::FlowSpec::pair(s, d, geometry.node_count()))
        .collect()
}

/// Convenience: builds a network configured for a synthetic pattern.
pub fn network_for_pattern(
    geometry: Geometry,
    pattern: &SyntheticPattern,
    routing: hornet_net::routing::RoutingKind,
    vca: hornet_net::vca::VcAllocKind,
    seed: u64,
) -> Result<hornet_net::network::Network, hornet_net::config::ConfigError> {
    let flows = flows_for_pattern(pattern, &geometry);
    let config = hornet_net::config::NetworkConfig::new(geometry)
        .with_routing(routing)
        .with_vca(vca)
        .with_flows(flows);
    hornet_net::network::Network::new(&config, seed)
}

/// Result row of a network-only synthetic-traffic run.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticRunReport {
    /// Average in-network packet latency over the measured window.
    pub avg_packet_latency: f64,
    /// Delivered packets during the measured window.
    pub delivered_packets: u64,
    /// Injected packets during the measured window.
    pub injected_packets: u64,
    /// Measured cycles.
    pub cycles: Cycle,
}

/// Runs a network-only synthetic-traffic experiment: every node runs the same
/// injector; statistics are reset after `warmup` cycles and collected for
/// `measured` cycles (Table I's methodology).
#[allow(clippy::too_many_arguments)]
pub fn run_synthetic(
    geometry: Geometry,
    pattern: SyntheticPattern,
    routing: hornet_net::routing::RoutingKind,
    vca: hornet_net::vca::VcAllocKind,
    config: SyntheticConfig,
    warmup: Cycle,
    measured: Cycle,
    seed: u64,
) -> SyntheticRunReport {
    let geometry = Arc::new(geometry);
    let mut network = network_for_pattern((*geometry).clone(), &pattern, routing, vca, seed)
        .expect("valid synthetic configuration");
    let mut cfg = config;
    cfg.pattern = pattern;
    attach_everywhere(&mut network, &geometry, &cfg);
    network.run(warmup);
    network.reset_stats();
    network.run(measured);
    let stats = network.stats();
    SyntheticRunReport {
        avg_packet_latency: stats.avg_packet_latency(),
        delivered_packets: stats.delivered_packets,
        injected_packets: stats.injected_packets,
        cycles: measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornet_net::routing::RoutingKind;
    use hornet_net::vca::VcAllocKind;

    #[test]
    fn injector_offers_and_receives() {
        let report = run_synthetic(
            Geometry::mesh2d(4, 4),
            SyntheticPattern::Transpose,
            RoutingKind::Xy,
            VcAllocKind::Dynamic,
            SyntheticConfig {
                process: InjectionProcess::Bernoulli { rate: 0.02 },
                packet_len: 4,
                ..SyntheticConfig::default()
            },
            200,
            2_000,
            1,
        );
        assert!(report.delivered_packets > 0);
        assert!(report.avg_packet_latency > 0.0);
    }

    #[test]
    fn higher_load_means_higher_latency() {
        let run = |rate: f64| {
            run_synthetic(
                Geometry::mesh2d(4, 4),
                SyntheticPattern::UniformRandom,
                RoutingKind::Xy,
                VcAllocKind::Dynamic,
                SyntheticConfig {
                    process: InjectionProcess::Bernoulli { rate },
                    packet_len: 8,
                    ..SyntheticConfig::default()
                },
                500,
                3_000,
                7,
            )
        };
        let light = run(0.005);
        let heavy = run(0.08);
        assert!(
            heavy.avg_packet_latency > light.avg_packet_latency,
            "congestion must increase latency: {light:?} vs {heavy:?}"
        );
    }

    #[test]
    fn max_packets_bounds_offered_traffic() {
        let geometry = Arc::new(Geometry::mesh2d(2, 2));
        let mut injector = SyntheticInjector::new(
            Arc::clone(&geometry),
            SyntheticConfig {
                pattern: SyntheticPattern::NearestNeighbor,
                process: InjectionProcess::Periodic {
                    period: 1,
                    offset: 0,
                },
                packet_len: 1,
                stop_after: None,
                max_packets: Some(3),
            },
        );
        // Drive it with a mock IO for 10 cycles.
        struct CountingIo {
            cycle: Cycle,
            sent: u64,
            next: u64,
        }
        impl NodeIo for CountingIo {
            fn node(&self) -> NodeId {
                NodeId::new(0)
            }
            fn cycle(&self) -> Cycle {
                self.cycle
            }
            fn alloc_packet_id(&mut self) -> hornet_net::ids::PacketId {
                self.next += 1;
                hornet_net::ids::PacketId::new(self.next)
            }
            fn send(&mut self, _packet: Packet) {
                self.sent += 1;
            }
            fn try_recv(&mut self) -> Option<hornet_net::flit::DeliveredPacket> {
                None
            }
            fn peek_recv(&self) -> Option<&hornet_net::flit::DeliveredPacket> {
                None
            }
            fn injection_backlog(&self) -> usize {
                0
            }
            fn recv_backlog(&self) -> usize {
                0
            }
        }
        let mut io = CountingIo {
            cycle: 0,
            sent: 0,
            next: 0,
        };
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        for c in 0..10 {
            io.cycle = c;
            injector.tick(&mut io, &mut rng);
        }
        assert_eq!(io.sent, 3);
        assert!(injector.finished());
        assert_eq!(injector.next_event(20), None);
    }

    #[test]
    fn flows_for_pattern_matches_pairs() {
        let g = Geometry::mesh2d(3, 3);
        let flows = flows_for_pattern(&SyntheticPattern::Transpose, &g);
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|f| f.src != f.dst));
    }
}
