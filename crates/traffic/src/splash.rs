//! SPLASH-2 / PARSEC-like workload synthesizers.
//!
//! The paper drives HORNET with network traces captured from SPLASH-2
//! benchmarks running under Graphite (64 threads, CPU clock 10× the network
//! clock) and with PARSEC applications on the built-in MIPS core. Those traces
//! are not redistributable, so this module synthesizes traffic with the same
//! *qualitative characteristics* the paper's experiments depend on:
//!
//! * **RADIX, FFT** — heavy, bursty all-to-all exchange phases plus strong
//!   memory-controller traffic (the "high traffic" applications whose latency
//!   roughly doubles when congestion is modeled, Figure 8);
//! * **SWAPTIONS, BLACKSCHOLES** — light, memory-controller-dominated traffic
//!   (congestion barely matters);
//! * **WATER** — moderate traffic, mixed neighbour/all-to-all (used for the
//!   routing × VCA comparison of Figure 10);
//! * **OCEAN** — alternating compute (quiet) and exchange (busy) phases,
//!   producing the slowly varying temperature profile of Figure 13a;
//! * **H.264 profile** — low-rate traffic spread evenly over time (the
//!   fast-forwarding counter-example of Figure 7b).
//!
//! Every knob (rates, burstiness, packet sizes, memory-controller fraction) is
//! public so experiments can sweep them.

use crate::pattern::SyntheticPattern;
use hornet_net::agent::{NodeAgent, NodeIo};
use hornet_net::flit::Packet;
use hornet_net::geometry::Geometry;
use hornet_net::ids::{Cycle, FlowId, NodeId};
use hornet_net::routing::FlowSpec;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The synthesized benchmarks.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplashBenchmark {
    /// Radix sort: heavy, bursty, memory-controller-hungry.
    Radix,
    /// FFT: heavy transpose-style exchanges.
    Fft,
    /// Swaptions: light, mostly memory traffic.
    Swaptions,
    /// Water: moderate mixed traffic.
    Water,
    /// Ocean: alternating quiet/busy phases.
    Ocean,
    /// H.264 decoder profile: low, steady traffic.
    H264,
    /// Blackscholes: light PARSEC workload.
    Blackscholes,
}

impl SplashBenchmark {
    /// All synthesized benchmarks.
    pub fn all() -> [SplashBenchmark; 7] {
        [
            SplashBenchmark::Radix,
            SplashBenchmark::Fft,
            SplashBenchmark::Swaptions,
            SplashBenchmark::Water,
            SplashBenchmark::Ocean,
            SplashBenchmark::H264,
            SplashBenchmark::Blackscholes,
        ]
    }

    /// Short lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            SplashBenchmark::Radix => "radix",
            SplashBenchmark::Fft => "fft",
            SplashBenchmark::Swaptions => "swaptions",
            SplashBenchmark::Water => "water",
            SplashBenchmark::Ocean => "ocean",
            SplashBenchmark::H264 => "h264",
            SplashBenchmark::Blackscholes => "blackscholes",
        }
    }

    /// Default traffic profile for this benchmark.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            SplashBenchmark::Radix => WorkloadProfile {
                base_rate: 0.0035,
                burst_rate: 0.0080,
                phase_len: 4_000,
                busy_fraction: 0.6,
                mc_fraction: 0.55,
                data_packet_len: 8,
                control_packet_len: 2,
                data_fraction: 0.7,
                peer_pattern: SyntheticPattern::UniformRandom,
            },
            SplashBenchmark::Fft => WorkloadProfile {
                base_rate: 0.0028,
                burst_rate: 0.0060,
                phase_len: 6_000,
                busy_fraction: 0.5,
                mc_fraction: 0.45,
                data_packet_len: 8,
                control_packet_len: 2,
                data_fraction: 0.7,
                peer_pattern: SyntheticPattern::Transpose,
            },
            SplashBenchmark::Swaptions => WorkloadProfile {
                base_rate: 0.0004,
                burst_rate: 0.0008,
                phase_len: 10_000,
                busy_fraction: 0.3,
                mc_fraction: 0.7,
                data_packet_len: 8,
                control_packet_len: 1,
                data_fraction: 0.5,
                peer_pattern: SyntheticPattern::UniformRandom,
            },
            SplashBenchmark::Water => WorkloadProfile {
                base_rate: 0.0015,
                burst_rate: 0.0040,
                phase_len: 5_000,
                busy_fraction: 0.5,
                mc_fraction: 0.4,
                data_packet_len: 8,
                control_packet_len: 2,
                data_fraction: 0.6,
                peer_pattern: SyntheticPattern::UniformRandom,
            },
            SplashBenchmark::Ocean => WorkloadProfile {
                base_rate: 0.0006,
                burst_rate: 0.0070,
                phase_len: 40_000,
                busy_fraction: 0.45,
                mc_fraction: 0.35,
                data_packet_len: 8,
                control_packet_len: 2,
                data_fraction: 0.7,
                peer_pattern: SyntheticPattern::NearestNeighbor,
            },
            SplashBenchmark::H264 => WorkloadProfile {
                base_rate: 0.0007,
                burst_rate: 0.0007,
                phase_len: 1_000,
                busy_fraction: 1.0,
                mc_fraction: 0.5,
                data_packet_len: 8,
                control_packet_len: 2,
                data_fraction: 0.6,
                peer_pattern: SyntheticPattern::UniformRandom,
            },
            SplashBenchmark::Blackscholes => WorkloadProfile {
                base_rate: 0.0009,
                burst_rate: 0.0018,
                phase_len: 8_000,
                busy_fraction: 0.4,
                mc_fraction: 0.6,
                data_packet_len: 8,
                control_packet_len: 2,
                data_fraction: 0.6,
                peer_pattern: SyntheticPattern::UniformRandom,
            },
        }
    }
}

impl std::fmt::Display for SplashBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The tunable traffic profile of a synthesized workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Offered load (packets/node/cycle) during quiet phases.
    pub base_rate: f64,
    /// Offered load during busy phases.
    pub burst_rate: f64,
    /// Length of one quiet+busy phase pair, in cycles.
    pub phase_len: Cycle,
    /// Fraction of each phase pair spent in the busy state.
    pub busy_fraction: f64,
    /// Fraction of packets addressed to a memory controller.
    pub mc_fraction: f64,
    /// Length of data packets, in flits.
    pub data_packet_len: u32,
    /// Length of control packets, in flits.
    pub control_packet_len: u32,
    /// Fraction of packets that are data-sized.
    pub data_fraction: f64,
    /// Destination pattern for core-to-core (non-MC) packets.
    pub peer_pattern: SyntheticPattern,
}

impl WorkloadProfile {
    /// Scales all rates by a factor (used to sweep congestion levels).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.base_rate *= factor;
        self.burst_rate *= factor;
        self
    }

    /// The offered load at a given cycle (busy phases first within each phase
    /// pair).
    pub fn rate_at(&self, cycle: Cycle) -> f64 {
        if self.phase_len == 0 {
            return self.burst_rate;
        }
        let phase = (cycle % self.phase_len) as f64 / self.phase_len as f64;
        if phase < self.busy_fraction {
            self.burst_rate
        } else {
            self.base_rate
        }
    }

    /// Average offered load over a full phase pair.
    pub fn average_rate(&self) -> f64 {
        self.burst_rate * self.busy_fraction + self.base_rate * (1.0 - self.busy_fraction)
    }
}

/// A synthesized workload: geometry, memory-controller placement, and traffic
/// profile.
#[derive(Clone, Debug)]
pub struct SplashWorkload {
    /// Which benchmark this synthesizes.
    pub benchmark: SplashBenchmark,
    /// The traffic profile (start from [`SplashBenchmark::profile`] and tweak).
    pub profile: WorkloadProfile,
    /// Memory-controller nodes (requests concentrate here; replies emanate
    /// from here).
    pub memory_controllers: Vec<NodeId>,
    geometry: Arc<Geometry>,
}

impl SplashWorkload {
    /// Creates a workload over a geometry with the benchmark's default profile
    /// and a single memory controller in the lower-left corner (the paper's
    /// SPLASH configuration).
    pub fn new(benchmark: SplashBenchmark, geometry: Arc<Geometry>) -> Self {
        Self {
            benchmark,
            profile: benchmark.profile(),
            memory_controllers: vec![NodeId::new(0)],
            geometry,
        }
    }

    /// Replaces the memory-controller placement.
    pub fn with_memory_controllers(mut self, mcs: Vec<NodeId>) -> Self {
        assert!(
            !mcs.is_empty(),
            "at least one memory controller is required"
        );
        self.memory_controllers = mcs;
        self
    }

    /// Replaces the traffic profile.
    pub fn with_profile(mut self, profile: WorkloadProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Scales the offered load.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.profile = self.profile.scaled(factor);
        self
    }

    /// The geometry this workload targets.
    pub fn geometry(&self) -> &Arc<Geometry> {
        &self.geometry
    }

    /// The flow set the routing tables must cover (all-to-all: the synthesized
    /// peer traffic plus MC requests and replies can touch any pair).
    pub fn flows(&self) -> Vec<FlowSpec> {
        FlowSpec::all_to_all(&self.geometry)
    }

    /// Builds the per-node injector agent for `node`.
    pub fn agent_for(&self, node: NodeId) -> Box<dyn NodeAgent> {
        Box::new(SplashInjector {
            workload: self.clone(),
            node,
            is_mc: self.memory_controllers.contains(&node),
            offered: 0,
            received: 0,
        })
    }

    /// Attaches an injector to every node of a network.
    pub fn attach_all(&self, network: &mut hornet_net::network::Network) {
        for node in self.geometry.nodes() {
            network.attach_agent(node, self.agent_for(node));
        }
    }

    /// Builds a [`hornet_net::network::Network`] configured for this workload.
    pub fn build_network(
        &self,
        routing: hornet_net::routing::RoutingKind,
        vca: hornet_net::vca::VcAllocKind,
        vcs: usize,
        vc_capacity: usize,
        seed: u64,
    ) -> hornet_net::network::Network {
        let config = hornet_net::config::NetworkConfig::new((*self.geometry).clone())
            .with_routing(routing)
            .with_vca(vca)
            .with_vcs(vcs, vc_capacity)
            .with_flows(self.flows());
        let mut network =
            hornet_net::network::Network::new(&config, seed).expect("valid workload configuration");
        self.attach_all(&mut network);
        network
    }

    /// Materialises the workload as a [`crate::trace::Trace`] of the given
    /// duration (useful for the trace-replay experiments and for inspection).
    pub fn to_trace(&self, duration: Cycle, seed: u64) -> crate::trace::Trace {
        use rand::SeedableRng;
        let mut events = Vec::new();
        for node in self.geometry.nodes() {
            let mut rng = ChaCha12Rng::seed_from_u64(
                seed.wrapping_add(0x9E37_79B9u64.wrapping_mul(node.raw() as u64 + 1)),
            );
            let is_mc = self.memory_controllers.contains(&node);
            for cycle in 0..duration {
                if let Some((dst, size)) = synth_injection(
                    &self.profile,
                    &self.geometry,
                    &self.memory_controllers,
                    node,
                    is_mc,
                    cycle,
                    &mut rng,
                ) {
                    events.push(crate::trace::TraceEvent {
                        timestamp: cycle,
                        src: node,
                        dst,
                        size,
                        period: None,
                    });
                }
            }
        }
        crate::trace::Trace::new(events)
    }
}

/// Decides whether node `src` injects a packet at `cycle`, and if so to where
/// and how large. Shared between the live agent and the trace materialiser so
/// both produce statistically identical traffic.
fn synth_injection<R: Rng>(
    profile: &WorkloadProfile,
    geometry: &Geometry,
    mcs: &[NodeId],
    src: NodeId,
    is_mc: bool,
    cycle: Cycle,
    rng: &mut R,
) -> Option<(NodeId, u32)> {
    // Memory controllers answer the aggregate request stream: they inject at a
    // rate proportional to the number of requesting nodes divided among MCs.
    let rate = if is_mc {
        let requesters = (geometry.node_count() - mcs.len()).max(1) as f64;
        profile.rate_at(cycle) * profile.mc_fraction * requesters / mcs.len() as f64
    } else {
        profile.rate_at(cycle)
    };
    if rng.gen::<f64>() >= rate.min(1.0) {
        return None;
    }
    let dst = if is_mc {
        // Reply to a random non-MC node.
        let mut d = src;
        for _ in 0..8 {
            let cand = NodeId::from(rng.gen_range(0..geometry.node_count()));
            if cand != src && !mcs.contains(&cand) {
                d = cand;
                break;
            }
        }
        if d == src {
            return None;
        }
        d
    } else if rng.gen::<f64>() < profile.mc_fraction {
        // Request to the nearest memory controller (ties by index).
        *mcs.iter()
            .min_by_key(|&&m| (geometry.hop_distance(src, m), m))
            .expect("at least one MC")
    } else {
        profile.peer_pattern.destination(src, geometry, rng)
    };
    if dst == src {
        return None;
    }
    let size = if rng.gen::<f64>() < profile.data_fraction {
        profile.data_packet_len
    } else {
        profile.control_packet_len
    };
    Some((dst, size.max(1)))
}

/// The live per-node injector for a synthesized workload.
#[derive(Debug)]
pub struct SplashInjector {
    workload: SplashWorkload,
    node: NodeId,
    is_mc: bool,
    offered: u64,
    received: u64,
}

impl SplashInjector {
    /// Packets offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets received so far.
    pub fn received(&self) -> u64 {
        self.received
    }
}

impl NodeAgent for SplashInjector {
    fn tick(&mut self, io: &mut dyn NodeIo, rng: &mut ChaCha12Rng) {
        while io.try_recv().is_some() {
            self.received += 1;
        }
        let now = io.cycle();
        if let Some((dst, size)) = synth_injection(
            &self.workload.profile,
            &self.workload.geometry,
            &self.workload.memory_controllers,
            self.node,
            self.is_mc,
            now,
            rng,
        ) {
            let id = io.alloc_packet_id();
            let flow = FlowId::for_pair(self.node, dst, self.workload.geometry.node_count());
            io.send(Packet::new(id, flow, self.node, dst, size, now));
            self.offered += 1;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now + 1) // open-loop source with a per-cycle Bernoulli draw
    }

    fn finished(&self) -> bool {
        true // open-loop sources never block completion
    }

    fn label(&self) -> &str {
        self.workload.benchmark.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornet_net::routing::RoutingKind;
    use hornet_net::vca::VcAllocKind;

    fn mesh8() -> Arc<Geometry> {
        Arc::new(Geometry::mesh2d(8, 8))
    }

    #[test]
    fn profiles_have_sane_rates() {
        for b in SplashBenchmark::all() {
            let p = b.profile();
            assert!(p.base_rate > 0.0 && p.base_rate < 0.5, "{b}");
            assert!(p.burst_rate >= p.base_rate, "{b}");
            assert!(p.mc_fraction > 0.0 && p.mc_fraction <= 1.0, "{b}");
            assert!(p.data_packet_len >= p.control_packet_len, "{b}");
        }
        // Radix is the heavy benchmark, swaptions the light one (Figure 8).
        assert!(
            SplashBenchmark::Radix.profile().average_rate()
                > 4.0 * SplashBenchmark::Swaptions.profile().average_rate()
        );
    }

    #[test]
    fn rate_alternates_between_phases() {
        let p = SplashBenchmark::Ocean.profile();
        let busy = p.rate_at(0);
        let quiet = p.rate_at(p.phase_len - 1);
        assert!(busy > quiet);
    }

    #[test]
    fn trace_materialisation_matches_profile_roughly() {
        let w = SplashWorkload::new(SplashBenchmark::Water, mesh8());
        let duration = 5_000;
        let trace = w.to_trace(duration, 3);
        let expected = w.profile.average_rate() * 64.0 * duration as f64;
        let got = trace.len() as f64;
        assert!(
            got > expected * 0.5 && got < expected * 2.0,
            "expected ~{expected}, got {got}"
        );
        // A healthy share of the traffic heads to the memory controller.
        let to_mc = trace
            .events()
            .iter()
            .filter(|e| e.dst == NodeId::new(0))
            .count();
        assert!(to_mc > trace.len() / 10);
    }

    #[test]
    fn radix_congests_more_than_swaptions() {
        let run = |benchmark: SplashBenchmark| {
            let w = SplashWorkload::new(benchmark, mesh8());
            let mut net = w.build_network(RoutingKind::Xy, VcAllocKind::Dynamic, 4, 4, 11);
            net.run(4_000);
            net.stats().avg_packet_latency()
        };
        let radix = run(SplashBenchmark::Radix);
        let swaptions = run(SplashBenchmark::Swaptions);
        assert!(
            radix > swaptions,
            "radix ({radix:.1}) must see more latency than swaptions ({swaptions:.1})"
        );
    }

    #[test]
    fn memory_controller_placement_is_configurable() {
        let w = SplashWorkload::new(SplashBenchmark::Radix, mesh8()).with_memory_controllers(vec![
            NodeId::new(0),
            NodeId::new(7),
            NodeId::new(56),
            NodeId::new(63),
            NodeId::new(27),
        ]);
        assert_eq!(w.memory_controllers.len(), 5);
        let trace = w.to_trace(2_000, 1);
        // Traffic to MCs is spread over all five controllers.
        let hits = |n: u32| {
            trace
                .events()
                .iter()
                .filter(|e| e.dst == NodeId::new(n))
                .count()
        };
        assert!(hits(0) > 0 && hits(63) > 0);
    }
}
