//! # hornet-traffic
//!
//! Traffic generation for HORNET-RS: synthetic patterns (transpose,
//! bit-complement, shuffle, uniform, hotspot, …) with Bernoulli / periodic /
//! bursty injection processes, a text-format trace reader and trace-driven
//! injector, and SPLASH-2 / PARSEC-like workload synthesizers calibrated to
//! the qualitative traffic characteristics the paper's evaluation relies on.
//!
//! # Example
//!
//! ```
//! use hornet_traffic::injector::{run_synthetic, SyntheticConfig};
//! use hornet_traffic::pattern::{InjectionProcess, SyntheticPattern};
//! use hornet_net::geometry::Geometry;
//! use hornet_net::routing::RoutingKind;
//! use hornet_net::vca::VcAllocKind;
//!
//! let report = run_synthetic(
//!     Geometry::mesh2d(4, 4),
//!     SyntheticPattern::Transpose,
//!     RoutingKind::Xy,
//!     VcAllocKind::Dynamic,
//!     SyntheticConfig {
//!         process: InjectionProcess::Bernoulli { rate: 0.01 },
//!         ..SyntheticConfig::default()
//!     },
//!     100,
//!     1_000,
//!     42,
//! );
//! assert!(report.delivered_packets > 0);
//! ```

pub mod injector;
pub mod pattern;
pub mod splash;
pub mod trace;

pub use injector::{SyntheticConfig, SyntheticInjector, SyntheticRunReport};
pub use pattern::{InjectionProcess, SyntheticPattern};
pub use splash::{SplashBenchmark, SplashWorkload, WorkloadProfile};
pub use trace::{Trace, TraceEvent, TraceInjector};
