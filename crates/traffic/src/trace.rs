//! Trace-driven injection.
//!
//! HORNET's trace injector reads a text-format trace of injection events; each
//! event carries a timestamp, the flow identifier, the packet size, and
//! optionally a repeat period for periodic flows. The injector offers packets
//! to the network at the appropriate times, buffering them in an injector
//! queue if the network cannot accept them and retrying until they are
//! injected; delivered packets are discarded.

use hornet_net::agent::{NodeAgent, NodeIo};
use hornet_net::flit::Packet;
use hornet_net::ids::{Cycle, FlowId, NodeId};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::str::FromStr;

/// One injection event of a trace.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle at which the packet is offered to the network.
    pub timestamp: Cycle,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Packet size in flits.
    pub size: u32,
    /// Repeat period for periodic flows (`None` = one-shot event).
    pub period: Option<Cycle>,
}

impl TraceEvent {
    /// Formats the event as one line of the text trace format:
    /// `timestamp src dst size [period]`.
    pub fn to_line(&self) -> String {
        match self.period {
            Some(p) => format!(
                "{} {} {} {} {}",
                self.timestamp,
                self.src.index(),
                self.dst.index(),
                self.size,
                p
            ),
            None => format!(
                "{} {} {} {}",
                self.timestamp,
                self.src.index(),
                self.dst.index(),
                self.size
            ),
        }
    }
}

/// Errors produced when parsing a trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// The offending line.
    pub line: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid trace line `{}`: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for TraceEvent {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let fields: Vec<&str> = s.split_whitespace().collect();
        if fields.len() != 4 && fields.len() != 5 {
            return Err(ParseTraceError {
                line: s.to_string(),
                reason: "expected `timestamp src dst size [period]`",
            });
        }
        let parse = |i: usize| -> Result<u64, ParseTraceError> {
            fields[i].parse().map_err(|_| ParseTraceError {
                line: s.to_string(),
                reason: "non-numeric field",
            })
        };
        Ok(TraceEvent {
            timestamp: parse(0)?,
            src: NodeId::from(parse(1)? as usize),
            dst: NodeId::from(parse(2)? as usize),
            size: parse(3)? as u32,
            period: if fields.len() == 5 {
                Some(parse(4)?)
            } else {
                None
            },
        })
    }
}

/// A complete trace: a list of injection events, sorted by timestamp.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a trace from events (sorting them by timestamp).
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.timestamp);
        Self { events }
    }

    /// Parses the text trace format (one event per line, `#` comments and
    /// blank lines allowed).
    ///
    /// # Errors
    ///
    /// Returns the first malformed line encountered.
    pub fn parse(text: &str) -> Result<Self, ParseTraceError> {
        let mut events = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            events.push(line.parse()?);
        }
        Ok(Self::new(events))
    }

    /// Renders the trace back to its text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out
    }

    /// The events, sorted by timestamp.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Splits the trace into per-source-node traces (the per-tile injectors).
    pub fn split_by_source(&self, node_count: usize) -> Vec<Trace> {
        let mut per_node = vec![Vec::new(); node_count];
        for e in &self.events {
            if e.src.index() < node_count {
                per_node[e.src.index()].push(*e);
            }
        }
        per_node.into_iter().map(Trace::new).collect()
    }

    /// All (src, dst) pairs appearing in the trace, for routing-table
    /// construction.
    pub fn flow_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs: Vec<(NodeId, NodeId)> = self
            .events
            .iter()
            .filter(|e| e.src != e.dst)
            .map(|e| (e.src, e.dst))
            .collect();
        pairs.sort();
        pairs.dedup();
        pairs
    }

    /// Scales every timestamp by an integer factor; the paper runs the
    /// SPLASH-2 traces with the CPU clock 10× faster than the network clock,
    /// which corresponds to *dividing* CPU-cycle timestamps by 10 (factor
    /// applied as a rational `num/den`).
    pub fn rescale_time(&self, num: u64, den: u64) -> Trace {
        assert!(den > 0, "denominator must be non-zero");
        Trace::new(
            self.events
                .iter()
                .map(|e| TraceEvent {
                    timestamp: e.timestamp * num / den,
                    ..*e
                })
                .collect(),
        )
    }

    /// Last event timestamp, or 0 for an empty trace.
    pub fn horizon(&self) -> Cycle {
        self.events.last().map(|e| e.timestamp).unwrap_or(0)
    }
}

/// A trace-driven injector agent for one node: offers the node's events at the
/// right times (retrying under backpressure via the bridge's injector queue)
/// and discards packets delivered to the node.
#[derive(Debug)]
pub struct TraceInjector {
    node_count: usize,
    events: Vec<TraceEvent>,
    /// Index of the next event to offer.
    cursor: usize,
    /// Expanded periodic events: (next_fire, event index).
    periodic: Vec<(Cycle, usize)>,
    /// Stop repeating periodic events after this cycle.
    periodic_horizon: Cycle,
    offered: u64,
    received: u64,
}

impl TraceInjector {
    /// Creates an injector for the events of one source node.
    ///
    /// Periodic events repeat until `periodic_horizon`.
    pub fn new(trace: Trace, node_count: usize, periodic_horizon: Cycle) -> Self {
        let events = trace.events().to_vec();
        let periodic = events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.period.is_some())
            .map(|(i, e)| (e.timestamp, i))
            .collect();
        Self {
            node_count,
            events,
            cursor: 0,
            periodic,
            periodic_horizon,
            offered: 0,
            received: 0,
        }
    }

    /// Packets offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets received (and discarded) so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    fn offer(&mut self, e: TraceEvent, io: &mut dyn NodeIo) {
        if e.src == e.dst || e.size == 0 {
            return;
        }
        let id = io.alloc_packet_id();
        let flow = FlowId::for_pair(e.src, e.dst, self.node_count);
        io.send(Packet::new(id, flow, e.src, e.dst, e.size, io.cycle()));
        self.offered += 1;
    }
}

impl NodeAgent for TraceInjector {
    fn tick(&mut self, io: &mut dyn NodeIo, _rng: &mut ChaCha12Rng) {
        let now = io.cycle();
        while io.try_recv().is_some() {
            self.received += 1;
        }
        // One-shot events whose time has come.
        while self.cursor < self.events.len() && self.events[self.cursor].timestamp <= now {
            let e = self.events[self.cursor];
            self.cursor += 1;
            if e.period.is_none() {
                self.offer(e, io);
            }
        }
        // Periodic events.
        for i in 0..self.periodic.len() {
            let (next_fire, idx) = self.periodic[i];
            if next_fire <= now && next_fire <= self.periodic_horizon {
                let e = self.events[idx];
                self.offer(e, io);
                let period = e.period.unwrap_or(1).max(1);
                self.periodic[i].0 = next_fire + period;
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        if self.cursor < self.events.len() {
            next = Some(self.events[self.cursor].timestamp);
        }
        for (fire, _) in &self.periodic {
            if *fire <= self.periodic_horizon {
                next = Some(next.map_or(*fire, |n| n.min(*fire)));
            }
        }
        next.map(|n| n.max(now))
    }

    fn finished(&self) -> bool {
        self.cursor >= self.events.len()
            && self
                .periodic
                .iter()
                .all(|(fire, _)| *fire > self.periodic_horizon)
    }

    fn label(&self) -> &str {
        "trace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_line_roundtrip() {
        let e = TraceEvent {
            timestamp: 100,
            src: NodeId::new(3),
            dst: NodeId::new(7),
            size: 8,
            period: None,
        };
        let parsed: TraceEvent = e.to_line().parse().unwrap();
        assert_eq!(parsed, e);
        let p = TraceEvent {
            period: Some(50),
            ..e
        };
        let parsed: TraceEvent = p.to_line().parse().unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!("1 2 3".parse::<TraceEvent>().is_err());
        assert!("a b c d".parse::<TraceEvent>().is_err());
        assert!("1 2 3 4 5 6".parse::<TraceEvent>().is_err());
    }

    #[test]
    fn trace_parse_skips_comments_and_sorts() {
        let text = "# a comment\n\n20 0 1 4\n10 1 0 8\n";
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[0].timestamp, 10);
        assert_eq!(trace.horizon(), 20);
        let round = Trace::parse(&trace.to_text()).unwrap();
        assert_eq!(round, trace);
    }

    #[test]
    fn split_by_source_partitions_events() {
        let trace = Trace::new(vec![
            TraceEvent {
                timestamp: 1,
                src: NodeId::new(0),
                dst: NodeId::new(1),
                size: 1,
                period: None,
            },
            TraceEvent {
                timestamp: 2,
                src: NodeId::new(1),
                dst: NodeId::new(0),
                size: 1,
                period: None,
            },
            TraceEvent {
                timestamp: 3,
                src: NodeId::new(0),
                dst: NodeId::new(2),
                size: 1,
                period: None,
            },
        ]);
        let per_node = trace.split_by_source(3);
        assert_eq!(per_node[0].len(), 2);
        assert_eq!(per_node[1].len(), 1);
        assert_eq!(per_node[2].len(), 0);
        assert_eq!(trace.flow_pairs().len(), 3);
    }

    #[test]
    fn rescale_time_divides_timestamps() {
        let trace = Trace::new(vec![TraceEvent {
            timestamp: 100,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            size: 1,
            period: None,
        }]);
        let scaled = trace.rescale_time(1, 10);
        assert_eq!(scaled.events()[0].timestamp, 10);
    }

    #[test]
    fn trace_injector_replays_on_a_network() {
        use hornet_net::config::NetworkConfig;
        use hornet_net::geometry::Geometry;
        use hornet_net::network::Network;
        use hornet_net::routing::FlowSpec;

        let trace = Trace::new(vec![
            TraceEvent {
                timestamp: 0,
                src: NodeId::new(0),
                dst: NodeId::new(3),
                size: 4,
                period: None,
            },
            TraceEvent {
                timestamp: 5,
                src: NodeId::new(0),
                dst: NodeId::new(3),
                size: 4,
                period: None,
            },
            TraceEvent {
                timestamp: 0,
                src: NodeId::new(3),
                dst: NodeId::new(0),
                size: 2,
                period: Some(20),
            },
        ]);
        let flows: Vec<FlowSpec> = trace
            .flow_pairs()
            .into_iter()
            .map(|(s, d)| FlowSpec::pair(s, d, 4))
            .collect();
        let cfg = NetworkConfig::new(Geometry::mesh2d(2, 2)).with_flows(flows);
        let mut net = Network::new(&cfg, 9).unwrap();
        for (i, t) in trace.split_by_source(4).into_iter().enumerate() {
            net.attach_agent(NodeId::from(i), Box::new(TraceInjector::new(t, 4, 60)));
        }
        assert!(net.run_to_completion(10_000));
        let stats = net.stats();
        // 2 one-shot events + periodic at cycles 0,20,40,60 = 4 -> 6 packets.
        assert_eq!(stats.delivered_packets, 6);
    }
}
