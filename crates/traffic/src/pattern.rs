//! Synthetic traffic patterns and injection processes.
//!
//! These are the standard destination patterns used throughout the NoC
//! literature (and in the paper's evaluation): transpose, bit-complement,
//! shuffle, uniform-random, hotspot, tornado and nearest-neighbour, combined
//! with Bernoulli, periodic or bursty injection processes.

use hornet_net::geometry::Geometry;
use hornet_net::ids::{Cycle, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A synthetic destination pattern.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SyntheticPattern {
    /// Destination = transpose of the source's (x, y) mesh coordinates.
    Transpose,
    /// Destination = bitwise complement of the source index (modulo the node
    /// count).
    BitComplement,
    /// Destination = source index rotated left by one bit (perfect shuffle).
    Shuffle,
    /// Destination drawn uniformly at random among all other nodes.
    UniformRandom,
    /// All traffic heads to a fixed set of hotspot nodes (e.g. memory
    /// controllers), chosen uniformly among them.
    Hotspot(Vec<NodeId>),
    /// Destination = node half-way across the mesh in both dimensions.
    Tornado,
    /// Destination = right-hand neighbour (wrapping within the row).
    NearestNeighbor,
}

impl SyntheticPattern {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SyntheticPattern::Transpose => "transpose",
            SyntheticPattern::BitComplement => "bit-complement",
            SyntheticPattern::Shuffle => "shuffle",
            SyntheticPattern::UniformRandom => "uniform",
            SyntheticPattern::Hotspot(_) => "hotspot",
            SyntheticPattern::Tornado => "tornado",
            SyntheticPattern::NearestNeighbor => "neighbor",
        }
    }

    /// Computes the destination for a packet injected at `src`.
    ///
    /// Deterministic patterns ignore the RNG; random patterns use it. The
    /// result is never equal to `src` except for degenerate single-node
    /// geometries (in which case `src` is returned).
    pub fn destination<R: Rng>(&self, src: NodeId, geometry: &Geometry, rng: &mut R) -> NodeId {
        let n = geometry.node_count();
        if n <= 1 {
            return src;
        }
        let dst = match self {
            SyntheticPattern::Transpose => {
                let (x, y, l) = geometry.coords(src).unwrap_or((src.index(), 0, 0));
                let w = geometry.width().unwrap_or(n);
                let h = geometry.height().unwrap_or(1);
                // Transpose only makes sense on square meshes; clamp otherwise.
                let (tx, ty) = (y.min(w.saturating_sub(1)), x.min(h.saturating_sub(1)));
                geometry
                    .node_at(tx, ty, l)
                    .unwrap_or_else(|| NodeId::from((src.index() + n / 2) % n))
            }
            SyntheticPattern::BitComplement => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                let mask = (1usize << bits) - 1;
                NodeId::from((!src.index() & mask) % n)
            }
            SyntheticPattern::Shuffle => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                let v = src.index();
                let rotated = ((v << 1) | (v >> (bits - 1).max(1))) & ((1usize << bits) - 1);
                NodeId::from(rotated % n)
            }
            SyntheticPattern::UniformRandom => {
                let mut d = rng.gen_range(0..n - 1);
                if d >= src.index() {
                    d += 1;
                }
                NodeId::from(d)
            }
            SyntheticPattern::Hotspot(targets) => {
                if targets.is_empty() {
                    return src;
                }
                targets[rng.gen_range(0..targets.len())]
            }
            SyntheticPattern::Tornado => {
                let (x, y, l) = geometry.coords(src).unwrap_or((src.index(), 0, 0));
                let w = geometry.width().unwrap_or(n);
                let h = geometry.height().unwrap_or(1);
                geometry
                    .node_at((x + w / 2) % w, (y + h / 2) % h.max(1), l)
                    .unwrap_or_else(|| NodeId::from((src.index() + n / 2) % n))
            }
            SyntheticPattern::NearestNeighbor => {
                let (x, y, l) = geometry.coords(src).unwrap_or((src.index(), 0, 0));
                let w = geometry.width().unwrap_or(n);
                geometry
                    .node_at((x + 1) % w, y, l)
                    .unwrap_or_else(|| NodeId::from((src.index() + 1) % n))
            }
        };
        if dst == src {
            NodeId::from((src.index() + 1) % n)
        } else {
            dst
        }
    }

    /// Enumerates every (source, destination) pair this pattern can produce,
    /// which is what the routing tables need to cover. Random patterns return
    /// the full all-to-all set; hotspot patterns return every source paired
    /// with every hotspot.
    pub fn flow_pairs(&self, geometry: &Geometry) -> Vec<(NodeId, NodeId)> {
        let n = geometry.node_count();
        match self {
            SyntheticPattern::UniformRandom => {
                let mut pairs = Vec::with_capacity(n * (n - 1));
                for s in geometry.nodes() {
                    for d in geometry.nodes() {
                        if s != d {
                            pairs.push((s, d));
                        }
                    }
                }
                pairs
            }
            SyntheticPattern::Hotspot(targets) => {
                let mut pairs = Vec::new();
                for s in geometry.nodes() {
                    for &t in targets {
                        if s != t {
                            pairs.push((s, t));
                        }
                    }
                }
                pairs
            }
            _ => {
                // Deterministic single-destination patterns.
                let mut rng = rand::rngs::mock::StepRng::new(0, 1);
                geometry
                    .nodes()
                    .map(|s| (s, self.destination(s, geometry, &mut rng)))
                    .filter(|(s, d)| s != d)
                    .collect()
            }
        }
    }
}

/// When packets are offered to the network.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Each cycle, inject a packet with the given probability.
    Bernoulli {
        /// Packets per node per cycle (0.0–1.0).
        rate: f64,
    },
    /// Inject one packet every `period` cycles, starting at `offset`.
    Periodic {
        /// Cycles between packets.
        period: Cycle,
        /// First injection cycle.
        offset: Cycle,
    },
    /// Inject `burst_len` packets back-to-back, then stay idle for `gap`
    /// cycles (the "coordinated bursts" shape of low-traffic bit-complement in
    /// Figure 7).
    Burst {
        /// Packets per burst.
        burst_len: u32,
        /// Idle cycles between bursts.
        gap: Cycle,
    },
}

impl InjectionProcess {
    /// Average offered load in packets per node per cycle.
    pub fn offered_load(&self) -> f64 {
        match self {
            InjectionProcess::Bernoulli { rate } => *rate,
            InjectionProcess::Periodic { period, .. } => {
                if *period == 0 {
                    1.0
                } else {
                    1.0 / *period as f64
                }
            }
            InjectionProcess::Burst { burst_len, gap } => {
                *burst_len as f64 / (*burst_len as f64 + *gap as f64)
            }
        }
    }

    /// Decides how many packets to inject at `now`, given the previous
    /// injection state, and returns the new state.
    pub fn injections_at<R: Rng>(&self, now: Cycle, state: &mut ProcessState, rng: &mut R) -> u32 {
        match self {
            InjectionProcess::Bernoulli { rate } => {
                if rng.gen::<f64>() < *rate {
                    1
                } else {
                    0
                }
            }
            InjectionProcess::Periodic { period, offset } => {
                if now < *offset {
                    return 0;
                }
                if *period == 0 {
                    return 1;
                }
                if (now - offset).is_multiple_of(*period) {
                    1
                } else {
                    0
                }
            }
            InjectionProcess::Burst { burst_len, gap } => {
                let cycle_len = *burst_len as u64 + *gap;
                if cycle_len == 0 {
                    return 0;
                }
                let phase = now % cycle_len;
                let _ = state;
                if phase < *burst_len as u64 {
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Earliest cycle at or after `now` at which this process will inject.
    pub fn next_injection(&self, now: Cycle) -> Option<Cycle> {
        match self {
            InjectionProcess::Bernoulli { rate } => {
                if *rate <= 0.0 {
                    None
                } else {
                    Some(now)
                }
            }
            InjectionProcess::Periodic { period, offset } => {
                if now <= *offset {
                    return Some(*offset);
                }
                if *period == 0 {
                    return Some(now);
                }
                let since = now - offset;
                let rem = since % period;
                Some(if rem == 0 { now } else { now + (period - rem) })
            }
            InjectionProcess::Burst { burst_len, gap } => {
                let cycle_len = *burst_len as u64 + *gap;
                if cycle_len == 0 || *burst_len == 0 {
                    return None;
                }
                let phase = now % cycle_len;
                Some(if phase < *burst_len as u64 {
                    now
                } else {
                    now + (cycle_len - phase)
                })
            }
        }
    }
}

/// Mutable state carried between calls to
/// [`InjectionProcess::injections_at`]. Currently only needed by stateful
/// processes added in the future; kept so the interface is stable.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessState {
    /// Packets injected so far.
    pub injected: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mesh(n: usize) -> Geometry {
        Geometry::mesh2d(n, n)
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let g = mesh(4);
        let mut rng = StdRng::seed_from_u64(0);
        // Node 1 = (1,0); transpose = (0,1) = node 4.
        assert_eq!(
            SyntheticPattern::Transpose.destination(NodeId::new(1), &g, &mut rng),
            NodeId::new(4)
        );
        // A diagonal node maps to itself; the pattern must divert it.
        let d = SyntheticPattern::Transpose.destination(NodeId::new(5), &g, &mut rng);
        assert_ne!(d, NodeId::new(5));
    }

    #[test]
    fn bit_complement_is_involutive_for_power_of_two() {
        let g = mesh(4); // 16 nodes
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..16u32 {
            let d = SyntheticPattern::BitComplement.destination(NodeId::new(i), &g, &mut rng);
            let back = SyntheticPattern::BitComplement.destination(d, &g, &mut rng);
            if d != NodeId::new(i) {
                assert_eq!(back, NodeId::new(i), "complement of complement");
            }
        }
    }

    #[test]
    fn uniform_random_never_targets_self_and_covers_nodes() {
        let g = mesh(3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let d = SyntheticPattern::UniformRandom.destination(NodeId::new(4), &g, &mut rng);
            assert_ne!(d, NodeId::new(4));
            seen.insert(d);
        }
        assert_eq!(seen.len(), 8, "all other nodes should be hit eventually");
    }

    #[test]
    fn hotspot_targets_only_hotspots() {
        let g = mesh(4);
        let mut rng = StdRng::seed_from_u64(3);
        let targets = vec![NodeId::new(0), NodeId::new(15)];
        let p = SyntheticPattern::Hotspot(targets.clone());
        for _ in 0..100 {
            let d = p.destination(NodeId::new(5), &g, &mut rng);
            assert!(targets.contains(&d));
        }
    }

    #[test]
    fn flow_pairs_cover_deterministic_patterns() {
        let g = mesh(4);
        let pairs = SyntheticPattern::Transpose.flow_pairs(&g);
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|(s, d)| s != d));
        let uni = SyntheticPattern::UniformRandom.flow_pairs(&g);
        assert_eq!(uni.len(), 16 * 15);
        let hs = SyntheticPattern::Hotspot(vec![NodeId::new(0)]).flow_pairs(&g);
        assert_eq!(hs.len(), 15);
    }

    #[test]
    fn bernoulli_rate_is_respected_statistically() {
        let p = InjectionProcess::Bernoulli { rate: 0.25 };
        let mut rng = StdRng::seed_from_u64(11);
        let mut state = ProcessState::default();
        let total: u32 = (0..10_000)
            .map(|c| p.injections_at(c, &mut state, &mut rng))
            .sum();
        assert!((2000..3000).contains(&total), "got {total}");
        assert!((p.offered_load() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn periodic_process_fires_on_schedule() {
        let p = InjectionProcess::Periodic {
            period: 10,
            offset: 5,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut state = ProcessState::default();
        let fired: Vec<Cycle> = (0..40)
            .filter(|&c| p.injections_at(c, &mut state, &mut rng) > 0)
            .collect();
        assert_eq!(fired, vec![5, 15, 25, 35]);
        assert_eq!(p.next_injection(6), Some(15));
        assert_eq!(p.next_injection(15), Some(15));
        assert_eq!(p.next_injection(0), Some(5));
    }

    #[test]
    fn burst_process_alternates_bursts_and_gaps() {
        let p = InjectionProcess::Burst {
            burst_len: 3,
            gap: 7,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut state = ProcessState::default();
        let fired: Vec<Cycle> = (0..20)
            .filter(|&c| p.injections_at(c, &mut state, &mut rng) > 0)
            .collect();
        assert_eq!(fired, vec![0, 1, 2, 10, 11, 12]);
        assert_eq!(p.next_injection(3), Some(10));
        assert!((p.offered_load() - 0.3).abs() < 1e-9);
    }
}
