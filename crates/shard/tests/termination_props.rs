//! Property tests of credit-counting termination detection.
//!
//! A model of the execution protocol: shards hold local work units, work
//! units can spawn messages to other shards (a message spends time "in
//! transit" before the destination takes it), and every shard publishes its
//! ledger — busy count, cumulative sent/recv, finished — at the end of each
//! of its steps, exactly like the runtime publishes at each negative edge
//! *before* advancing its progress counter. The detector interleaves scans at
//! arbitrary points of the schedule.
//!
//! The safety property (the acceptance criterion of the distributed
//! backend): **the detector never declares quiescence while a message is in
//! flight or a shard holds unfinished work** — a flit handed to a transport
//! keeps the credit ledger unbalanced (`Σsent ≠ Σrecv`) or its sender
//! visibly busy until the receiver has taken it. The companion liveness
//! check: once the model truly drains, a scan does declare.

use hornet_shard::termination::{scan_ledgers, LedgerState, Quiescence, ShardLedger};
use proptest::collection::vec;
use proptest::prelude::*;

const SHARDS: usize = 4;

/// The ground-truth state of the model (what the detector must never
/// misjudge).
struct Model {
    /// Work units currently held by each shard.
    busy: Vec<u64>,
    /// Messages sent to shard `dst` and not yet taken.
    transit: Vec<u64>,
    /// Cumulative per-shard counters.
    sent: Vec<u64>,
    recv: Vec<u64>,
    /// Work units each shard may still spawn spontaneously ("injections").
    injections: Vec<u64>,
    ledgers: Vec<ShardLedger>,
    published: Vec<LedgerState>,
}

impl Model {
    fn new(initial: &[u64]) -> Self {
        Self {
            busy: vec![0; SHARDS],
            transit: vec![0; SHARDS],
            sent: vec![0; SHARDS],
            recv: vec![0; SHARDS],
            injections: initial.to_vec(),
            ledgers: (0..SHARDS).map(|_| ShardLedger::new()).collect(),
            published: vec![LedgerState::default(); SHARDS],
        }
    }

    fn quiescent(&self) -> bool {
        self.busy.iter().all(|&b| b == 0)
            && self.transit.iter().all(|&t| t == 0)
            && self.injections.iter().all(|&i| i == 0)
    }

    /// One step of shard `i`: take pending messages, optionally inject, work
    /// off one unit (optionally emitting a message), then publish — the same
    /// deliver → simulate → publish-ledger → publish-progress order as the
    /// worker loop.
    fn step(&mut self, i: usize, inject: bool, emit_to: Option<usize>) {
        // Deliver everything addressed to this shard.
        if self.transit[i] > 0 {
            self.recv[i] += self.transit[i];
            self.busy[i] += self.transit[i];
            self.transit[i] = 0;
        }
        // Spontaneous injection (an agent event).
        if inject && self.injections[i] > 0 {
            self.injections[i] -= 1;
            self.busy[i] += 1;
        }
        // Work one unit off; it may cross a boundary. The message only
        // becomes receivable in a *later* step of the destination, while the
        // ledger published below already counts it — the invariant the
        // runtime guarantees by publishing at the same negedge as the push.
        if self.busy[i] > 0 {
            self.busy[i] -= 1;
            if let Some(dst) = emit_to {
                if dst != i {
                    self.sent[i] += 1;
                    self.transit[dst] += 1;
                }
            }
        }
        // Publish-on-change, like the runtime.
        let state = LedgerState {
            busy: self.busy[i],
            finished: self.injections[i] == 0,
            next_event: if self.injections[i] > 0 { 1 } else { u64::MAX },
            sent: self.sent[i],
            recv: self.recv[i],
            cycle: 0,
        };
        if state != self.published[i] {
            self.ledgers[i].publish(&state);
            self.published[i] = state;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Safety: a scan never declares quiescence while the model holds busy
    /// work, in-flight messages, or pending injections — and liveness: after
    /// a full drain the scan does declare, with balanced credits.
    #[test]
    fn detector_never_declares_quiescence_with_inflight_work(
        initial in vec(0u64..4, SHARDS..SHARDS + 1),
        ops in vec((0usize..5, 0usize..SHARDS, 0usize..SHARDS, 0usize..3), 1..250),
    ) {
        let mut model = Model::new(&initial);
        let mut declared_early = false;
        for &(kind, shard, target, flags) in &ops {
            if kind == 4 {
                // Detector scan at an arbitrary schedule point.
                if let Quiescence::Idle { finished, .. } = scan_ledgers(&model.ledgers) {
                    // The model may legitimately be quiescent here; the
                    // property is that Idle NEVER coincides with in-flight
                    // state. `finished` additionally requires drained
                    // injections everywhere.
                    prop_assert!(
                        model.busy.iter().all(|&b| b == 0)
                            && model.transit.iter().all(|&t| t == 0),
                        "declared idle with busy={:?} transit={:?}",
                        model.busy,
                        model.transit
                    );
                    if finished {
                        prop_assert!(
                            model.quiescent(),
                            "declared finished with injections={:?}",
                            model.injections
                        );
                        declared_early = true;
                    }
                }
            } else {
                let inject = flags & 1 != 0;
                let emit = (flags & 2 != 0).then_some(target);
                model.step(shard, inject, emit);
            }
        }
        let _ = declared_early;

        // Drain the model: keep stepping without emissions until nothing is
        // left, publishing along the way.
        for _ in 0..400 {
            for i in 0..SHARDS {
                model.step(i, true, None);
            }
        }
        prop_assert!(model.quiescent(), "drain failed: model stuck");
        match scan_ledgers(&model.ledgers) {
            Quiescence::Idle { finished, .. } => prop_assert!(finished, "drained but unfinished"),
            Quiescence::Active => prop_assert!(false, "drained model must scan as idle"),
        }
    }

    /// Credits alone: an unbalanced ledger vector is never quiescent, no
    /// matter what the idle flags claim.
    #[test]
    fn unbalanced_credits_always_block(
        sent in vec(0u64..100, SHARDS..SHARDS + 1),
        recv in vec(0u64..100, SHARDS..SHARDS + 1),
    ) {
        let total_sent: u64 = sent.iter().sum();
        let total_recv: u64 = recv.iter().sum();
        prop_assume!(total_sent != total_recv);
        let ledgers: Vec<ShardLedger> = (0..SHARDS).map(|_| ShardLedger::new()).collect();
        for i in 0..SHARDS {
            ledgers[i].publish(&LedgerState {
                busy: 0,
                finished: true,
                next_event: u64::MAX,
                sent: sent[i],
                recv: recv[i],
                cycle: 7,
            });
        }
        prop_assert_eq!(scan_ledgers(&ledgers), Quiescence::Active);
    }
}
