//! Property-based tests of the partitioner's invariants: every tile is
//! covered exactly once, shards are contiguous index blocks, mesh partitions
//! are row-aligned and balanced to within one row, and the reported cut set
//! is exactly the set of edges crossing shard boundaries.

use hornet_net::ids::NodeId;
use hornet_shard::Partitioner;
use proptest::prelude::*;

fn mesh_edges(w: usize, h: usize) -> Vec<(NodeId, NodeId)> {
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let id = y * w + x;
            if x + 1 < w {
                edges.push((NodeId::from(id), NodeId::from(id + 1)));
            }
            if y + 1 < h {
                edges.push((NodeId::from(id), NodeId::from(id + w)));
            }
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Mesh partitions cover every tile exactly once, in contiguous
    /// row-aligned blocks balanced to within one row.
    #[test]
    fn mesh_partition_covers_contiguously_and_balances_rows(
        width in 1usize..20,
        height in 1usize..20,
        shards in 1usize..12,
    ) {
        let p = Partitioner::new(shards).mesh(width, height);
        prop_assert!(p.shard_count() >= 1);
        prop_assert!(p.shard_count() <= shards.min(height));
        prop_assert_eq!(p.node_count(), width * height);

        // Coverage: the ranges tile 0..n contiguously, in order.
        let mut covered = 0usize;
        for s in 0..p.shard_count() {
            let r = p.range(s);
            prop_assert_eq!(r.start, covered, "shards must be contiguous");
            prop_assert!(!r.is_empty(), "no shard may be empty");
            covered = r.end;
            // Row alignment: block boundaries sit on row boundaries.
            prop_assert_eq!(r.start % width, 0);
            prop_assert_eq!(r.end % width, 0);
            // Every tile in the range maps back to this shard.
            for i in r {
                prop_assert_eq!(p.shard_of(NodeId::from(i)), s);
            }
        }
        prop_assert_eq!(covered, width * height, "every tile exactly once");

        // Balance: shard heights (in rows) differ by at most one.
        let rows: Vec<usize> = (0..p.shard_count()).map(|s| p.tiles(s) / width).collect();
        let max = rows.iter().max().unwrap();
        let min = rows.iter().min().unwrap();
        prop_assert!(max - min <= 1, "row balance violated: {:?}", rows);
    }

    /// The reported cut set is exactly the set of mesh links that cross a
    /// shard boundary; for a row-aligned partition that is `width` links per
    /// boundary, the minimum any contiguous partition can achieve.
    #[test]
    fn mesh_cut_set_is_exact_and_minimal(
        width in 1usize..16,
        height in 2usize..16,
        shards in 2usize..8,
    ) {
        let p = Partitioner::new(shards).mesh(width, height);
        let edges = mesh_edges(width, height);
        let cuts = p.cut_links(edges.iter().copied());
        for &(a, b) in &cuts {
            prop_assert!(p.shard_of(a) != p.shard_of(b), "cut link must cross shards");
        }
        let crossing = edges
            .iter()
            .filter(|&&(a, b)| p.shard_of(a) != p.shard_of(b))
            .count();
        prop_assert_eq!(cuts.len(), crossing, "cut set must be exhaustive");
        // Row-aligned blocks: one boundary per adjacent shard pair, each
        // cutting exactly `width` vertical links.
        prop_assert_eq!(cuts.len(), (p.shard_count() - 1) * width);
    }

    /// Linear partitions cover every tile exactly once in contiguous blocks
    /// balanced to within one tile.
    #[test]
    fn linear_partition_covers_contiguously_and_balances_tiles(
        nodes in 1usize..200,
        shards in 1usize..17,
    ) {
        let p = Partitioner::new(shards).linear(nodes);
        prop_assert_eq!(p.node_count(), nodes);
        let mut covered = 0usize;
        let mut sizes = Vec::new();
        for s in 0..p.shard_count() {
            let r = p.range(s);
            prop_assert_eq!(r.start, covered);
            prop_assert!(!r.is_empty());
            sizes.push(r.len());
            covered = r.end;
        }
        prop_assert_eq!(covered, nodes);
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }
}
