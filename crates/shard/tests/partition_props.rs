//! Property-based tests of the partitioner's invariants: every tile is
//! covered exactly once, bands are aligned to complete rows or columns, the
//! orientation is the one with the smaller cut set, and the reported cut set
//! is exactly the set of edges crossing shard boundaries.

use hornet_net::ids::NodeId;
use hornet_shard::{CutOrientation, Partitioner};
use proptest::prelude::*;

fn mesh_edges(w: usize, h: usize) -> Vec<(NodeId, NodeId)> {
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let id = y * w + x;
            if x + 1 < w {
                edges.push((NodeId::from(id), NodeId::from(id + 1)));
            }
            if y + 1 < h {
                edges.push((NodeId::from(id), NodeId::from(id + w)));
            }
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Mesh partitions cover every tile exactly once in band-aligned shards
    /// balanced to within one row/column, along the cheaper cut axis.
    #[test]
    fn mesh_partition_covers_bands_and_balances(
        width in 1usize..20,
        height in 1usize..20,
        shards in 1usize..12,
    ) {
        let p = Partitioner::new(shards).mesh(width, height);
        prop_assert!(p.shard_count() >= 1);
        prop_assert_eq!(p.node_count(), width * height);

        // Orientation: boundaries run along the axis with the cheaper cut.
        let expect = if width > height { CutOrientation::Columns } else { CutOrientation::Rows };
        prop_assert_eq!(p.orientation(), expect);
        let bands = match p.orientation() {
            CutOrientation::Rows => height,
            CutOrientation::Columns => width,
        };
        prop_assert!(p.shard_count() <= shards.min(bands));
        let span = width * height / bands; // tiles per band

        // Coverage: every tile in exactly one shard; members sorted.
        let mut owner = vec![usize::MAX; width * height];
        for s in 0..p.shard_count() {
            prop_assert!(!p.members(s).is_empty(), "no shard may be empty");
            prop_assert!(p.members(s).windows(2).all(|w| w[0] < w[1]), "members sorted");
            for &i in p.members(s) {
                prop_assert_eq!(owner[i], usize::MAX, "tile {} assigned twice", i);
                owner[i] = s;
                prop_assert_eq!(p.shard_of(NodeId::from(i)), s);
            }
        }
        prop_assert!(owner.iter().all(|&s| s != usize::MAX), "every tile covered");

        // Band alignment: a shard owns complete rows (or columns) only.
        for s in 0..p.shard_count() {
            for &i in p.members(s) {
                let (x, y) = (i % width, i / width);
                let band = match p.orientation() {
                    CutOrientation::Rows => y,
                    CutOrientation::Columns => x,
                };
                // Every tile in the same band lands in the same shard.
                let probe = match p.orientation() {
                    CutOrientation::Rows => band * width,      // first tile of row
                    CutOrientation::Columns => band,           // first tile of column
                };
                prop_assert_eq!(p.shard_of(NodeId::from(probe)), s);
            }
        }

        // Balance: shard band counts differ by at most one.
        let sizes: Vec<usize> = (0..p.shard_count()).map(|s| p.tiles(s) / span).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1, "band balance violated: {:?}", sizes);
    }

    /// The reported cut set is exactly the set of mesh links that cross a
    /// shard boundary: one boundary per adjacent shard pair, each cutting
    /// `min(width, height)` links — the minimum any band partition can
    /// achieve, and never more than the forced-row alternative.
    #[test]
    fn mesh_cut_set_is_exact_and_minimal(
        width in 1usize..16,
        height in 2usize..16,
        shards in 2usize..8,
    ) {
        let p = Partitioner::new(shards).mesh(width, height);
        let edges = mesh_edges(width, height);
        let cuts = p.cut_links(edges.iter().copied());
        for &(a, b) in &cuts {
            prop_assert!(p.shard_of(a) != p.shard_of(b), "cut link must cross shards");
        }
        let crossing = edges
            .iter()
            .filter(|&&(a, b)| p.shard_of(a) != p.shard_of(b))
            .count();
        prop_assert_eq!(cuts.len(), crossing, "cut set must be exhaustive");
        // Band partition: one boundary per adjacent shard pair, each cutting
        // exactly `span` links where span is the cheaper axis.
        let span = if width > height { height } else { width };
        prop_assert_eq!(cuts.len(), (p.shard_count() - 1) * span);
        // At equal shard counts the automatic orientation never cuts more
        // than forced rows. (With more shards than rows the row orientation
        // clamps to fewer shards, which trades parallelism for cut size — not
        // a comparison of orientations.)
        let forced = Partitioner::new(shards).mesh_oriented(width, height, CutOrientation::Rows);
        if forced.shard_count() == p.shard_count() {
            prop_assert!(cuts.len() <= forced.cut_links(edges.iter().copied()).len());
        }
    }

    /// Linear partitions cover every tile exactly once in contiguous blocks
    /// balanced to within one tile.
    #[test]
    fn linear_partition_covers_contiguously_and_balances_tiles(
        nodes in 1usize..200,
        shards in 1usize..17,
    ) {
        let p = Partitioner::new(shards).linear(nodes);
        prop_assert_eq!(p.node_count(), nodes);
        let mut covered = 0usize;
        let mut sizes = Vec::new();
        for s in 0..p.shard_count() {
            let m = p.members(s);
            prop_assert!(!m.is_empty());
            prop_assert_eq!(m[0], covered);
            prop_assert!(m.windows(2).all(|w| w[1] == w[0] + 1), "contiguous");
            sizes.push(m.len());
            covered = m.last().unwrap() + 1;
        }
        prop_assert_eq!(covered, nodes);
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }
}
