//! The unified per-cycle shard protocol: one `CycleDriver` shared by every
//! execution backend.
//!
//! Before this module existed, the per-cycle shard protocol — strict
//! flit/credit limits, fast-forward skip handling, slack waits, ledger
//! publish-on-change, end-of-run flush — was written out twice: once in the
//! thread runtime (`crate::runtime`) and once in the distributed worker
//! (`hornet-dist`). A protocol fix could land in one backend only. The
//! [`CycleDriver`] owns the whole protocol exactly once, parameterized by two
//! small traits:
//!
//! * [`TransportPump`] — how progress, flits and credits move between this
//!   shard and its neighbors: shared atomics and SPSC rings for the thread
//!   backend, shared-memory segments or socket frames for the distributed
//!   backend. The pump's contract is the same one `hornet-dist` documents:
//!   *everything a shard emitted up to and including its negedge of cycle `c`
//!   is visible to a peer before that peer observes progress ≥ `c`.*
//! * [`PayloadChannel`] — how packet *payloads* (the DMA side of the flit
//!   model) follow their tail flits across a shard boundary. Same-process
//!   backends share one [`PayloadStore`] and the channel is a no-op
//!   ([`PayloadChannel::shared`] returns `true`); multi-process transports
//!   claim a packet's payload when its tail flit is drained to the wire and
//!   re-deposit it on arrival, so memory-hierarchy and CPU workloads run
//!   under `hornet-dist` bit-identically to sequential simulation.
//!
//! Both backends are now thin hosts: they wire boundaries, build their pump,
//! and call [`CycleDriver::run`].

use crate::termination::{LedgerState, ShardLedger};
use hornet_net::boundary::{BoundaryLink, BoundaryRx};
use hornet_net::flit::Packet;
use hornet_net::ids::{Cycle, PacketId};
use hornet_net::kernel::{KernelMode, MeshKernel};
use hornet_net::network::NetworkNode;
use hornet_net::payload::PayloadStore;
use hornet_net::stats::NetworkStats;
use hornet_obs::metrics::{MetricsRegistry, TelemetrySample};
use hornet_obs::olog_warn;
use hornet_obs::profile::StallProfile;
use hornet_obs::trace::{TraceEvent, TraceKind, TraceRing};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How packet payloads cross (or don't cross) a shard boundary.
///
/// The cycle-level network model moves flits, which carry timing but not bulk
/// data; the payload rides out of band (HORNET's DMA model). Within one
/// process every bridge shares one [`PayloadStore`], so nothing needs to
/// move. Between processes the transport pump claims the payload when the
/// packet's tail flit is drained to the wire and deposits it into the
/// receiving process's store before the tail flit becomes visible there —
/// hop by hop, so multi-shard routes forward payloads transparently.
pub trait PayloadChannel: Send + Sync {
    /// Takes the locally parked packet for `id`, if present (sender side,
    /// called when a tail flit leaves for another process).
    fn claim(&self, id: PacketId) -> Option<Packet>;

    /// Parks an arrived packet so the destination bridge can claim it
    /// (receiver side, called before the tail flit is made visible).
    fn deposit(&self, packet: Packet);

    /// `true` when both endpoints share the backing store — payloads need
    /// not (and must not) be moved by the transport.
    fn shared(&self) -> bool;

    /// Checkpoint capture: every packet currently parked in this process's
    /// store, in canonical (packet-id) order. Channels whose store is shared
    /// across shards return nothing — the host snapshots such stores once,
    /// not per shard.
    fn parked(&self) -> Vec<Packet> {
        Vec::new()
    }
}

/// The payload channel of backends whose shards share one address space:
/// payloads already live in the shared store, so the channel does nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoPayloads;

impl PayloadChannel for NoPayloads {
    fn claim(&self, _id: PacketId) -> Option<Packet> {
        None
    }
    fn deposit(&self, _packet: Packet) {}
    fn shared(&self) -> bool {
        true
    }
}

/// A [`PayloadChannel`] backed by a process's [`PayloadStore`].
#[derive(Clone)]
pub struct PayloadEndpoint {
    store: Arc<PayloadStore>,
    remote: bool,
}

impl PayloadEndpoint {
    /// Endpoint for shards sharing this store (thread backend): the
    /// transport leaves payloads alone.
    pub fn shared(store: Arc<PayloadStore>) -> Self {
        Self {
            store,
            remote: false,
        }
    }

    /// Endpoint for a process-local store whose peers live elsewhere: the
    /// transport must carry payloads over the wire.
    pub fn remote(store: Arc<PayloadStore>) -> Self {
        Self {
            store,
            remote: true,
        }
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<PayloadStore> {
        &self.store
    }
}

impl PayloadChannel for PayloadEndpoint {
    fn claim(&self, id: PacketId) -> Option<Packet> {
        self.store.claim(id)
    }
    fn deposit(&self, packet: Packet) {
        self.store.deposit(packet);
    }
    fn shared(&self) -> bool {
        !self.remote
    }
    fn parked(&self) -> Vec<Packet> {
        if self.remote {
            self.store.snapshot_packets()
        } else {
            Vec::new()
        }
    }
}

/// How one shard's data plane reaches its neighbors. One implementation per
/// backend; the driver is generic over it.
pub trait TransportPump {
    /// Non-blocking check: `true` when every neighbor's published negedge
    /// progress has reached `floor`. The driver owns the wait loop (backoff,
    /// stop polling, periodic ingestion) around this.
    fn peers_reached(&self, floor: Cycle) -> bool;

    /// Moves everything peers have made visible into the local staging rings
    /// (and deposits any arrived payloads). No-op for backends whose rings
    /// are shared directly.
    fn ingest(&mut self, _payloads: &dyn PayloadChannel) {}

    /// Called after the local negedge of `cycle`: make every staged outbound
    /// flit, credit and payload visible to the peers, then publish `cycle`
    /// as this side's progress. `flush` forces buffered wire traffic out
    /// (transports may otherwise coalesce several cycles per write under
    /// loose synchronization).
    fn pump(&mut self, cycle: Cycle, payloads: &dyn PayloadChannel, flush: bool) -> io::Result<()>;

    /// Posedge phase publication and, where cut links carry
    /// bandwidth-adaptive bidirectional links, the matching wait. Returns
    /// `false` if the stop flag unwound the wait.
    fn posedge_sync(&mut self, _cycle: Cycle, _stop: &AtomicBool) -> bool {
        true
    }

    /// Rendezvous at a quantum boundary (the thread backend's
    /// `barrier_batches` re-zeroing). Returns `false` on stop.
    fn batch_rendezvous(&mut self, _cycle: Cycle, _stop: &AtomicBool) -> bool {
        true
    }

    /// Progress publication after a fast-forward jump to `target` (both
    /// clock edges are considered complete up to `target`).
    fn publish_jump(&mut self, target: Cycle, payloads: &dyn PayloadChannel) -> io::Result<()>;

    /// A short diagnostic of peer progress for stall reports.
    fn stall_report(&self) -> String {
        String::new()
    }
}

/// Where the driver persists periodic checkpoints.
///
/// The driver captures the shard's complete resumable state (see
/// [`crate::snapshot`]) at every rendezvous cycle that is a multiple of
/// [`DriverParams::checkpoint_every`] and hands the serialized bytes here.
/// The sink decides what durability means: keep the latest in memory, write
/// a cycle-stamped file, or ship the bytes to a coordinator.
pub trait CheckpointSink {
    /// Persists the checkpoint taken at `cycle`. An error aborts the run
    /// (a shard that cannot persist its state must not outrun its last
    /// recoverable cycle indefinitely).
    fn checkpoint(&mut self, cycle: Cycle, state: &[u8]) -> io::Result<()>;
}

/// Where the driver publishes periodic [`TelemetrySample`]s.
///
/// The driver samples at batch rendezvous points (never mid-cycle), so a
/// sink observes a consistent shard state. The thread backend collects
/// samples in memory; the distributed worker ships them to the coordinator
/// as control-plane messages.
pub trait TelemetrySink {
    /// Absorbs one sample. Failures are the sink's problem — telemetry must
    /// never abort a run.
    fn emit(&mut self, sample: &TelemetrySample);
}

/// The trivial sink: keep every sample.
impl TelemetrySink for Vec<TelemetrySample> {
    fn emit(&mut self, sample: &TelemetrySample) {
        self.push(sample.clone());
    }
}

/// How the driver's wait loop backs off while a neighbor lags.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WaitProfile {
    /// Spin-then-yield: shard workers share one process and one scheduler,
    /// and the wait is typically a cycle's worth of work (thread backend).
    Spin,
    /// Escalate to sleeps: peers are whole processes that need the CPU this
    /// loop would otherwise burn (multi-process backends).
    Sleep,
}

/// Per-run parameters of the unified protocol.
#[derive(Copy, Clone, Debug)]
pub struct DriverParams {
    /// First cycle already completed (the run simulates
    /// `start+1 ..= start+cycles`).
    pub start: Cycle,
    /// Number of cycles to simulate.
    pub cycles: Cycle,
    /// Maximum cycles this shard may run ahead of its neighbors.
    pub slack: u64,
    /// Cycles between drift checks (batch size; 1 = check every cycle).
    pub quantum: u64,
    /// Consume mailbox flits/credits strictly by cycle stamp (bit-exact
    /// reproduction of the sequential schedule).
    pub strict: bool,
    /// Publish termination ledgers and honor skip directives (a detector is
    /// watching: fast-forward or completion detection is on).
    pub track_ledger: bool,
    /// Compute next-event info for fast-forward.
    pub fast_forward: bool,
    /// Wait-loop backoff profile.
    pub wait: WaitProfile,
    /// Capture a checkpoint at every rendezvous cycle that is a multiple of
    /// this period (requires `strict` and a [`CycleDriver::checkpoint`]
    /// sink; ignored otherwise). `None` disables checkpointing.
    pub checkpoint_every: Option<u64>,
    /// Initial value of the cumulative mailbox-delivery counter: 0 for a
    /// fresh run, the checkpointed `received` when resuming, so ledger
    /// credit accounting continues seamlessly across a restore.
    pub received_start: u64,
    /// Attribute wall time to compute / slack-wait / ingest / flush phases
    /// (a handful of monotonic-clock reads per cycle; off by default so the
    /// hot path stays untouched).
    pub profile: bool,
    /// Emit a [`TelemetrySample`] to the [`CycleDriver::telemetry`] sink
    /// roughly every this many cycles (checked at batch boundaries, so the
    /// actual period is rounded up to the quantum). `None` disables sampling.
    pub telemetry_every: Option<u64>,
    /// Cycle-execution strategy: interpreter, compiled kernel, or
    /// auto-detection. The kernel is compiled per run (after boundary wiring,
    /// so cut links are seen as boundary channels) and is bit-identical to
    /// the interpreter; ineligible configurations silently interpret.
    pub kernel: KernelMode,
}

/// What one driven run reports back to its host.
#[derive(Copy, Clone, Debug)]
pub struct DriveOutcome {
    /// The cycle the shard stopped at.
    pub final_now: Cycle,
    /// Total flits moved from boundary mailboxes into ingress buffers.
    pub received: u64,
    /// Flits still buffered or pending anywhere in the shard at the end of
    /// the run — the ledger's `busy` term, reported here so hosts judge
    /// completion with the *same* definition the detector used.
    pub busy: u64,
    /// Wall-time attribution of the run (all zeros unless
    /// [`DriverParams::profile`] was set).
    pub profile: StallProfile,
}

/// One shard's execution state, borrowed from the host for the duration of a
/// run. The driver owns the *protocol*; the host owns wiring and results.
pub struct CycleDriver<'a, 'c, T: TransportPump + ?Sized> {
    /// Shard index (diagnostics only).
    pub shard: usize,
    /// The shard's tiles.
    pub tiles: &'a mut [NetworkNode],
    /// Sender-side boundary halves whose credits this shard applies.
    pub outbound: &'a [Arc<BoundaryLink>],
    /// Receiver endpoints of the boundary links feeding this shard.
    pub inbound: &'a mut [BoundaryRx],
    /// The backend's transport pump.
    pub transport: &'a mut T,
    /// The backend's payload channel.
    pub payloads: &'a dyn PayloadChannel,
    /// Stop directive (completion declared, peer lost, or panic unwind).
    pub stop: &'a AtomicBool,
    /// Monotone fast-forward target published by the detector.
    pub skip_to: &'a AtomicU64,
    /// This shard's published termination ledger.
    pub ledger: &'a ShardLedger,
    /// Destination of periodic checkpoints (`None` disables them even when
    /// [`DriverParams::checkpoint_every`] is set). Carries its own lifetime
    /// so a sink borrowed for longer than the shard state can be supplied.
    pub checkpoint: Option<&'c mut dyn CheckpointSink>,
    /// Destination of periodic telemetry samples (`None` disables sampling
    /// even when [`DriverParams::telemetry_every`] is set).
    pub telemetry: Option<&'c mut dyn TelemetrySink>,
    /// Host-owned metrics registry whose current values ride along in every
    /// telemetry sample; the driver also folds its own batch wait times into
    /// a `batch_wait_ns` histogram here.
    pub metrics: Option<&'a MetricsRegistry>,
    /// Shard-level runtime event ring (slack waits, checkpoint captures).
    /// Flit-lifecycle events live in the per-tile rings instead, so this
    /// ring's contents are backend-specific and excluded from bit-identity
    /// comparisons.
    pub tracer: Option<&'a mut TraceRing>,
}

impl<T: TransportPump + ?Sized> CycleDriver<'_, '_, T> {
    /// Flits buffered or pending anywhere in this shard (the ledger's `busy`
    /// term): router buffers, non-idle tiles, and in-flight mailbox flits.
    fn busy_now(&self) -> u64 {
        self.tiles
            .iter()
            .map(|t| t.buffered_flits() as u64 + u64::from(!t.is_idle()))
            .sum::<u64>()
            + self
                .inbound
                .iter()
                .map(|rx| rx.in_flight() as u64)
                .sum::<u64>()
    }

    fn ledger_state(&self, cycle: Cycle, recv_total: u64, fast_forward: bool) -> LedgerState {
        LedgerState {
            busy: self.busy_now(),
            finished: self.tiles.iter().all(NetworkNode::finished),
            next_event: if fast_forward {
                self.tiles
                    .iter()
                    .filter_map(|t| t.next_event(cycle))
                    .min()
                    .unwrap_or(u64::MAX)
            } else {
                u64::MAX
            },
            sent: self.outbound.iter().map(|l| l.flits_pushed()).sum(),
            recv: recv_total,
            cycle,
        }
    }

    /// Spins until every neighbor reaches `floor` or the stop flag is
    /// raised (returns `false` then, so the caller can unwind). While
    /// parked, periodically ingests inbound wire traffic and — in loose
    /// modes — folds returned credits, so a peer blocked on a full ring can
    /// always make progress (no transport-level deadlock).
    fn wait_peers(&mut self, floor: Cycle, p: &DriverParams) -> bool {
        let mut spins: u64 = 0;
        let mut reported = false;
        while !self.transport.peers_reached(floor) {
            if self.stop.load(Ordering::Acquire) {
                return false;
            }
            spins = spins.wrapping_add(1);
            match p.wait {
                WaitProfile::Spin => {
                    if spins.is_multiple_of(128) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                WaitProfile::Sleep => {
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else if spins < 256 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros((spins - 255).min(20) * 10));
                    }
                }
            }
            if spins.is_multiple_of(512) {
                self.transport.ingest(self.payloads);
                if !p.strict {
                    for link in self.outbound {
                        link.apply_credits(None);
                    }
                }
            }
            if spins > 40_000 && !reported && p.wait == WaitProfile::Sleep {
                // Several seconds without peer progress: likely a stall;
                // report once (diagnostics only, normal runs never hit it).
                reported = true;
                olog_warn!(
                    "driver",
                    { shard = self.shard, floor = floor },
                    "stalled waiting for peers: {}",
                    self.transport.stall_report()
                );
            }
        }
        true
    }

    /// Runs the shard protocol for `p.cycles` cycles: strict flit/credit
    /// limits, skip handling, slack waits, ledger publish-on-change and the
    /// end-of-run flush of buffered wire traffic. The host flushes leftover
    /// mailbox flits and merges statistics afterwards.
    pub fn run(mut self, p: &DriverParams) -> io::Result<DriveOutcome> {
        let end = p.start + p.cycles;
        // Compiled per run: boundary wiring is done by now, and dropping the
        // kernel at the end keeps it strictly derived state (the next run —
        // possibly after a restore — recompiles from the tiles, all-dirty).
        let mut kernel = if p.kernel.enabled() {
            MeshKernel::compile(self.tiles, false)
        } else {
            None
        };
        let quantum = p.quantum.max(1);
        let mut now = p.start;
        let mut recv_total = p.received_start;
        let mut last_published = LedgerState::default();
        let mut published_once = false;
        let mut profile = StallProfile::default();
        let mut mark = Instant::now();
        let mut last_sample = p.start;
        // Slack waits are observed (timed / traced / histogrammed) only when
        // someone is listening; otherwise the wait loop runs untouched.
        let observe_wait = p.profile || self.tracer.is_some() || self.metrics.is_some();

        'run: while now < end {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let batch_end = (now + quantum).min(end);
            let floor = now.saturating_sub(p.slack);
            if p.profile {
                profile.compute_ns += lap(&mut mark);
            }
            let wait_t0 = observe_wait.then(Instant::now);
            let waited = observe_wait && !self.transport.peers_reached(floor);
            if waited {
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.record(TraceEvent {
                        cycle: now,
                        node: self.shard as u32,
                        kind: TraceKind::SlackWaitBegin,
                        a: floor,
                        b: 0,
                    });
                }
            }
            // Drift gate at the batch boundary: neighbors must have finished
            // the negative edge of `now - slack` before we simulate `now+1`.
            if !self.wait_peers(floor, p) {
                break;
            }
            let waited_ns = wait_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
            if p.profile {
                profile.wait_ns += lap(&mut mark);
            }
            if waited {
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.record(TraceEvent {
                        cycle: now,
                        node: self.shard as u32,
                        kind: TraceKind::SlackWaitEnd,
                        a: waited_ns,
                        b: floor,
                    });
                }
            }
            if let Some(m) = self.metrics {
                m.histogram("batch_wait_ns").record(waited_ns);
            }
            self.transport.ingest(self.payloads);
            if p.profile {
                profile.ingest_ns += lap(&mut mark);
            }
            // Rendezvous checkpoint. Capture happens after the drift gate and
            // ingestion: with `slack = 0` every peer has finished cycle `now`
            // and its emissions for it have been ingested, so the stamp
            // filters in `snapshot_shard` see a consistent global cut (see
            // `crate::snapshot` for the argument). Strict mode only: loose
            // schedules are not bit-reproducible, so a checkpoint of one
            // cannot promise an identical resumed run.
            if let (Some(every), Some(sink)) = (p.checkpoint_every, self.checkpoint.as_deref_mut())
            {
                if p.strict && now > p.start && every > 0 && now.is_multiple_of(every) {
                    let bytes = crate::snapshot::snapshot_shard(
                        now,
                        recv_total,
                        self.tiles,
                        self.outbound,
                        self.inbound,
                        self.payloads,
                    );
                    let size = bytes.len() as u64;
                    sink.checkpoint(now, &bytes)?;
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.record(TraceEvent {
                            cycle: now,
                            node: self.shard as u32,
                            kind: TraceKind::CheckpointCapture,
                            a: size,
                            b: 0,
                        });
                    }
                    if p.profile {
                        profile.flush_ns += lap(&mut mark);
                    }
                }
            }
            while now < batch_end {
                if self.stop.load(Ordering::Acquire) {
                    break 'run;
                }
                // Fast-forward directive: the detector proved the whole
                // system idle with balanced credits up to (at least) `skip`,
                // so jumping every clock forward is safe regardless of which
                // cycle each shard currently sits at.
                if p.track_ledger {
                    let skip = self.skip_to.load(Ordering::Acquire);
                    if skip > now {
                        let target = skip.min(end);
                        let skipped = target - now;
                        for tile in self.tiles.iter_mut() {
                            tile.set_cycle(target);
                            tile.router_mut().stats_mut().fast_forwarded_cycles += skipped;
                        }
                        now = target;
                        self.transport.publish_jump(now, self.payloads)?;
                        continue 'run;
                    }
                }
                let next = now + 1;
                // Drain boundary mailboxes. Strict mode consumes exactly the
                // prefix the sequential schedule would have made visible by
                // this cycle; loose modes take everything available.
                let (flit_limit, credit_limit) = if p.strict {
                    (Some(next), Some(next - 1))
                } else {
                    (None, None)
                };
                for link in self.outbound {
                    link.apply_credits(credit_limit);
                }
                for rx in self.inbound.iter_mut() {
                    let delivered = rx.deliver(flit_limit);
                    recv_total += delivered as u64;
                    if delivered > 0 {
                        if let Some(k) = kernel.as_mut() {
                            k.note_external_push(rx.target());
                        }
                    }
                }
                if let Some(k) = kernel.as_mut() {
                    k.posedge(self.tiles, next);
                } else {
                    for tile in self.tiles.iter_mut() {
                        tile.posedge(next);
                    }
                }
                // Bandwidth-adaptive links publish demand at the negative
                // edge into a single shared slot; backends whose cut links
                // carry them hold the negedge until the neighbors' posedges
                // have read the previous value.
                if p.profile {
                    profile.compute_ns += lap(&mut mark);
                }
                if !self.transport.posedge_sync(next, self.stop) {
                    break 'run;
                }
                if p.profile {
                    profile.wait_ns += lap(&mut mark);
                }
                if let Some(k) = kernel.as_mut() {
                    k.negedge(self.tiles, next);
                } else {
                    for tile in self.tiles.iter_mut() {
                        tile.negedge(next);
                    }
                }
                for rx in self.inbound.iter_mut() {
                    rx.emit_credits(next);
                }
                if p.track_ledger {
                    // Publish the termination ledger *before* advancing the
                    // progress counter: when a neighbor (or the detector)
                    // sees this cycle as complete, the ledger already
                    // accounts for every flit it pushed or delivered.
                    let state = self.ledger_state(next, recv_total, p.fast_forward);
                    // Idle shards burning cycles republish only when the
                    // content changes (`cycle` is deliberately excluded from
                    // the comparison), so the detector's two-wave version
                    // check can converge.
                    let changed = !published_once
                        || LedgerState {
                            cycle: last_published.cycle,
                            ..state
                        } != last_published;
                    if changed {
                        self.ledger.publish(&state);
                        last_published = state;
                        published_once = true;
                    }
                }
                // Pump publishes progress = `next` after the ledger.
                if p.profile {
                    profile.compute_ns += lap(&mut mark);
                }
                self.transport.pump(next, self.payloads, next == end)?;
                if p.profile {
                    profile.flush_ns += lap(&mut mark);
                }
                now = next;
            }
            if !self
                .transport
                .batch_rendezvous(batch_end.min(now), self.stop)
            {
                // Stop raised mid-rendezvous: unwind.
                break;
            }
            if p.profile {
                profile.wait_ns += lap(&mut mark);
            }
            // Telemetry at the batch boundary: the shard is at a consistent
            // rendezvous point and the period rounds up to the quantum.
            if let Some(every) = p.telemetry_every {
                if self.telemetry.is_some() && every > 0 && now.saturating_sub(last_sample) >= every
                {
                    last_sample = now;
                    self.emit_sample(now, recv_total, &profile);
                    if p.profile {
                        profile.flush_ns += lap(&mut mark);
                    }
                }
            }
        }

        // Flush buffered wire traffic (batched socket frames) so peers still
        // draining our final cycles observe them; ignore errors — a peer that
        // already exited has nothing left to wait on.
        let _ = self.transport.pump(now, self.payloads, true);
        if p.profile {
            profile.flush_ns += lap(&mut mark);
        }

        // Terminal telemetry sample so a live stream always ends at the
        // shard's final cycle.
        if p.telemetry_every.is_some() && self.telemetry.is_some() && now > last_sample {
            self.emit_sample(now, recv_total, &profile);
        }

        // Terminal ledger so late detector probes see the final state.
        if p.track_ledger {
            let state = self.ledger_state(now, recv_total, false);
            let changed = !published_once
                || LedgerState {
                    cycle: last_published.cycle,
                    ..state
                } != last_published;
            if changed {
                self.ledger.publish(&state);
            }
        }

        Ok(DriveOutcome {
            final_now: now,
            received: recv_total,
            busy: self.busy_now(),
            profile,
        })
    }

    /// Builds one telemetry sample from the shard's current state and hands
    /// it to the sink.
    fn emit_sample(&mut self, cycle: Cycle, recv_total: u64, profile: &StallProfile) {
        if let Some(m) = self.metrics {
            m.gauge("cycle").set(cycle);
        }
        let mut stats = NetworkStats::new();
        for tile in self.tiles.iter() {
            stats.merge(tile.stats());
        }
        let mut metrics = self
            .metrics
            .map(MetricsRegistry::sample)
            .unwrap_or_default();
        // The merged packet-latency histogram rides along flattened in the
        // registry convention (`_count` + sparse `_b<i>`), so coordinators
        // can merge shards and estimate quantiles without a wire-format
        // change.
        if !stats.latency_histogram.is_empty() {
            metrics.push((
                "packet_latency_count".to_string(),
                stats.latency_histogram.iter().sum(),
            ));
            for (i, &b) in stats.latency_histogram.iter().enumerate() {
                if b != 0 {
                    metrics.push((format!("packet_latency_b{i}"), b));
                }
            }
        }
        // Trace truncation as a metric: the sum of runtime-ring and per-tile
        // ring drops so far, alertable the moment it goes nonzero.
        let trace_dropped = self.tracer.as_deref().map_or(0, TraceRing::dropped)
            + self
                .tiles
                .iter()
                .filter_map(|t| t.tracer())
                .map(TraceRing::dropped)
                .sum::<u64>();
        metrics.push(("trace_dropped".to_string(), trace_dropped));
        let sample = TelemetrySample {
            shard: self.shard as u32,
            cycle,
            received: recv_total,
            busy: self.busy_now(),
            delivered_packets: stats.delivered_packets,
            delivered_flits: stats.delivered_flits,
            injected_flits: stats.injected_flits,
            buffered_flits: self.tiles.iter().map(|t| t.buffered_flits() as u64).sum(),
            profile: *profile,
            metrics,
        };
        if let Some(sink) = self.telemetry.as_deref_mut() {
            sink.emit(&sample);
        }
    }
}

/// Nanoseconds since `mark`; resets `mark` to now (phase-attribution chain:
/// every span between consecutive laps lands in exactly one bucket).
#[inline]
fn lap(mark: &mut Instant) -> u64 {
    let now = Instant::now();
    let ns = now.duration_since(*mark).as_nanos() as u64;
    *mark = now;
    ns
}

/// Merges the statistics of a driven shard's tiles (hosts report these).
pub fn merge_tile_stats(tiles: &[NetworkNode]) -> NetworkStats {
    let mut stats = NetworkStats::new();
    for tile in tiles {
        stats.merge(tile.stats());
    }
    stats
}
