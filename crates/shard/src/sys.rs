//! Minimal raw Linux syscall shims.
//!
//! The build image has no `libc` crate, so the two OS facilities the
//! execution runtimes need — pinning a worker thread to a core and mapping a
//! file as shared memory for the co-located-process transport — are issued as
//! raw syscalls via inline assembly on Linux x86_64/aarch64. Everywhere else
//! they degrade gracefully: pinning becomes a no-op and shared mappings are
//! reported as unavailable (callers fall back to the socket transport).

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use std::arch::asm;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const MMAP: usize = 9;
        pub const MUNMAP: usize = 11;
        pub const SCHED_SETAFFINITY: usize = 203;
        pub const SCHED_GETAFFINITY: usize = 204;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const MMAP: usize = 222;
        pub const MUNMAP: usize = 215;
        pub const SCHED_SETAFFINITY: usize = 122;
        pub const SCHED_GETAFFINITY: usize = 123;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            asm!(
                "svc 0",
                inlateout("x0") a as isize => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                in("x8") nr,
                options(nostack)
            );
        }
        ret
    }

    /// The CPUs the calling thread may currently run on (its cpuset /
    /// affinity mask), in ascending order. Empty on failure.
    pub fn allowed_cpus() -> Vec<usize> {
        let mut mask = [0u64; 16];
        let ret = unsafe {
            syscall6(
                nr::SCHED_GETAFFINITY,
                0, // current thread
                std::mem::size_of_val(&mask),
                mask.as_mut_ptr() as usize,
                0,
                0,
                0,
            )
        };
        if ret < 0 {
            return Vec::new();
        }
        let mut cpus = Vec::new();
        for (word, bits) in mask.iter().enumerate() {
            for bit in 0..64 {
                if bits & (1u64 << bit) != 0 {
                    cpus.push(word * 64 + bit);
                }
            }
        }
        cpus
    }

    /// Sets the calling thread's affinity to exactly `cpus`. Returns `true`
    /// on success (used to restore a saved mask after pinning).
    pub fn set_affinity(cpus: &[usize]) -> bool {
        let mut mask = [0u64; 16];
        for &cpu in cpus {
            if cpu >= mask.len() * 64 {
                return false;
            }
            mask[cpu / 64] |= 1u64 << (cpu % 64);
        }
        if cpus.is_empty() {
            return false;
        }
        let ret = unsafe {
            syscall6(
                nr::SCHED_SETAFFINITY,
                0,
                std::mem::size_of_val(&mask),
                mask.as_ptr() as usize,
                0,
                0,
                0,
            )
        };
        ret == 0
    }

    /// Pins the calling thread to the `idx`-th CPU of its *allowed* set
    /// (modulo the set size, so worker indexes wrap onto the available
    /// cores; containers and cgroups often exclude CPU 0). Returns `true`
    /// on success.
    pub fn pin_current_thread(idx: usize) -> bool {
        let allowed = allowed_cpus();
        if allowed.is_empty() {
            return false;
        }
        let cpu = allowed[idx % allowed.len()];
        let mut mask = [0u64; 16];
        if cpu >= mask.len() * 64 {
            return false;
        }
        mask[cpu / 64] |= 1u64 << (cpu % 64);
        let ret = unsafe {
            syscall6(
                nr::SCHED_SETAFFINITY,
                0, // current thread
                std::mem::size_of_val(&mask),
                mask.as_ptr() as usize,
                0,
                0,
                0,
            )
        };
        ret == 0
    }

    /// Maps `len` bytes of the file behind `fd` as a shared read-write
    /// mapping. Returns a page-aligned pointer, or `None` on failure.
    ///
    /// # Safety
    ///
    /// `fd` must be a valid open file descriptor whose file is at least `len`
    /// bytes long; the caller owns the returned mapping and must eventually
    /// [`unmap`] it.
    pub unsafe fn map_shared(fd: i32, len: usize) -> Option<*mut u8> {
        const PROT_READ_WRITE: usize = 0x3;
        const MAP_SHARED: usize = 0x1;
        let ret = unsafe {
            syscall6(
                nr::MMAP,
                0,
                len,
                PROT_READ_WRITE,
                MAP_SHARED,
                fd as usize,
                0,
            )
        };
        // Errors come back as small negative errno values.
        if ret < 0 {
            None
        } else {
            Some(ret as *mut u8)
        }
    }

    /// Unmaps a mapping previously returned by [`map_shared`].
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must describe exactly one live mapping from [`map_shared`]
    /// and nothing may reference the mapping afterwards.
    pub unsafe fn unmap(ptr: *mut u8, len: usize) {
        let _ = unsafe { syscall6(nr::MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
    }

    /// True when shared file mappings are available on this platform.
    pub const fn shared_mappings_available() -> bool {
        true
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    /// No-op fallback: the affinity mask is unavailable.
    pub fn allowed_cpus() -> Vec<usize> {
        Vec::new()
    }

    /// No-op fallback.
    pub fn set_affinity(_cpus: &[usize]) -> bool {
        false
    }

    /// No-op fallback: reports failure so callers skip pinning.
    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }

    /// Unavailable on this platform.
    ///
    /// # Safety
    ///
    /// Trivially safe: always returns `None`.
    pub unsafe fn map_shared(_fd: i32, _len: usize) -> Option<*mut u8> {
        None
    }

    /// No-op fallback.
    ///
    /// # Safety
    ///
    /// Trivially safe: does nothing.
    pub unsafe fn unmap(_ptr: *mut u8, _len: usize) {}

    /// True when shared file mappings are available on this platform.
    pub const fn shared_mappings_available() -> bool {
        false
    }
}

pub use imp::{
    allowed_cpus, map_shared, pin_current_thread, set_affinity, shared_mappings_available, unmap,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_reports_a_verdict_without_crashing() {
        // Pinning addresses the allowed set, so it works even in
        // cpuset-restricted containers; elsewhere it is a no-op.
        let saved = allowed_cpus();
        let ok = pin_current_thread(0);
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(!saved.is_empty(), "Linux must report an affinity mask");
            assert!(ok, "pinning to the first allowed CPU must succeed");
            assert_eq!(
                allowed_cpus().len(),
                1,
                "after pinning only one CPU is allowed"
            );
            // Restore the saved mask so this thread is not left pinned for
            // any test that may later run on it.
            assert!(set_affinity(&saved), "restoring the saved mask");
            assert_eq!(allowed_cpus(), saved);
        } else {
            assert!(!ok);
            assert!(allowed_cpus().is_empty());
        }
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn shared_mapping_round_trips_through_the_file() {
        use std::io::{Read, Seek, SeekFrom};
        use std::os::fd::AsRawFd;
        let mut path = std::env::temp_dir();
        path.push(format!("hornet-sys-map-{}", std::process::id()));
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        file.set_len(4096).unwrap();
        let ptr = unsafe { map_shared(file.as_raw_fd(), 4096) }.expect("mmap");
        unsafe {
            ptr.write(0xAB);
            ptr.add(100).write(0xCD);
        }
        let mut buf = [0u8; 101];
        file.seek(SeekFrom::Start(0)).unwrap();
        file.read_exact(&mut buf).unwrap();
        assert_eq!(buf[0], 0xAB);
        assert_eq!(buf[100], 0xCD);
        // A second mapping of the same file sees the same bytes.
        let ptr2 = unsafe { map_shared(file.as_raw_fd(), 4096) }.expect("second mmap");
        assert_eq!(unsafe { ptr2.read() }, 0xAB);
        unsafe {
            unmap(ptr, 4096);
            unmap(ptr2, 4096);
        }
        let _ = std::fs::remove_file(&path);
    }
}
