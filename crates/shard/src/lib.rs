//! # hornet-shard
//!
//! The sharded execution runtime of HORNET-RS: the layer that scales the
//! cycle-level simulation across host threads (and, in future PRs, sockets
//! and machines) without a global barrier.
//!
//! Three pieces compose the subsystem:
//!
//! * [`partition`] — a topology-aware [`Partitioner`](partition::Partitioner)
//!   assigns contiguous sub-mesh blocks of tiles to shards (row-aligned on
//!   meshes, which minimizes the cut among contiguous partitions and balances
//!   shards to within one row) and reports the cut set;
//! * boundary mailboxes — every cut link is rewired onto lock-free SPSC
//!   flit/credit rings ([`hornet_net::boundary`]), so cross-shard traffic
//!   never touches a lock;
//! * [`runtime`] — a persistent worker pool (one run queue per shard, threads
//!   spawned once and reused across runs) executes the shards under
//!   *slack-based synchronization*: a shard only waits until its cut-link
//!   neighbors are within `k` cycles, using the one-cycle link latency as
//!   conservative lookahead. `k = 0` with strict cycle-stamped mailbox
//!   consumption reproduces the sequential simulation bit-exactly; `k > 0`
//!   trades bounded timing skew for scaling, exactly the accuracy/speed knob
//!   of the paper's loose synchronization, but pairwise instead of global.
//!
//! The `hornet-core` engine maps its `SyncMode` onto [`runtime::RunParams`]:
//! `CycleAccurate` → `{slack: 0, quantum: 1, strict}`, `Slack(k)` →
//! `{slack: k, quantum: 1}`, `Periodic(n)` → `{slack: 0, quantum: n}`.

pub mod partition;
pub mod runtime;

pub use partition::{Partition, Partitioner};
pub use runtime::{RunOutcome, RunParams, ShardRuntime};
