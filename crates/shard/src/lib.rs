//! # hornet-shard
//!
//! The sharded execution runtime of HORNET-RS: the layer that scales the
//! cycle-level simulation across host threads (and, through the
//! `hornet-dist` crate, across processes and machines) without a global
//! barrier.
//!
//! Five pieces compose the subsystem:
//!
//! * [`driver`] — the **one** implementation of the per-cycle shard
//!   protocol ([`CycleDriver`](driver::CycleDriver)): strict flit/credit
//!   limits, fast-forward skip handling, slack waits, ledger
//!   publish-on-change. Parameterized by a transport pump (shared atomics
//!   and rings for threads; shm segments and socket frames for processes)
//!   and a payload channel (how packet payloads follow tail flits across a
//!   boundary), so the thread and distributed backends are thin hosts
//!   around the same loop and a protocol fix can never land in one only;
//! * [`partition`] — a topology-aware [`Partitioner`](partition::Partitioner)
//!   assigns band-aligned sub-mesh blocks of tiles to shards, oriented along
//!   whichever mesh axis yields the smaller cut set (rows on tall/square
//!   meshes, columns on wide ones), and reports the cut set;
//! * boundary mailboxes — every cut link is rewired onto lock-free SPSC
//!   flit/credit rings ([`hornet_net::boundary`]), so cross-shard traffic
//!   never touches a lock;
//! * [`termination`] — credit-counting distributed termination detection:
//!   every flit handed to a boundary transport carries an implicit credit,
//!   and a detector declares quiescence only when all shards are idle *and*
//!   the credits balance, over a two-wave consistent ledger scan. This
//!   replaces the global rendezvous that fast-forward and
//!   `run_to_completion` used to need — there is no barrier anywhere in the
//!   runtime;
//! * [`runtime`] — a persistent worker pool (one run queue per shard, threads
//!   spawned once, optionally pinned to cores, and reused across runs)
//!   executes the shards under *slack-based synchronization*: a shard only
//!   waits until its cut-link neighbors are within `k` cycles, using the
//!   one-cycle link latency as conservative lookahead. `k = 0` with strict
//!   cycle-stamped mailbox consumption reproduces the sequential simulation
//!   bit-exactly; `k > 0` trades bounded timing skew for scaling, exactly the
//!   accuracy/speed knob of the paper's loose synchronization, but pairwise
//!   instead of global.
//!
//! The `hornet-core` engine maps its `SyncMode` onto [`runtime::RunParams`]:
//! `CycleAccurate` → `{slack: 0, quantum: 1, strict}`, `Slack(k)` →
//! `{slack: k, quantum: 1}`, `Periodic(n)` → `{slack: 0, quantum: n}`.

pub mod driver;
pub mod partition;
pub mod runtime;
pub mod snapshot;
pub mod sys;
pub mod termination;

pub use driver::{
    CheckpointSink, CycleDriver, DriveOutcome, DriverParams, NoPayloads, PayloadChannel,
    PayloadEndpoint, TransportPump, WaitProfile,
};
pub use partition::{CutOrientation, Partition, Partitioner};
pub use runtime::{RunOutcome, RunParams, ShardConfig, ShardRuntime};
pub use snapshot::{restore_shard, snapshot_shard, LatestCheckpoint};
