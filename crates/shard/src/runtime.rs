//! The sharded execution runtime: a persistent worker pool driving one
//! partition shard per worker, with boundary mailboxes on cut links and
//! slack-based neighbor synchronization instead of a global barrier.
//!
//! # Execution model
//!
//! Tiles are split into contiguous shards by a [`Partition`]; each shard is
//! owned by one worker of a pool spawned once and reused across `run()`
//! calls (jobs arrive on one run queue per worker). Before a run, every cut
//! link is rewired: the sender router's egress port gets a
//! [`BoundaryLink`] mailbox per VC and the receiving worker gets the matching
//! [`BoundaryRx`] endpoints, so a worker's simulated cycle touches only
//! shard-local state plus lock-free SPSC rings.
//!
//! # Synchronization
//!
//! Every worker publishes its progress in a per-shard atomic (`negedge_done`
//! = last cycle whose negative edge completed). Before simulating cycle `c`,
//! a worker spins until every *neighboring* shard (shards sharing a cut
//! link — no global rendezvous) has published `c - 1 - slack`:
//!
//! * `slack = 0`, strict stamps — the sequential schedule is reproduced
//!   bit-exactly: mailbox flits are consumed only once their `visible_at`
//!   stamp is due and credits only once their emission cycle has passed, so
//!   a neighbor racing one cycle ahead cannot leak state early. This is how
//!   `SyncMode::CycleAccurate` and `Slack(0)` run.
//! * `slack = k > 0` — neighboring shards may drift up to `k` cycles apart.
//!   The one-cycle link latency acts as conservative lookahead: flits carry
//!   their stamps, so functional behaviour (delivery, ordering, credit
//!   safety) is unaffected and only timing skews by at most `k` cycles.
//! * `quantum = n` — the worker checks the drift condition only at `n`-cycle
//!   batch boundaries; with `barrier_batches` every shard additionally meets
//!   at each boundary so drift re-zeroes per batch (the reimplementation of
//!   `SyncMode::Periodic(n)` with its classic fidelity profile).
//!
//! Fast-forward and completion detection need a *global* consensus and keep
//! the classic rendezvous: when either is enabled, workers meet on a barrier
//! every `max(quantum, slack, 1)` cycles, publish per-shard idle/next-event
//! state (including flits still in flight inside boundary mailboxes), and a
//! leader decides whether to stop or jump the clocks.

use crate::partition::Partition;
use hornet_net::boundary::{BoundaryLink, BoundaryRx, EgressChannel};
use hornet_net::ids::Cycle;
use hornet_net::network::NetworkNode;
use hornet_net::stats::NetworkStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

/// Parameters of one sharded run.
#[derive(Copy, Clone, Debug)]
pub struct RunParams {
    /// First cycle already completed (the run simulates `start+1 ..= start+cycles`).
    pub start: Cycle,
    /// Number of cycles to simulate.
    pub cycles: Cycle,
    /// Maximum cycles a shard may run ahead of its neighbors.
    pub slack: u64,
    /// Cycles between drift checks (batch size; 1 = check every cycle).
    pub quantum: u64,
    /// Consume mailbox flits/credits strictly by cycle stamp (bit-exact
    /// reproduction of the sequential schedule). Only meaningful with
    /// `slack == 0` and `quantum == 1`.
    pub strict: bool,
    /// Rendezvous all shards on a barrier at every `quantum`-cycle batch
    /// boundary (classic periodic synchronization: drift re-zeroes each
    /// batch). `false` leaves batches purely neighbor-synchronized.
    pub barrier_batches: bool,
    /// Skip idle periods by jumping all clocks to the next event.
    pub fast_forward: bool,
    /// Stop early once every agent reports completion and the network drains.
    pub detect_completion: bool,
}

/// Result of one sharded run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The tiles, in their original order.
    pub nodes: Vec<NetworkNode>,
    /// The cycle the simulation stopped at (equals `start + cycles` unless
    /// completion detection stopped it earlier).
    pub final_cycle: Cycle,
    /// Statistics merged per shard by each worker (no cross-thread atomics:
    /// each worker folds its own tiles' counters locally).
    pub per_shard_stats: Vec<NetworkStats>,
    /// Number of physical links cut by the partition.
    pub cut_links: usize,
}

/// Shared synchronization state of one run.
struct SyncShared {
    /// Per shard: last cycle whose negative edge completed.
    negedge_done: Vec<AtomicU64>,
    /// Per shard: last cycle whose positive edge completed (consulted only
    /// for cut links that carry bandwidth-adaptive bidirectional links).
    posedge_done: Vec<AtomicU64>,
    /// Rendezvous for fast-forward / completion consensus and end-of-run.
    barrier: Barrier,
    /// Per shard: buffered + in-flight flits and injector backlog.
    busy: Vec<AtomicU64>,
    /// Per shard: earliest next event (`u64::MAX` = none).
    next_event: Vec<AtomicU64>,
    /// Per shard: all agents report completion.
    finished: Vec<AtomicBool>,
    /// Cycle to jump to (fast-forward), or 0 for "no jump".
    skip_to: AtomicU64,
    /// Set when completion is detected.
    stop: AtomicBool,
    /// Cycle at which the simulation stopped.
    final_cycle: AtomicU64,
}

impl SyncShared {
    fn new(shards: usize, start: Cycle, end: Cycle) -> Self {
        Self {
            negedge_done: (0..shards).map(|_| AtomicU64::new(start)).collect(),
            posedge_done: (0..shards).map(|_| AtomicU64::new(start)).collect(),
            barrier: Barrier::new(shards),
            busy: (0..shards).map(|_| AtomicU64::new(1)).collect(),
            next_event: (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
            finished: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            skip_to: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            final_cycle: AtomicU64::new(end),
        }
    }
}

/// One unit of work for a worker: simulate one shard for one run.
struct Job {
    shard: usize,
    tiles: Vec<NetworkNode>,
    /// Receiver endpoints of the boundary links feeding this shard.
    inbound: Vec<BoundaryRx>,
    /// Sender-side boundary links whose credits this shard applies.
    outbound: Vec<Arc<BoundaryLink>>,
    /// Shards sharing a cut link with this one.
    neighbors: Vec<usize>,
    /// Cut links of this shard carry bandwidth-adaptive bidirectional links,
    /// whose demand arbitration needs posedge/negedge phase separation.
    phase_wait: bool,
    sync: Arc<SyncShared>,
    params: RunParams,
    done: Sender<JobResult>,
}

struct JobResult {
    shard: usize,
    tiles: Vec<NetworkNode>,
    stats: NetworkStats,
}

/// Spins until every listed shard's counter reaches `floor`.
fn wait_for(counters: &[AtomicU64], neighbors: &[usize], floor: u64) {
    for &n in neighbors {
        let counter = &counters[n];
        let mut spins = 0u32;
        while counter.load(Ordering::Acquire) < floor {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(128) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// The per-worker simulation loop for one shard.
fn run_shard(job: Job) -> JobResult {
    let Job {
        shard,
        mut tiles,
        mut inbound,
        outbound,
        neighbors,
        phase_wait,
        sync,
        params: p,
        done: _done,
    } = job;
    let end = p.start + p.cycles;
    let quantum = p.quantum.max(1);
    let check_every = if p.fast_forward || p.detect_completion {
        quantum.max(p.slack).max(1)
    } else {
        0
    };
    let mut now = p.start;

    loop {
        if now >= end || sync.stop.load(Ordering::Acquire) {
            break;
        }
        let check_end = if check_every > 0 {
            (now + check_every).min(end)
        } else {
            end
        };
        while now < check_end {
            let batch_end = (now + quantum).min(check_end);
            // Drift gate at the batch boundary: neighbors must have finished
            // the negative edge of `now - slack` before we simulate `now+1`.
            wait_for(&sync.negedge_done, &neighbors, now.saturating_sub(p.slack));
            while now < batch_end {
                let next = now + 1;
                // Drain boundary mailboxes. Strict mode consumes exactly the
                // prefix the sequential schedule would have made visible by
                // this cycle; loose modes take everything available.
                let (flit_limit, credit_limit) = if p.strict {
                    (Some(next), Some(next - 1))
                } else {
                    (None, None)
                };
                for link in &outbound {
                    link.apply_credits(credit_limit);
                }
                for rx in &mut inbound {
                    rx.deliver(flit_limit);
                }
                for tile in &mut tiles {
                    tile.posedge(next);
                }
                sync.posedge_done[shard].store(next, Ordering::Release);
                if phase_wait {
                    // Bandwidth-adaptive links publish demand at the negative
                    // edge into a single shared slot; hold our negedge until
                    // the neighbors' posedges have read the previous value.
                    wait_for(&sync.posedge_done, &neighbors, next);
                }
                for tile in &mut tiles {
                    tile.negedge(next);
                }
                for rx in &mut inbound {
                    rx.emit_credits(next);
                }
                sync.negedge_done[shard].store(next, Ordering::Release);
                now = next;
            }
            if p.barrier_batches {
                // Classic periodic synchronization: every shard meets at the
                // batch boundary, so clock drift re-zeroes each batch instead
                // of sitting persistently at the bound.
                sync.barrier.wait();
            }
        }

        if check_every > 0 {
            // Rendezvous first: neighbor-synchronized shards may be several
            // cycles apart inside the check interval, and a shard must not
            // snapshot its idle state while a slower neighbor is still
            // pushing flits into its inbound mailboxes.
            sync.barrier.wait();
            // Publish this shard's idle / completion state. Tile probes are
            // O(1) (aggregate occupancy counters); in-flight mailbox flits
            // count as busy so a pending cross-shard delivery blocks both
            // fast-forward jumps and completion.
            let busy: u64 = tiles
                .iter()
                .map(|t| t.buffered_flits() as u64 + u64::from(!t.is_idle()))
                .sum::<u64>()
                + inbound.iter().map(|rx| rx.in_flight() as u64).sum::<u64>();
            let next = tiles
                .iter()
                .filter_map(|t| t.next_event(now))
                .min()
                .unwrap_or(u64::MAX);
            let fin = tiles.iter().all(NetworkNode::finished);
            sync.busy[shard].store(busy, Ordering::Release);
            sync.next_event[shard].store(next, Ordering::Release);
            sync.finished[shard].store(fin, Ordering::Release);
            sync.barrier.wait();
            if shard == 0 {
                let all_idle = sync.busy.iter().all(|b| b.load(Ordering::Acquire) == 0);
                let all_finished = sync.finished.iter().all(|f| f.load(Ordering::Acquire));
                if p.detect_completion && all_idle && all_finished {
                    sync.stop.store(true, Ordering::Release);
                    sync.final_cycle.store(now, Ordering::Release);
                }
                let mut skip = 0;
                if p.fast_forward && all_idle {
                    let next = sync
                        .next_event
                        .iter()
                        .map(|e| e.load(Ordering::Acquire))
                        .min()
                        .unwrap_or(u64::MAX);
                    if next == u64::MAX {
                        skip = end;
                    } else if next > now + 1 {
                        skip = next.min(end) - 1;
                    }
                }
                sync.skip_to.store(skip, Ordering::Release);
            }
            sync.barrier.wait();
            let skip = sync.skip_to.load(Ordering::Acquire);
            if skip > now {
                let skipped = skip - now;
                for tile in &mut tiles {
                    tile.set_cycle(skip);
                    tile.router_mut().stats_mut().fast_forwarded_cycles += skipped;
                }
                now = skip;
                sync.posedge_done[shard].store(skip, Ordering::Release);
                sync.negedge_done[shard].store(skip, Ordering::Release);
            }
        }
    }

    // End-of-run rendezvous: every sender has completed its final negative
    // edge once all shards pass this barrier, so flushing the inbound
    // mailboxes into the real ingress buffers is race-free and complete.
    sync.barrier.wait();
    for rx in inbound.drain(..) {
        rx.flush();
    }

    let mut stats = NetworkStats::new();
    for tile in &tiles {
        stats.merge(tile.stats());
    }
    JobResult {
        shard,
        tiles,
        stats,
    }
}

/// A persistent pool of shard workers, spawned once and fed one job per shard
/// per `run()` call.
pub struct ShardRuntime {
    workers: Vec<WorkerHandle>,
}

struct WorkerHandle {
    jobs: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

impl Default for ShardRuntime {
    fn default() -> Self {
        Self::new(0)
    }
}

impl ShardRuntime {
    /// Creates a runtime with `workers` persistent worker threads (more are
    /// spawned on demand when a run needs them).
    pub fn new(workers: usize) -> Self {
        let mut rt = Self {
            workers: Vec::new(),
        };
        rt.ensure_workers(workers);
        rt
    }

    /// Number of live worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Spawns additional workers until at least `count` exist.
    pub fn ensure_workers(&mut self, count: usize) {
        while self.workers.len() < count {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
            let idx = self.workers.len();
            let handle = std::thread::Builder::new()
                .name(format!("hornet-shard-{idx}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let done = job.done.clone();
                        let result = run_shard(job);
                        let _ = done.send(result);
                    }
                })
                .expect("spawn shard worker");
            self.workers.push(WorkerHandle {
                jobs: tx,
                handle: Some(handle),
            });
        }
    }

    /// Runs the tiles for `params.cycles` cycles under `partition`, returning
    /// them (in their original order) together with the final cycle and
    /// per-shard statistics. Boundary links are wired before and unwired
    /// after the run, so the returned tiles are indistinguishable from tiles
    /// simulated sequentially — including, in strict mode, bit-identical
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not cover exactly `nodes.len()` tiles, or
    /// if a worker thread died.
    pub fn run(
        &mut self,
        nodes: Vec<NetworkNode>,
        partition: &Partition,
        params: RunParams,
    ) -> RunOutcome {
        assert_eq!(
            partition.node_count(),
            nodes.len(),
            "partition must cover every tile exactly once"
        );
        let shards = partition.shard_count();
        self.ensure_workers(shards);

        let mut nodes = nodes;
        let wiring = wire_boundaries(&mut nodes, partition);

        // Split the tiles into per-shard vectors (ranges are contiguous and
        // ascending, so concatenation restores the original order).
        let mut per_shard_tiles: Vec<Vec<NetworkNode>> = Vec::with_capacity(shards);
        {
            let mut iter = nodes.into_iter();
            for range in partition.ranges() {
                per_shard_tiles.push(iter.by_ref().take(range.len()).collect());
            }
        }

        let end = params.start + params.cycles;
        let sync = Arc::new(SyncShared::new(shards, params.start, end));
        let (done_tx, done_rx) = channel::<JobResult>();
        let mut inbound = wiring.inbound;
        let mut outbound = wiring.outbound;
        let mut neighbors = wiring.neighbors;
        for (shard, tiles) in per_shard_tiles.into_iter().enumerate() {
            let job = Job {
                shard,
                tiles,
                inbound: std::mem::take(&mut inbound[shard]),
                outbound: std::mem::take(&mut outbound[shard]),
                neighbors: std::mem::take(&mut neighbors[shard]),
                phase_wait: wiring.phase_wait[shard],
                sync: Arc::clone(&sync),
                params,
                done: done_tx.clone(),
            };
            self.workers[shard].jobs.send(job).expect("worker alive");
        }
        drop(done_tx);

        let mut results: Vec<Option<JobResult>> = (0..shards).map(|_| None).collect();
        for _ in 0..shards {
            let result = done_rx.recv().expect("shard worker died");
            let slot = result.shard;
            results[slot] = Some(result);
        }

        let mut nodes = Vec::with_capacity(partition.node_count());
        let mut per_shard_stats = Vec::with_capacity(shards);
        for result in results.into_iter().map(|r| r.expect("all shards report")) {
            nodes.extend(result.tiles);
            per_shard_stats.push(result.stats);
        }

        unwire_boundaries(&mut nodes, &wiring.directed);

        let final_cycle = if sync.stop.load(Ordering::Acquire) {
            sync.final_cycle.load(Ordering::Acquire)
        } else {
            end
        };
        RunOutcome {
            nodes,
            final_cycle,
            per_shard_stats,
            cut_links: wiring.cut_count,
        }
    }
}

impl Drop for ShardRuntime {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Replacing the sender closes the channel; the worker's recv()
            // then errors out and the thread exits.
            let (dead_tx, _) = channel::<Job>();
            w.jobs = dead_tx;
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Everything `run` needs to hand boundary endpoints to workers and restore
/// the direct wiring afterwards.
struct Wiring {
    /// Directed cut links as `(src_index, dst_index)` node-index pairs.
    directed: Vec<(usize, usize)>,
    inbound: Vec<Vec<BoundaryRx>>,
    outbound: Vec<Vec<Arc<BoundaryLink>>>,
    neighbors: Vec<Vec<usize>>,
    phase_wait: Vec<bool>,
    cut_count: usize,
}

/// Replaces the shared ingress buffers of every cut link with boundary
/// mailboxes and collects the per-shard endpoint lists.
fn wire_boundaries(nodes: &mut [NetworkNode], partition: &Partition) -> Wiring {
    let shards = partition.shard_count();
    // The topology's edge list, as the routers see it; the partitioner turns
    // it into the cut set and the shard-neighbor relation (one source of
    // truth for both the wiring and the reported layout).
    let edges = nodes
        .iter()
        .flat_map(|node| {
            let id = node.node();
            node.neighbors()
                .iter()
                .filter(move |nb| nb.index() > id.index())
                .map(move |&nb| (id, nb))
        })
        .collect::<Vec<_>>();
    let cuts = partition.cut_links(edges.iter().copied());
    let neighbors = partition.shard_adjacency(edges.iter().copied());

    let mut wiring = Wiring {
        directed: Vec::with_capacity(cuts.len() * 2),
        inbound: (0..shards).map(|_| Vec::new()).collect(),
        outbound: (0..shards).map(|_| Vec::new()).collect(),
        neighbors,
        phase_wait: vec![false; shards],
        cut_count: cuts.len(),
    };
    for &(a, b) in &cuts {
        let (a, b) = (a.index(), b.index());
        for (src, dst) in [(a, b), (b, a)] {
            let src_id = nodes[src].node();
            let dst_id = nodes[dst].node();
            let (s_src, s_dst) = (partition.shard_of(src_id), partition.shard_of(dst_id));
            let targets = nodes[dst].router().ingress_buffers_from(src_id);
            // Seed the sender's credit view with the buffer's current
            // occupancy: wiring may happen mid-simulation, with flits from a
            // previous run still resident downstream.
            let links: Vec<Arc<BoundaryLink>> = targets
                .iter()
                .map(|t| BoundaryLink::with_resident(t.capacity(), t.occupancy()))
                .collect();
            let channels: Vec<EgressChannel> = links
                .iter()
                .map(|l| EgressChannel::Boundary(Arc::clone(l)))
                .collect();
            nodes[src]
                .router_mut()
                .swap_egress_channels(dst_id, channels);
            if nodes[src].router().has_bidir_toward(dst_id) {
                wiring.phase_wait[s_src] = true;
                wiring.phase_wait[s_dst] = true;
            }
            wiring.outbound[s_src].extend(links.iter().cloned());
            wiring.inbound[s_dst].extend(
                links
                    .into_iter()
                    .zip(targets)
                    .map(|(link, target)| BoundaryRx::new(link, target)),
            );
            wiring.directed.push((src, dst));
        }
    }
    wiring
}

/// Restores direct shared-buffer wiring on every previously cut link. The
/// workers flushed all in-flight mailbox flits into the real ingress buffers
/// before returning, so this is a pure pointer swap.
fn unwire_boundaries(nodes: &mut [NetworkNode], directed: &[(usize, usize)]) {
    for &(src, dst) in directed {
        let src_id = nodes[src].node();
        let dst_id = nodes[dst].node();
        let channels: Vec<EgressChannel> = nodes[dst]
            .router()
            .ingress_buffers_from(src_id)
            .into_iter()
            .map(EgressChannel::Local)
            .collect();
        nodes[src]
            .router_mut()
            .swap_egress_channels(dst_id, channels);
    }
}
