//! The sharded execution runtime: a persistent worker pool driving one
//! partition shard per worker, with boundary mailboxes on cut links and
//! slack-based neighbor synchronization — and *no global barrier anywhere*,
//! including fast-forward and completion detection.
//!
//! # Execution model
//!
//! Tiles are split into shards by a [`Partition`]; each shard is owned by one
//! worker of a pool spawned once and reused across `run()` calls (jobs arrive
//! on one run queue per worker). Before a run, every cut link is rewired: the
//! sender router's egress port gets a [`BoundaryLink`] mailbox per VC and the
//! receiving worker gets the matching [`BoundaryRx`] endpoints, so a worker's
//! simulated cycle touches only shard-local state plus lock-free SPSC rings.
//!
//! # Synchronization
//!
//! Every worker publishes its progress in a per-shard atomic (`negedge_done`
//! = last cycle whose negative edge completed). Before simulating cycle `c`,
//! a worker spins until every *neighboring* shard (shards sharing a cut
//! link — no global rendezvous) has published `c - 1 - slack`:
//!
//! * `slack = 0`, strict stamps — the sequential schedule is reproduced
//!   bit-exactly: mailbox flits are consumed only once their `visible_at`
//!   stamp is due and credits only once their emission cycle has passed, so
//!   a neighbor racing one cycle ahead cannot leak state early. This is how
//!   `SyncMode::CycleAccurate` and `Slack(0)` run.
//! * `slack = k > 0` — neighboring shards may drift up to `k` cycles apart.
//!   The one-cycle link latency acts as conservative lookahead: flits carry
//!   their stamps, so functional behaviour (delivery, ordering, credit
//!   safety) is unaffected and only timing skews by at most `k` cycles.
//! * `quantum = n` — the worker checks the drift condition only at `n`-cycle
//!   batch boundaries; with `barrier_batches` every shard additionally waits
//!   for all shards' progress counters to reach each boundary, so drift
//!   re-zeroes per batch (the reimplementation of `SyncMode::Periodic(n)`
//!   with its classic fidelity profile — a counter rendezvous, not a
//!   `Barrier` primitive).
//!
//! # Termination and fast-forward without a barrier
//!
//! Fast-forward and completion detection used to rendezvous every shard on a
//! global barrier at check boundaries; they now ride credit-counting
//! distributed termination detection ([`crate::termination`]). Each worker
//! publishes a [`ShardLedger`] — local idleness, agent completion, earliest
//! next event, and the cumulative flit counts handed to / taken from its
//! boundary transports — and keeps simulating. The *caller* thread of
//! [`ShardRuntime::run`] doubles as the detector: it scans the ledgers with a
//! two-wave consistent snapshot and, only when every shard is idle and the
//! transport credits balance, publishes a stop flag (completion) or a
//! monotone jump target (fast-forward) that workers pick up from their
//! normal per-cycle polling. Workers never wait for each other beyond the
//! usual neighbor drift gates.

use crate::driver::{
    merge_tile_stats, CycleDriver, DriverParams, NoPayloads, PayloadChannel, TelemetrySink,
    TransportPump, WaitProfile,
};
use crate::partition::Partition;
use crate::sys;
use crate::termination::{scan_ledgers, Quiescence, ShardLedger};
use hornet_net::boundary::{BoundaryLink, BoundaryRx, EgressChannel};
use hornet_net::ids::Cycle;
use hornet_net::kernel::KernelMode;
use hornet_net::network::NetworkNode;
use hornet_net::stats::NetworkStats;
use hornet_obs::metrics::{MetricsRegistry, TelemetrySample};
use hornet_obs::profile::StallProfile;
use hornet_obs::serve::ObsHub;
use hornet_obs::trace::{TraceDump, TraceRing};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Parameters of one sharded run.
#[derive(Clone, Debug)]
pub struct RunParams {
    /// First cycle already completed (the run simulates `start+1 ..= start+cycles`).
    pub start: Cycle,
    /// Number of cycles to simulate.
    pub cycles: Cycle,
    /// Maximum cycles a shard may run ahead of its neighbors.
    pub slack: u64,
    /// Cycles between drift checks (batch size; 1 = check every cycle).
    pub quantum: u64,
    /// Consume mailbox flits/credits strictly by cycle stamp (bit-exact
    /// reproduction of the sequential schedule). Only meaningful with
    /// `slack == 0` and `quantum == 1`.
    pub strict: bool,
    /// Rendezvous all shards (via progress counters) at every `quantum`-cycle
    /// batch boundary (classic periodic synchronization: drift re-zeroes each
    /// batch). `false` leaves batches purely neighbor-synchronized.
    pub barrier_batches: bool,
    /// Skip idle periods by jumping all clocks to the next event.
    pub fast_forward: bool,
    /// Stop early once every agent reports completion and the network drains.
    pub detect_completion: bool,
    /// Attribute each worker's wall time to compute / slack-wait / ingest /
    /// flush phases (reported per shard in [`RunOutcome::per_shard_profiles`]).
    pub profile: bool,
    /// Collect a [`TelemetrySample`] per shard roughly every this many
    /// cycles (rounded up to the quantum); `None` disables sampling.
    pub telemetry_every: Option<u64>,
    /// Capacity of each shard's runtime event ring (slack waits, checkpoint
    /// captures); 0 disables runtime event tracing. Flit-lifecycle tracing is
    /// per tile and enabled on the tiles themselves.
    pub trace_runtime: usize,
    /// Live observation hub: every telemetry sample is *also* pushed here as
    /// it is emitted (in addition to the per-run sample vector), feeding the
    /// embedded HTTP status server. `None` keeps sampling purely end-of-run.
    pub live: Option<Arc<ObsHub>>,
    /// Cycle-execution strategy per shard: interpreter, compiled kernel, or
    /// auto-detection (bit-identical either way).
    pub kernel: KernelMode,
}

/// Result of one sharded run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The tiles, in their original order.
    pub nodes: Vec<NetworkNode>,
    /// The cycle the simulation stopped at (equals `start + cycles` unless
    /// completion detection stopped it earlier).
    pub final_cycle: Cycle,
    /// Statistics merged per shard by each worker (no cross-thread atomics:
    /// each worker folds its own tiles' counters locally).
    pub per_shard_stats: Vec<NetworkStats>,
    /// Number of physical links cut by the partition.
    pub cut_links: usize,
    /// Per-shard wall-time attribution (all zeros unless
    /// [`RunParams::profile`] was set).
    pub per_shard_profiles: Vec<StallProfile>,
    /// Telemetry samples from every shard, in (shard, emission) order.
    pub samples: Vec<TelemetrySample>,
    /// Runtime events (slack waits, checkpoints) from every shard's ring,
    /// merged in shard order. Empty unless [`RunParams::trace_runtime`] > 0.
    pub runtime_trace: TraceDump,
}

/// Shared synchronization state of one run.
struct SyncShared {
    /// Per shard: last cycle whose negative edge completed.
    negedge_done: Vec<AtomicU64>,
    /// Per shard: last cycle whose positive edge completed (consulted only
    /// for cut links that carry bandwidth-adaptive bidirectional links).
    posedge_done: Vec<AtomicU64>,
    /// Per shard: the credit-counting termination ledger.
    ledgers: Vec<ShardLedger>,
    /// Fast-forward jump target published by the detector (monotone; a worker
    /// jumps when the target exceeds its own clock). 0 = no jump.
    skip_to: AtomicU64,
    /// Set by the detector when completion is declared.
    stop: AtomicBool,
}

impl SyncShared {
    fn new(shards: usize, start: Cycle) -> Self {
        Self {
            negedge_done: (0..shards).map(|_| AtomicU64::new(start)).collect(),
            posedge_done: (0..shards).map(|_| AtomicU64::new(start)).collect(),
            ledgers: (0..shards).map(|_| ShardLedger::new()).collect(),
            skip_to: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }
}

/// One unit of work for a worker: simulate one shard for one run.
struct Job {
    shard: usize,
    tiles: Vec<NetworkNode>,
    /// Receiver endpoints of the boundary links feeding this shard.
    inbound: Vec<BoundaryRx>,
    /// Sender-side boundary links whose credits this shard applies.
    outbound: Vec<Arc<BoundaryLink>>,
    /// Shards sharing a cut link with this one.
    neighbors: Vec<usize>,
    /// Cut links of this shard carry bandwidth-adaptive bidirectional links,
    /// whose demand arbitration needs posedge/negedge phase separation.
    phase_wait: bool,
    sync: Arc<SyncShared>,
    params: RunParams,
    done: Sender<JobResult>,
}

struct JobResult {
    shard: usize,
    tiles: Vec<NetworkNode>,
    stats: NetworkStats,
    /// The cycle this shard actually stopped at.
    final_now: Cycle,
    /// Receiver endpoints, returned so the caller can flush leftover
    /// in-flight flits once every sender has exited (replaces the old
    /// end-of-run barrier).
    inbound: Vec<BoundaryRx>,
    /// The shard's simulation panicked; `tiles` is empty and the whole run
    /// must be aborted (the caller re-raises after unblocking the others).
    panicked: bool,
    /// Wall-time attribution of this shard's run.
    profile: StallProfile,
    /// Telemetry samples this shard emitted.
    samples: Vec<TelemetrySample>,
    /// This shard's runtime events (empty when runtime tracing is off).
    runtime_trace: TraceDump,
}

/// Spins until every listed shard's counter reaches `floor`, or the stop
/// flag is raised (returns `false` in that case so callers can unwind).
/// Spin-then-yield only: shard workers share one process and one scheduler,
/// and the wait is typically a cycle's worth of work, so parking would cost
/// more than it saves (the multi-process worker loop, whose peers are whole
/// processes, escalates to sleeps instead).
fn wait_floor(stop: &AtomicBool, counters: &[AtomicU64], shards: &[usize], floor: u64) -> bool {
    for &n in shards {
        let counter = &counters[n];
        let mut spins = 0u32;
        while counter.load(Ordering::Acquire) < floor {
            if stop.load(Ordering::Acquire) {
                return false;
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(128) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
    true
}

/// Spins until *every* shard's counter reaches `floor` (the counter-based
/// rendezvous behind `barrier_batches`), or the stop flag is raised.
fn wait_floor_all(stop: &AtomicBool, counters: &[AtomicU64], floor: u64) -> bool {
    for n in 0..counters.len() {
        if !wait_floor(stop, counters, &[n], floor) {
            return false;
        }
    }
    true
}

/// The thread backend's [`TransportPump`]: boundary rings are shared
/// directly between the shard loops, so the data plane needs no pumping at
/// all — only the per-shard progress atomics in [`SyncShared`].
struct ThreadPump<'a> {
    shard: usize,
    sync: &'a SyncShared,
    neighbors: &'a [usize],
    /// Cut links carry bandwidth-adaptive bidirectional links, whose demand
    /// arbitration needs posedge/negedge phase separation.
    phase_wait: bool,
    /// Rendezvous all shards at every quantum boundary (classic periodic
    /// synchronization: drift re-zeroes per batch).
    barrier_batches: bool,
}

impl TransportPump for ThreadPump<'_> {
    fn peers_reached(&self, floor: Cycle) -> bool {
        self.neighbors
            .iter()
            .all(|&n| self.sync.negedge_done[n].load(Ordering::Acquire) >= floor)
    }

    fn pump(
        &mut self,
        cycle: Cycle,
        _payloads: &dyn PayloadChannel,
        _flush: bool,
    ) -> std::io::Result<()> {
        self.sync.negedge_done[self.shard].store(cycle, Ordering::Release);
        Ok(())
    }

    fn posedge_sync(&mut self, cycle: Cycle, stop: &AtomicBool) -> bool {
        self.sync.posedge_done[self.shard].store(cycle, Ordering::Release);
        if self.phase_wait {
            wait_floor(stop, &self.sync.posedge_done, self.neighbors, cycle)
        } else {
            true
        }
    }

    fn batch_rendezvous(&mut self, cycle: Cycle, stop: &AtomicBool) -> bool {
        if self.barrier_batches {
            wait_floor_all(stop, &self.sync.negedge_done, cycle)
        } else {
            true
        }
    }

    fn publish_jump(
        &mut self,
        target: Cycle,
        _payloads: &dyn PayloadChannel,
    ) -> std::io::Result<()> {
        self.sync.posedge_done[self.shard].store(target, Ordering::Release);
        self.sync.negedge_done[self.shard].store(target, Ordering::Release);
        Ok(())
    }

    fn stall_report(&self) -> String {
        self.neighbors
            .iter()
            .map(|&n| {
                self.sync.negedge_done[n]
                    .load(Ordering::Acquire)
                    .to_string()
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Tees telemetry samples into the per-run sample vector (for the final
/// report) and, when attached, the live observation hub — so enabling the
/// HTTP server changes where copies of samples go, never what the driver
/// computes.
struct TeeSink<'a> {
    samples: &'a mut Vec<TelemetrySample>,
    live: Option<&'a ObsHub>,
}

impl TelemetrySink for TeeSink<'_> {
    fn emit(&mut self, sample: &TelemetrySample) {
        if let Some(hub) = self.live {
            hub.ingest(sample);
        }
        self.samples.push(sample.clone());
    }
}

/// The per-worker simulation loop for one shard: a thin host around the
/// unified [`CycleDriver`] (the protocol itself lives in [`crate::driver`]).
fn run_shard(job: Job) -> JobResult {
    let Job {
        shard,
        mut tiles,
        mut inbound,
        outbound,
        neighbors,
        phase_wait,
        sync,
        params: p,
        done: _done,
    } = job;
    let mut pump = ThreadPump {
        shard,
        sync: &sync,
        neighbors: &neighbors,
        phase_wait,
        barrier_batches: p.barrier_batches,
    };
    let mut samples: Vec<TelemetrySample> = Vec::new();
    let metrics = p.telemetry_every.map(|_| MetricsRegistry::default());
    let mut sink = TeeSink {
        samples: &mut samples,
        live: p.live.as_deref(),
    };
    let mut runtime_ring = (p.trace_runtime > 0).then(|| TraceRing::new(p.trace_runtime));
    let driver = CycleDriver {
        shard,
        tiles: &mut tiles,
        outbound: &outbound,
        inbound: &mut inbound,
        transport: &mut pump,
        // Shards share the process's payload store: payloads never move.
        payloads: &NoPayloads,
        stop: &sync.stop,
        skip_to: &sync.skip_to,
        ledger: &sync.ledgers[shard],
        // The thread backend restarts runs from returned tiles instead of
        // checkpoints (its workers cannot crash independently of the host).
        checkpoint: None,
        telemetry: p.telemetry_every.is_some().then_some(&mut sink as _),
        metrics: metrics.as_ref(),
        tracer: runtime_ring.as_mut(),
    };
    let outcome = driver
        .run(&DriverParams {
            start: p.start,
            cycles: p.cycles,
            slack: p.slack,
            quantum: p.quantum,
            strict: p.strict,
            track_ledger: p.fast_forward || p.detect_completion,
            fast_forward: p.fast_forward,
            wait: WaitProfile::Spin,
            checkpoint_every: None,
            received_start: 0,
            profile: p.profile,
            telemetry_every: p.telemetry_every,
            kernel: p.kernel,
        })
        .expect("thread transport cannot fail");

    // No end-of-run rendezvous: the caller joins all workers through the
    // result channel and flushes the returned inbound endpoints afterwards,
    // when every sender has provably exited.
    let stats = merge_tile_stats(&tiles);
    let mut runtime_trace = TraceDump::default();
    if let Some(ring) = &mut runtime_ring {
        ring.drain_into(&mut runtime_trace);
    }
    JobResult {
        shard,
        tiles,
        stats,
        final_now: outcome.final_now,
        inbound,
        panicked: false,
        profile: outcome.profile,
        samples,
        runtime_trace,
    }
}

/// Configuration of the worker pool itself (as opposed to per-run
/// [`RunParams`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardConfig {
    /// Pin each worker thread to one core (`worker index mod host cores`)
    /// via `sched_setaffinity`. Linux-only; silently a no-op elsewhere.
    pub pin_to_cores: bool,
}

/// A persistent pool of shard workers, spawned once and fed one job per shard
/// per `run()` call.
pub struct ShardRuntime {
    workers: Vec<WorkerHandle>,
    config: ShardConfig,
}

struct WorkerHandle {
    jobs: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

impl Default for ShardRuntime {
    fn default() -> Self {
        Self::new(0)
    }
}

impl ShardRuntime {
    /// Creates a runtime with `workers` persistent worker threads (more are
    /// spawned on demand when a run needs them).
    pub fn new(workers: usize) -> Self {
        Self::with_config(workers, ShardConfig::default())
    }

    /// Creates a runtime with an explicit pool configuration.
    pub fn with_config(workers: usize, config: ShardConfig) -> Self {
        let mut rt = Self {
            workers: Vec::new(),
            config,
        };
        rt.ensure_workers(workers);
        rt
    }

    /// Number of live worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Spawns additional workers until at least `count` exist.
    pub fn ensure_workers(&mut self, count: usize) {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        while self.workers.len() < count {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
            let idx = self.workers.len();
            let pin = self.config.pin_to_cores;
            let handle = std::thread::Builder::new()
                .name(format!("hornet-shard-{idx}"))
                .spawn(move || {
                    if pin {
                        sys::pin_current_thread(idx % cores);
                    }
                    while let Ok(job) = rx.recv() {
                        let done = job.done.clone();
                        let shard = job.shard;
                        let sync = Arc::clone(&job.sync);
                        // A panicking shard must not wedge the run: report a
                        // failure marker and raise the stop flag so peers
                        // spinning on this shard's progress unwind promptly.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_shard(job)
                        }));
                        match result {
                            Ok(result) => {
                                let _ = done.send(result);
                            }
                            Err(_) => {
                                sync.stop.store(true, Ordering::Release);
                                let _ = done.send(JobResult {
                                    shard,
                                    tiles: Vec::new(),
                                    stats: NetworkStats::new(),
                                    final_now: 0,
                                    inbound: Vec::new(),
                                    panicked: true,
                                    profile: StallProfile::default(),
                                    samples: Vec::new(),
                                    runtime_trace: TraceDump::default(),
                                });
                            }
                        }
                    }
                })
                .expect("spawn shard worker");
            self.workers.push(WorkerHandle {
                jobs: tx,
                handle: Some(handle),
            });
        }
    }

    /// Runs the tiles for `params.cycles` cycles under `partition`, returning
    /// them (in their original order) together with the final cycle and
    /// per-shard statistics. Boundary links are wired before and unwired
    /// after the run, so the returned tiles are indistinguishable from tiles
    /// simulated sequentially — including, in strict mode, bit-identical
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not cover exactly `nodes.len()` tiles, or
    /// if a worker thread died.
    pub fn run(
        &mut self,
        nodes: Vec<NetworkNode>,
        partition: &Partition,
        params: RunParams,
    ) -> RunOutcome {
        assert_eq!(
            partition.node_count(),
            nodes.len(),
            "partition must cover every tile exactly once"
        );
        let shards = partition.shard_count();
        self.ensure_workers(shards);

        let mut nodes = nodes;
        let wiring = wire_boundaries(&mut nodes, partition);

        // Split the tiles into per-shard vectors following the partition's
        // member lists (row bands are contiguous, column bands are not).
        let node_count = nodes.len();
        let mut slots: Vec<Option<NetworkNode>> = nodes.into_iter().map(Some).collect();
        let per_shard_tiles: Vec<Vec<NetworkNode>> = partition
            .all_members()
            .iter()
            .map(|members| {
                members
                    .iter()
                    .map(|&i| slots[i].take().expect("each tile in exactly one shard"))
                    .collect()
            })
            .collect();

        let end = params.start + params.cycles;
        let sync = Arc::new(SyncShared::new(shards, params.start));
        let (done_tx, done_rx) = channel::<JobResult>();
        let mut inbound = wiring.inbound;
        let mut outbound = wiring.outbound;
        let mut neighbors = wiring.neighbors;
        for (shard, tiles) in per_shard_tiles.into_iter().enumerate() {
            let job = Job {
                shard,
                tiles,
                inbound: std::mem::take(&mut inbound[shard]),
                outbound: std::mem::take(&mut outbound[shard]),
                neighbors: std::mem::take(&mut neighbors[shard]),
                phase_wait: wiring.phase_wait[shard],
                sync: Arc::clone(&sync),
                params: params.clone(),
                done: done_tx.clone(),
            };
            self.workers[shard].jobs.send(job).expect("worker alive");
        }
        drop(done_tx);

        // Collect worker results; while any are outstanding the caller thread
        // doubles as the credit-counting termination detector.
        let mut results: Vec<Option<JobResult>> = (0..shards).map(|_| None).collect();
        let mut received = 0usize;
        let mut any_panicked = false;
        let detector_active = params.fast_forward || params.detect_completion;
        while received < shards {
            if detector_active {
                // Pace the detector on the result channel itself: the
                // timeout bounds detection latency while the blocking wait
                // keeps this thread off the workers' cores (no spinning).
                match done_rx.recv_timeout(std::time::Duration::from_micros(200)) {
                    Ok(result) => {
                        any_panicked |= result.panicked;
                        let slot = result.shard;
                        results[slot] = Some(result);
                        received += 1;
                        continue;
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                        panic!("shard worker died without reporting");
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        detector_pass(&sync, &params, end);
                    }
                }
            } else {
                let result = done_rx.recv().expect("shard worker died");
                any_panicked |= result.panicked;
                let slot = result.shard;
                results[slot] = Some(result);
                received += 1;
            }
        }

        assert!(
            !any_panicked,
            "a shard worker panicked during the run; simulation state is lost"
        );
        let stopped = sync.stop.load(Ordering::Acquire);
        let mut results: Vec<JobResult> = results
            .into_iter()
            .map(|r| r.expect("all shards report"))
            .collect();
        let final_cycle = if stopped {
            // Workers notice the stop flag at slightly different cycles; the
            // system was quiescent throughout, so aligning every clock to the
            // latest one is a no-op semantically.
            results.iter().map(|r| r.final_now).max().unwrap_or(end)
        } else {
            end
        };

        // Every sender has exited: flush leftover in-flight mailbox flits
        // into the real ingress buffers (race-free without a barrier).
        for result in &mut results {
            for rx in result.inbound.drain(..) {
                rx.flush();
            }
        }

        let mut slots: Vec<Option<NetworkNode>> = (0..node_count).map(|_| None).collect();
        let mut per_shard_stats = vec![NetworkStats::new(); shards];
        let mut per_shard_profiles = vec![StallProfile::default(); shards];
        let mut samples = Vec::new();
        let mut runtime_trace = TraceDump::default();
        for result in results {
            per_shard_stats[result.shard] = result.stats;
            per_shard_profiles[result.shard] = result.profile;
            samples.extend(result.samples);
            runtime_trace.merge(result.runtime_trace);
            for (&idx, mut tile) in partition.members(result.shard).iter().zip(result.tiles) {
                if stopped {
                    tile.set_cycle(final_cycle);
                }
                slots[idx] = Some(tile);
            }
        }
        let mut nodes: Vec<NetworkNode> = slots
            .into_iter()
            .map(|s| s.expect("every tile returned"))
            .collect();

        unwire_boundaries(&mut nodes, &wiring.directed);

        RunOutcome {
            nodes,
            final_cycle,
            per_shard_stats,
            cut_links: wiring.cut_count,
            per_shard_profiles,
            samples,
            runtime_trace,
        }
    }
}

/// One detector iteration: scan the ledgers and, on a consistent idle
/// snapshot with balanced credits, declare completion or publish a
/// fast-forward target.
fn detector_pass(sync: &SyncShared, p: &RunParams, end: Cycle) {
    if sync.stop.load(Ordering::Acquire) {
        return;
    }
    match scan_ledgers(&sync.ledgers) {
        Quiescence::Active => {}
        Quiescence::Idle {
            finished,
            next_event,
            ..
        } => {
            if p.detect_completion && finished {
                sync.stop.store(true, Ordering::Release);
                return;
            }
            if p.fast_forward {
                // Jump to one cycle before the earliest agent event so the
                // event cycle itself is simulated (to the run end if nothing
                // will ever happen again).
                let target = if next_event == u64::MAX {
                    end
                } else {
                    next_event.saturating_sub(1).min(end)
                };
                // Only publish a target strictly ahead of every shard's
                // clock — otherwise some shard has already simulated past it
                // and the jump would be a no-op (or worse, re-published
                // forever).
                let newest = sync
                    .negedge_done
                    .iter()
                    .map(|c| c.load(Ordering::Acquire))
                    .max()
                    .unwrap_or(0);
                if target > newest && target > sync.skip_to.load(Ordering::Acquire) {
                    sync.skip_to.store(target, Ordering::Release);
                }
            }
        }
    }
}

impl Drop for ShardRuntime {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Replacing the sender closes the channel; the worker's recv()
            // then errors out and the thread exits.
            let (dead_tx, _) = channel::<Job>();
            w.jobs = dead_tx;
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Everything `run` needs to hand boundary endpoints to workers and restore
/// the direct wiring afterwards.
struct Wiring {
    /// Directed cut links as `(src_index, dst_index)` node-index pairs.
    directed: Vec<(usize, usize)>,
    inbound: Vec<Vec<BoundaryRx>>,
    outbound: Vec<Vec<Arc<BoundaryLink>>>,
    neighbors: Vec<Vec<usize>>,
    phase_wait: Vec<bool>,
    cut_count: usize,
}

/// Replaces the shared ingress buffers of every cut link with boundary
/// mailboxes and collects the per-shard endpoint lists.
fn wire_boundaries(nodes: &mut [NetworkNode], partition: &Partition) -> Wiring {
    let shards = partition.shard_count();
    // The topology's edge list, as the routers see it; the partitioner turns
    // it into the cut set and the shard-neighbor relation (one source of
    // truth for both the wiring and the reported layout).
    let edges = nodes
        .iter()
        .flat_map(|node| {
            let id = node.node();
            node.neighbors()
                .iter()
                .filter(move |nb| nb.index() > id.index())
                .map(move |&nb| (id, nb))
        })
        .collect::<Vec<_>>();
    let cuts = partition.cut_links(edges.iter().copied());
    let neighbors = partition.shard_adjacency(edges.iter().copied());

    let mut wiring = Wiring {
        directed: Vec::with_capacity(cuts.len() * 2),
        inbound: (0..shards).map(|_| Vec::new()).collect(),
        outbound: (0..shards).map(|_| Vec::new()).collect(),
        neighbors,
        phase_wait: vec![false; shards],
        cut_count: cuts.len(),
    };
    for &(a, b) in &cuts {
        let (a, b) = (a.index(), b.index());
        for (src, dst) in [(a, b), (b, a)] {
            let src_id = nodes[src].node();
            let dst_id = nodes[dst].node();
            let (s_src, s_dst) = (partition.shard_of(src_id), partition.shard_of(dst_id));
            let targets = nodes[dst].router().ingress_buffers_from(src_id).to_vec();
            // Seed the sender's credit view with the buffer's current
            // occupancy: wiring may happen mid-simulation, with flits from a
            // previous run still resident downstream.
            let links: Vec<Arc<BoundaryLink>> = targets
                .iter()
                .map(|t| BoundaryLink::with_resident(t.capacity(), t.occupancy()))
                .collect();
            let channels: Vec<EgressChannel> = links
                .iter()
                .map(|l| EgressChannel::Boundary(Arc::clone(l)))
                .collect();
            nodes[src]
                .router_mut()
                .swap_egress_channels(dst_id, channels);
            if nodes[src].router().has_bidir_toward(dst_id) {
                wiring.phase_wait[s_src] = true;
                wiring.phase_wait[s_dst] = true;
            }
            wiring.outbound[s_src].extend(links.iter().cloned());
            wiring.inbound[s_dst].extend(
                links
                    .into_iter()
                    .zip(targets)
                    .map(|(link, target)| BoundaryRx::new(link, target)),
            );
            wiring.directed.push((src, dst));
        }
    }
    wiring
}

/// Restores direct shared-buffer wiring on every previously cut link. The
/// caller flushed all in-flight mailbox flits into the real ingress buffers,
/// so this is a pure pointer swap.
fn unwire_boundaries(nodes: &mut [NetworkNode], directed: &[(usize, usize)]) {
    for &(src, dst) in directed {
        let src_id = nodes[src].node();
        let dst_id = nodes[dst].node();
        let channels: Vec<EgressChannel> = nodes[dst]
            .router()
            .ingress_buffers_from(src_id)
            .iter()
            .cloned()
            .map(EgressChannel::Local)
            .collect();
        nodes[src]
            .router_mut()
            .swap_egress_channels(dst_id, channels);
    }
}
