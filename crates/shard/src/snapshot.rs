//! Shard-level checkpoint capture and restore.
//!
//! A checkpoint freezes everything a shard needs to resume bit-identically
//! at a rendezvous cycle `C`: the tiles (routers, bridges, agents, RNG
//! cursors), the cumulative delivery counter the termination ledger reports,
//! and the in-flight contents of every boundary half-link. It is taken at
//! the top of the [`CycleDriver`](crate::driver::CycleDriver) batch loop —
//! after `wait_peers(C)` and transport ingestion — under strict (bit-exact)
//! synchronization only.
//!
//! # Why the stamp filters make the cut consistent
//!
//! At the capture point every peer has finished its negedge of `C`, and its
//! cycle-`C` emissions travel the same FIFO channel ahead of the progress
//! publication, so every flit stamped `visible_at ≤ C+1` and every credit
//! stamped `≤ C` has already been ingested locally. A peer may however have
//! raced *one* cycle ahead (slack 0 allows simulating `C+1` before we do),
//! depositing flits stamped `C+2` and credits stamped `C+1` into our rings.
//! Those are dropped by the stamp filters below: after a global rollback to
//! `C` the peer re-executes `C+1` and regenerates exactly the same
//! emissions, so nothing is lost and nothing is duplicated.
//!
//! Our *own* staged emissions never need filtering — a shard cannot race
//! ahead of itself — so the outbound flit ring and the receiver-side owed
//! credits are captured whole.

use crate::driver::{CheckpointSink, PayloadChannel};
use hornet_net::boundary::{BoundaryLink, BoundaryRx, CreditMsg};
use hornet_net::codec::{self, Dec, Enc};
use hornet_net::flit::Flit;
use hornet_net::ids::Cycle;
use hornet_net::network::NetworkNode;
use std::io;
use std::sync::Arc;

/// Layout version of the shard checkpoint encoding.
pub const SHARD_CHECKPOINT_VERSION: u32 = 1;

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("shard checkpoint: {what}"),
    )
}

/// Serializes one shard's complete resumable state at rendezvous cycle
/// `cycle`.
///
/// `outbound` are the sender half-links whose credits this shard applies and
/// `inbound` the receiver endpoints feeding it — the same slices the cycle
/// driver borrows. `received` is the driver's cumulative mailbox delivery
/// counter at the capture point.
pub fn snapshot_shard(
    cycle: Cycle,
    received: u64,
    tiles: &[NetworkNode],
    outbound: &[Arc<BoundaryLink>],
    inbound: &[BoundaryRx],
    payloads: &dyn PayloadChannel,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(SHARD_CHECKPOINT_VERSION).u64(cycle).u64(received);

    e.u32(tiles.len() as u32);
    for tile in tiles {
        let mut sub = Enc::new();
        tile.snapshot(&mut sub);
        e.blob(sub.bytes());
    }

    // Sender halves: cumulative pushed cursor, credit window, whole staged
    // flit ring (all ours, stamps ≤ cycle+1 by construction) and the staged
    // credit ring filtered to stamps ≤ cycle (later ones came from a peer
    // that raced one cycle ahead; rollback regenerates them).
    e.u32(outbound.len() as u32);
    for link in outbound {
        let flits = link.staged_flit_snapshot();
        let credits: Vec<CreditMsg> = link
            .staged_credit_snapshot()
            .into_iter()
            .filter(|c| c.cycle <= cycle)
            .collect();
        e.u64(link.flits_pushed()).u64(link.occupancy() as u64);
        e.u32(flits.len() as u32);
        for f in &flits {
            codec::encode_flit(&mut e, f);
        }
        e.u32(credits.len() as u32);
        for c in &credits {
            codec::encode_credit(&mut e, c);
        }
    }

    // Receiver halves: in-flight flits filtered to visible_at ≤ cycle+1
    // (later stamps are raced-ahead peer emissions), plus the credits owed
    // back to the sender — computed-but-unemitted ones and any still staged
    // for the wire. The restore folds `owed` into the receiver's pop
    // baseline so the next emission cycle re-issues them.
    e.u32(inbound.len() as u32);
    for rx in inbound {
        let flits: Vec<Flit> = rx
            .link()
            .staged_flit_snapshot()
            .into_iter()
            .filter(|f| f.visible_at <= cycle + 1)
            .collect();
        let staged: u64 = rx
            .link()
            .staged_credit_snapshot()
            .iter()
            .map(|c| u64::from(c.count))
            .sum();
        e.u32(flits.len() as u32);
        for f in &flits {
            codec::encode_flit(&mut e, f);
        }
        e.u64(rx.owed_credits() + staged);
    }

    // Parked packet payloads: in a distributed shard the payload store is
    // process-local, so any payload waiting for its tail flit to claim it
    // must travel with the checkpoint or restored flits would dangle.
    let parked = payloads.parked();
    e.u32(parked.len() as u32);
    for p in &parked {
        codec::encode_packet(&mut e, p);
    }

    e.into_bytes()
}

/// Restores a shard checkpoint produced by [`snapshot_shard`] into freshly
/// wired state: `tiles` must be newly built from the same spec (programs and
/// configuration are reconstructed, not serialized) and every boundary
/// half-link must be newly created and unused. Tiles are restored *first*;
/// callers that seed sender credit windows from ingress occupancy must wire
/// the boundaries after the tile restore so the occupancies are the
/// checkpointed ones.
///
/// Returns `(cycle, received)`: the rendezvous cycle to resume from and the
/// driver's delivery counter (its `received_start`).
pub fn restore_shard(
    bytes: &[u8],
    tiles: &mut [NetworkNode],
    outbound: &[Arc<BoundaryLink>],
    inbound: &mut [BoundaryRx],
    payloads: &dyn PayloadChannel,
) -> io::Result<(Cycle, u64)> {
    let mut d = Dec::new(bytes);
    let version = d.u32()?;
    if version != SHARD_CHECKPOINT_VERSION {
        return Err(corrupt("version mismatch"));
    }
    let cycle = d.u64()?;
    let received = d.u64()?;

    let tile_count = d.u32()? as usize;
    if tile_count != tiles.len() {
        return Err(corrupt("tile count mismatch"));
    }
    for tile in tiles.iter_mut() {
        let blob = d.blob()?;
        tile.restore(&mut Dec::new(blob))?;
    }

    let out_count = d.u32()? as usize;
    if out_count != outbound.len() {
        return Err(corrupt("outbound link count mismatch"));
    }
    for link in outbound {
        let pushed = d.u64()?;
        let outstanding = d.u64()? as usize;
        let n = d.u32()? as usize;
        let mut flits = Vec::with_capacity(n);
        for _ in 0..n {
            flits.push(codec::decode_flit(&mut d)?);
        }
        let n = d.u32()? as usize;
        let mut credits = Vec::with_capacity(n);
        for _ in 0..n {
            credits.push(codec::decode_credit(&mut d)?);
        }
        if (flits.len() as u64) > pushed {
            return Err(corrupt("staged flits exceed cumulative pushed"));
        }
        if flits.len() > link.capacity() || credits.len() > link.capacity() + 1 {
            return Err(corrupt("staged items exceed ring capacity"));
        }
        link.restore_outbound(pushed, outstanding, &flits, &credits);
    }

    let in_count = d.u32()? as usize;
    if in_count != inbound.len() {
        return Err(corrupt("inbound link count mismatch"));
    }
    for rx in inbound.iter_mut() {
        let n = d.u32()? as usize;
        let mut flits = Vec::with_capacity(n);
        for _ in 0..n {
            flits.push(codec::decode_flit(&mut d)?);
        }
        if flits.len() > rx.link().capacity() {
            return Err(corrupt("in-flight flits exceed ring capacity"));
        }
        rx.link().restore_inbound(&flits);
        // The freshly built receiver captured its pop baseline before the
        // tile restore changed the ingress occupancy; re-read it so credit
        // emission starts from the checkpointed state, then fold the owed
        // credits back in.
        rx.reset_baseline();
        let owed = d.u64()?;
        rx.restore_owed(owed);
    }

    let n = d.u32()? as usize;
    for _ in 0..n {
        let pkt = codec::decode_packet(&mut d)?;
        payloads.deposit(pkt);
    }

    if d.remaining() != 0 {
        return Err(corrupt("trailing bytes"));
    }
    Ok((cycle, received))
}

/// Reads only the rendezvous cycle of a checkpoint (for commit bookkeeping
/// without decoding the full state).
pub fn checkpoint_cycle(bytes: &[u8]) -> io::Result<Cycle> {
    let mut d = Dec::new(bytes);
    let version = d.u32()?;
    if version != SHARD_CHECKPOINT_VERSION {
        return Err(corrupt("version mismatch"));
    }
    d.u64()
}

/// A [`CheckpointSink`] that keeps only the most recent checkpoint in
/// memory. Test and single-process hosts use it directly; the distributed
/// worker ships each capture to its coordinator instead.
#[derive(Debug, Default)]
pub struct LatestCheckpoint {
    latest: Option<(Cycle, Vec<u8>)>,
}

impl LatestCheckpoint {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recent capture, if any.
    pub fn latest(&self) -> Option<(Cycle, &[u8])> {
        self.latest.as_ref().map(|(c, b)| (*c, b.as_slice()))
    }

    /// Takes the most recent capture out of the sink.
    pub fn take(&mut self) -> Option<(Cycle, Vec<u8>)> {
        self.latest.take()
    }
}

impl CheckpointSink for LatestCheckpoint {
    fn checkpoint(&mut self, cycle: Cycle, state: &[u8]) -> io::Result<()> {
        self.latest = Some((cycle, state.to_vec()));
        Ok(())
    }
}
