//! Topology-aware partitioning of tiles onto shards.
//!
//! A [`Partition`] assigns every tile to exactly one shard. For row-major
//! meshes (the paper's topology), [`Partitioner::mesh`] aligns shard
//! boundaries to complete rows *or* complete columns — whichever orientation
//! yields the smaller cut set: a boundary between row bands cuts `width`
//! links while a boundary between column bands cuts `height` links, so wide
//! meshes (`width > height`) are split along columns and tall or square
//! meshes along rows. Bands are balanced to within one row/column. For
//! geometries without a natural row structure, [`Partitioner::linear`] falls
//! back to balanced contiguous index ranges (±1 tile).
//!
//! Row bands are contiguous blocks of node indices; column bands are not
//! (row-major order interleaves them), so a shard's tiles are reported as an
//! explicit sorted index list ([`Partition::members`]).
//!
//! The cut set — the links whose endpoints land in different shards — is what
//! the runtime turns into boundary mailboxes; [`Partition::cut_links`]
//! computes and reports it for any edge list.

use hornet_net::ids::NodeId;

/// Which mesh axis the shard boundaries run along.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CutOrientation {
    /// Shards are bands of complete rows (boundaries cut vertical links).
    Rows,
    /// Shards are bands of complete columns (boundaries cut horizontal
    /// links).
    Columns,
}

/// Splits tiles into shards.
#[derive(Copy, Clone, Debug)]
pub struct Partitioner {
    shards: usize,
}

impl Partitioner {
    /// Creates a partitioner targeting `shards` shards (at least one). The
    /// actual shard count may come out lower when the topology cannot feed
    /// that many shards (fewer rows/columns/tiles than requested shards).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
        }
    }

    /// Band partition of a `width × height` row-major mesh, oriented along
    /// whichever axis yields the smaller cut set: every boundary between row
    /// bands cuts `width` vertical links, every boundary between column bands
    /// cuts `height` horizontal links, so the partitioner cuts rows when
    /// `width ≤ height` and columns when `width > height`. Bands are balanced
    /// to within one row/column. This is the minimum-cut contiguous band
    /// partition of a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh(&self, width: usize, height: usize) -> Partition {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        if width > height {
            self.mesh_oriented(width, height, CutOrientation::Columns)
        } else {
            self.mesh_oriented(width, height, CutOrientation::Rows)
        }
    }

    /// Band partition of a mesh with an explicitly chosen orientation (see
    /// [`Partitioner::mesh`] for the automatic choice).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh_oriented(
        &self,
        width: usize,
        height: usize,
        orientation: CutOrientation,
    ) -> Partition {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        // A band is a run of complete rows (or columns); `axis` is the number
        // of bands available, `span` the tiles per row/column.
        let axis = match orientation {
            CutOrientation::Rows => height,
            CutOrientation::Columns => width,
        };
        let shards = self.shards.min(axis);
        let base = axis / shards;
        let extra = axis % shards;
        let mut members: Vec<Vec<usize>> = Vec::with_capacity(shards);
        let mut first = 0usize;
        for s in 0..shards {
            let bands = base + usize::from(s < extra);
            let band = first..(first + bands);
            let mut tiles = Vec::with_capacity(bands * width * height / axis);
            match orientation {
                CutOrientation::Rows => {
                    // Rows are contiguous in row-major order.
                    tiles.extend((band.start * width)..(band.end * width));
                }
                CutOrientation::Columns => {
                    // Ascending y outer, ascending x inner: already sorted.
                    for y in 0..height {
                        for x in band.clone() {
                            tiles.push(y * width + x);
                        }
                    }
                    debug_assert!(tiles.windows(2).all(|w| w[0] < w[1]));
                }
            }
            members.push(tiles);
            first += bands;
        }
        debug_assert_eq!(first, axis);
        Partition::from_members(members, orientation)
    }

    /// Balanced contiguous index-range partition of `node_count` tiles
    /// (shard sizes differ by at most one tile). The fallback for geometries
    /// without a row structure.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    pub fn linear(&self, node_count: usize) -> Partition {
        assert!(node_count > 0, "cannot partition zero tiles");
        let shards = self.shards.min(node_count);
        let base = node_count / shards;
        let extra = node_count % shards;
        let mut members = Vec::with_capacity(shards);
        let mut start = 0usize;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            members.push((start..(start + len)).collect());
            start += len;
        }
        debug_assert_eq!(start, node_count);
        Partition::from_members(members, CutOrientation::Rows)
    }
}

/// An assignment of tiles to shards.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `assignment[node] = shard`.
    assignment: Vec<u32>,
    /// Sorted node indices of each shard.
    members: Vec<Vec<usize>>,
    /// The axis the shard boundaries run along (meaningful for mesh
    /// partitions; linear partitions report `Rows`).
    orientation: CutOrientation,
}

impl Partition {
    /// Builds a partition from explicit per-shard member lists. Every node
    /// index in `0..n` must appear exactly once across the lists.
    ///
    /// # Panics
    ///
    /// Panics if the lists do not cover a contiguous `0..n` index range
    /// exactly once.
    pub fn from_members(members: Vec<Vec<usize>>, orientation: CutOrientation) -> Self {
        let node_count: usize = members.iter().map(Vec::len).sum();
        let mut assignment = vec![u32::MAX; node_count];
        for (s, tiles) in members.iter().enumerate() {
            for &i in tiles {
                assert!(
                    i < node_count && assignment[i] == u32::MAX,
                    "partition must cover every tile exactly once"
                );
                assignment[i] = s as u32;
            }
        }
        Self {
            assignment,
            members,
            orientation,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.members.len()
    }

    /// Total number of tiles covered.
    pub fn node_count(&self) -> usize {
        self.assignment.len()
    }

    /// The axis the shard boundaries run along.
    pub fn orientation(&self) -> CutOrientation {
        self.orientation
    }

    /// The shard a tile belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the partitioned range.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assignment[node.index()] as usize
    }

    /// The sorted node indices of one shard.
    pub fn members(&self, shard: usize) -> &[usize] {
        &self.members[shard]
    }

    /// All shards' member lists, in shard order.
    pub fn all_members(&self) -> &[Vec<usize>] {
        &self.members
    }

    /// The shard-to-node assignment, indexed by node.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of tiles in one shard.
    pub fn tiles(&self, shard: usize) -> usize {
        self.members[shard].len()
    }

    /// The cut set: every edge whose endpoints land in different shards,
    /// reported as normalized `(low, high)` node pairs in input order.
    /// `edges` is the undirected link list of the topology (each physical
    /// link once).
    pub fn cut_links(
        &self,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Vec<(NodeId, NodeId)> {
        edges
            .into_iter()
            .filter(|&(a, b)| self.shard_of(a) != self.shard_of(b))
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect()
    }

    /// The pairs of shards that share at least one cut link — the neighbor
    /// relation the slack synchronization protocol waits on.
    pub fn shard_adjacency(
        &self,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.shard_count()];
        for (a, b) in edges {
            let (sa, sb) = (self.shard_of(a), self.shard_of(b));
            if sa != sb {
                if !adj[sa].contains(&sb) {
                    adj[sa].push(sb);
                }
                if !adj[sb].contains(&sa) {
                    adj[sb].push(sa);
                }
            }
        }
        for n in &mut adj {
            n.sort_unstable();
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh_edges(w: usize, h: usize) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    edges.push((NodeId::from(id), NodeId::from(id + 1)));
                }
                if y + 1 < h {
                    edges.push((NodeId::from(id), NodeId::from(id + w)));
                }
            }
        }
        edges
    }

    #[test]
    fn mesh_partition_is_row_aligned_and_balanced() {
        let p = Partitioner::new(4).mesh(8, 8);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.orientation(), CutOrientation::Rows);
        for s in 0..4 {
            assert_eq!(p.tiles(s), 16, "two rows of eight");
            assert_eq!(p.members(s)[0] % 8, 0, "row-aligned start");
            let m = p.members(s);
            assert!(m.windows(2).all(|w| w[1] == w[0] + 1), "rows contiguous");
        }
        // Three boundaries × eight links each.
        assert_eq!(p.cut_links(mesh_edges(8, 8)).len(), 24);
    }

    #[test]
    fn wide_mesh_cuts_columns_for_a_smaller_cut_set() {
        // 16×4: row cuts would cost 16 links per boundary (and allow at most
        // 4 shards); column cuts cost 4.
        let p = Partitioner::new(4).mesh(16, 4);
        assert_eq!(p.orientation(), CutOrientation::Columns);
        assert_eq!(p.shard_count(), 4);
        for s in 0..4 {
            assert_eq!(p.tiles(s), 16, "four columns of four");
        }
        let cuts = p.cut_links(mesh_edges(16, 4));
        assert_eq!(cuts.len(), 3 * 4, "three boundaries × height links");
        // The row-forced alternative pays 16 links per boundary.
        let rows = Partitioner::new(4).mesh_oriented(16, 4, CutOrientation::Rows);
        assert!(cuts.len() < rows.cut_links(mesh_edges(16, 4)).len());
    }

    #[test]
    fn tall_and_square_meshes_keep_row_cuts() {
        assert_eq!(
            Partitioner::new(2).mesh(4, 8).orientation(),
            CutOrientation::Rows
        );
        assert_eq!(
            Partitioner::new(2).mesh(8, 8).orientation(),
            CutOrientation::Rows
        );
    }

    #[test]
    fn column_members_cover_every_tile_exactly_once() {
        let p = Partitioner::new(3).mesh(9, 2);
        assert_eq!(p.orientation(), CutOrientation::Columns);
        let mut seen = [false; 18];
        for s in 0..p.shard_count() {
            for &i in p.members(s) {
                assert!(!seen[i], "tile {i} assigned twice");
                seen[i] = true;
                assert_eq!(p.shard_of(NodeId::from(i)), s);
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn uneven_rows_differ_by_at_most_one() {
        let p = Partitioner::new(3).mesh(4, 7);
        let rows: Vec<usize> = (0..3).map(|s| p.tiles(s) / 4).collect();
        assert_eq!(rows.iter().sum::<usize>(), 7);
        assert!(rows.iter().max().unwrap() - rows.iter().min().unwrap() <= 1);
    }

    #[test]
    fn shard_count_clamps_to_bands() {
        let p = Partitioner::new(64).mesh(4, 4);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.node_count(), 16);
    }

    #[test]
    fn linear_partition_covers_everything_contiguously() {
        let p = Partitioner::new(3).linear(10);
        assert_eq!(p.shard_count(), 3);
        let sizes: Vec<usize> = (0..3).map(|s| p.tiles(s)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        let mut covered = 0;
        for s in 0..3 {
            assert_eq!(p.members(s)[0], covered, "contiguous");
            covered = p.members(s).last().unwrap() + 1;
        }
        assert_eq!(covered, 10);
    }

    #[test]
    fn cut_links_only_cross_shards() {
        let p = Partitioner::new(2).mesh(3, 4);
        let edges = mesh_edges(3, 4);
        let cuts = p.cut_links(edges.iter().copied());
        assert_eq!(cuts.len(), 3, "one boundary × three links");
        for (a, b) in cuts {
            assert_ne!(p.shard_of(a), p.shard_of(b));
        }
    }

    #[test]
    fn shard_adjacency_links_neighbouring_bands() {
        let p = Partitioner::new(4).mesh(4, 8);
        let adj = p.shard_adjacency(mesh_edges(4, 8));
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1, 3]);
        assert_eq!(adj[3], vec![2]);
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn duplicate_membership_panics() {
        let _ = Partition::from_members(vec![vec![0, 1], vec![1]], CutOrientation::Rows);
    }
}
