//! Topology-aware partitioning of tiles onto shards.
//!
//! A [`Partition`] assigns every tile to exactly one shard as a *contiguous
//! block of node indices*. For row-major meshes (the paper's topology),
//! [`Partitioner::mesh`] aligns block boundaries to mesh rows, which is the
//! minimum-cut contiguous partition of a mesh: every shard boundary then cuts
//! exactly `width` links, the fewest any horizontal division can achieve, and
//! the blocks are balanced to within one row. For geometries without a
//! natural row structure, [`Partitioner::linear`] falls back to balanced
//! contiguous index ranges (±1 tile).
//!
//! The cut set — the links whose endpoints land in different shards — is what
//! the runtime turns into boundary mailboxes; [`Partition::cut_links`]
//! computes and reports it for any edge list.

use hornet_net::ids::NodeId;
use std::ops::Range;

/// Splits tiles into contiguous shards.
#[derive(Copy, Clone, Debug)]
pub struct Partitioner {
    shards: usize,
}

impl Partitioner {
    /// Creates a partitioner targeting `shards` shards (at least one). The
    /// actual shard count may come out lower when the topology cannot feed
    /// that many shards (fewer rows / tiles than requested shards).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
        }
    }

    /// Row-aligned partition of a `width × height` row-major mesh: each shard
    /// receives a contiguous band of complete rows, band heights differing by
    /// at most one row. This is the minimum-cut contiguous partition of a
    /// mesh — every inter-shard boundary cuts exactly `width` vertical links.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh(&self, width: usize, height: usize) -> Partition {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        let shards = self.shards.min(height);
        let base = height / shards;
        let extra = height % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut row = 0usize;
        for s in 0..shards {
            let rows = base + usize::from(s < extra);
            ranges.push((row * width)..((row + rows) * width));
            row += rows;
        }
        debug_assert_eq!(row, height);
        Partition::from_ranges(ranges)
    }

    /// Balanced contiguous index-range partition of `node_count` tiles
    /// (shard sizes differ by at most one tile). The fallback for geometries
    /// without a row structure.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    pub fn linear(&self, node_count: usize) -> Partition {
        assert!(node_count > 0, "cannot partition zero tiles");
        let shards = self.shards.min(node_count);
        let base = node_count / shards;
        let extra = node_count % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            ranges.push(start..(start + len));
            start += len;
        }
        debug_assert_eq!(start, node_count);
        Partition::from_ranges(ranges)
    }
}

/// An assignment of tiles to shards as contiguous index blocks.
#[derive(Clone, Debug)]
pub struct Partition {
    ranges: Vec<Range<usize>>,
    /// `assignment[node] = shard`.
    assignment: Vec<u32>,
}

impl Partition {
    fn from_ranges(ranges: Vec<Range<usize>>) -> Self {
        let node_count = ranges.last().map_or(0, |r| r.end);
        let mut assignment = vec![0u32; node_count];
        for (s, r) in ranges.iter().enumerate() {
            for slot in &mut assignment[r.clone()] {
                *slot = s as u32;
            }
        }
        Self { ranges, assignment }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of tiles covered.
    pub fn node_count(&self) -> usize {
        self.assignment.len()
    }

    /// The shard a tile belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the partitioned range.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assignment[node.index()] as usize
    }

    /// The contiguous node-index range of one shard.
    pub fn range(&self, shard: usize) -> Range<usize> {
        self.ranges[shard].clone()
    }

    /// All shard ranges, in shard order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of tiles in one shard.
    pub fn tiles(&self, shard: usize) -> usize {
        self.ranges[shard].len()
    }

    /// The cut set: every edge whose endpoints land in different shards,
    /// reported as normalized `(low, high)` node pairs in input order.
    /// `edges` is the undirected link list of the topology (each physical
    /// link once).
    pub fn cut_links(
        &self,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Vec<(NodeId, NodeId)> {
        edges
            .into_iter()
            .filter(|&(a, b)| self.shard_of(a) != self.shard_of(b))
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect()
    }

    /// The pairs of shards that share at least one cut link — the neighbor
    /// relation the slack synchronization protocol waits on.
    pub fn shard_adjacency(
        &self,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.shard_count()];
        for (a, b) in edges {
            let (sa, sb) = (self.shard_of(a), self.shard_of(b));
            if sa != sb {
                if !adj[sa].contains(&sb) {
                    adj[sa].push(sb);
                }
                if !adj[sb].contains(&sa) {
                    adj[sb].push(sa);
                }
            }
        }
        for n in &mut adj {
            n.sort_unstable();
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh_edges(w: usize, h: usize) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    edges.push((NodeId::from(id), NodeId::from(id + 1)));
                }
                if y + 1 < h {
                    edges.push((NodeId::from(id), NodeId::from(id + w)));
                }
            }
        }
        edges
    }

    #[test]
    fn mesh_partition_is_row_aligned_and_balanced() {
        let p = Partitioner::new(4).mesh(8, 8);
        assert_eq!(p.shard_count(), 4);
        for s in 0..4 {
            assert_eq!(p.tiles(s), 16, "two rows of eight");
            assert_eq!(p.range(s).start % 8, 0, "row-aligned start");
        }
        // Three boundaries × eight links each.
        assert_eq!(p.cut_links(mesh_edges(8, 8)).len(), 24);
    }

    #[test]
    fn uneven_rows_differ_by_at_most_one() {
        let p = Partitioner::new(3).mesh(4, 7);
        let rows: Vec<usize> = (0..3).map(|s| p.tiles(s) / 4).collect();
        assert_eq!(rows.iter().sum::<usize>(), 7);
        assert!(rows.iter().max().unwrap() - rows.iter().min().unwrap() <= 1);
    }

    #[test]
    fn shard_count_clamps_to_rows() {
        let p = Partitioner::new(64).mesh(4, 4);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.node_count(), 16);
    }

    #[test]
    fn linear_partition_covers_everything_contiguously() {
        let p = Partitioner::new(3).linear(10);
        assert_eq!(p.shard_count(), 3);
        let sizes: Vec<usize> = (0..3).map(|s| p.tiles(s)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        let mut covered = 0;
        for s in 0..3 {
            assert_eq!(p.range(s).start, covered, "contiguous");
            covered = p.range(s).end;
        }
        assert_eq!(covered, 10);
    }

    #[test]
    fn cut_links_only_cross_shards() {
        let p = Partitioner::new(2).mesh(3, 4);
        let edges = mesh_edges(3, 4);
        let cuts = p.cut_links(edges.iter().copied());
        assert_eq!(cuts.len(), 3, "one boundary × three links");
        for (a, b) in cuts {
            assert_ne!(p.shard_of(a), p.shard_of(b));
        }
    }

    #[test]
    fn shard_adjacency_links_neighbouring_bands() {
        let p = Partitioner::new(4).mesh(4, 8);
        let adj = p.shard_adjacency(mesh_edges(4, 8));
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1, 3]);
        assert_eq!(adj[3], vec![2]);
    }
}
