//! Credit-counting distributed termination detection.
//!
//! The classic way to decide "the simulation is globally idle" is a global
//! barrier: every shard stops, publishes its state, a leader decides. That
//! rendezvous is exactly what limits scaling, so this module implements a
//! barrier-free scheme in the credit-counting family (Mattern's counting
//! methods, Dijkstra–Safra's coloured token): every flit handed to a boundary
//! transport carries an implicit *credit* (the sender's cumulative `sent`
//! counter), redeemed when the receiver moves it out of the transport (the
//! receiver's cumulative `recv` counter). A detector — the caller thread for
//! the in-process runtime, the coordinator process for the distributed
//! backend — declares quiescence only when, over one consistent observation,
//!
//! 1. every shard reports itself locally idle (no buffered flits, no pending
//!    injections, no in-flight transport flits), and
//! 2. the credits balance: `Σ sent == Σ recv`, so no flit is hiding in a
//!    transport, and
//! 3. (for completion) every agent reports finished.
//!
//! Shards publish their state through a [`ShardLedger`] — a seqlock whose
//! version only advances when the *content* changes, so an idle shard burning
//! cycles does not disturb the detector. A consistent observation is obtained
//! with two waves ([`QuiescenceScan`]): read every ledger, evaluate the
//! conditions, then re-read every version. If no version moved, all first-wave
//! values coexisted at one instant (any instant between the end of wave one
//! and the start of wave two), which makes the vector a consistent global
//! snapshot. Soundness then follows from two structural facts about the
//! simulator: a flit spends at least one cycle buffered in its sender's
//! router before crossing a boundary (so a sender that pushed since its last
//! publish was visibly busy, or the push is already in its published `sent`),
//! and spontaneous activity comes only from agents, which is what the
//! `finished` / `next_event` gates cover.

use std::sync::atomic::{AtomicU64, Ordering};

/// The state one shard publishes for termination/fast-forward decisions.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LedgerState {
    /// Locally buffered flits + non-idle indicators + flits in flight in
    /// inbound transports. `0` = locally idle.
    pub busy: u64,
    /// All agents on this shard report completion.
    pub finished: bool,
    /// Earliest future cycle at which an agent wants to act
    /// (`u64::MAX` = none).
    pub next_event: u64,
    /// Cumulative flits handed to outbound boundary transports this run.
    pub sent: u64,
    /// Cumulative flits taken out of inbound boundary transports this run.
    pub recv: u64,
    /// The shard's clock (last completed negative edge) at publish time.
    pub cycle: u64,
}

/// One shard's published ledger: a seqlock over [`LedgerState`].
///
/// Writers call [`publish`](Self::publish) (single writer per ledger); any
/// number of readers may call [`read`](Self::read) concurrently. The version
/// advances only when the published content changes.
#[derive(Debug, Default)]
pub struct ShardLedger {
    /// Even = stable, odd = write in progress. Starts at 0.
    version: AtomicU64,
    busy: AtomicU64,
    finished: AtomicU64,
    next_event: AtomicU64,
    sent: AtomicU64,
    recv: AtomicU64,
    cycle: AtomicU64,
}

impl ShardLedger {
    /// Creates a ledger in the conservative initial state: busy, unfinished,
    /// no events — a shard that has not yet published cannot contribute to a
    /// quiescence declaration.
    pub fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            busy: AtomicU64::new(1),
            finished: AtomicU64::new(0),
            next_event: AtomicU64::new(u64::MAX),
            sent: AtomicU64::new(0),
            recv: AtomicU64::new(0),
            cycle: AtomicU64::new(0),
        }
    }

    /// Publishes a new state (single-writer). The version is bumped by two,
    /// passing through an odd (write-in-progress) value so readers retry.
    /// Classic seqlock write protocol: the release fence keeps the field
    /// stores from being reordered before the odd version store, and the
    /// final release store publishes them to acquire readers.
    pub fn publish(&self, s: &LedgerState) {
        let v = self.version.load(Ordering::Relaxed);
        self.version.store(v.wrapping_add(1), Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        self.busy.store(s.busy, Ordering::Relaxed);
        self.finished
            .store(u64::from(s.finished), Ordering::Relaxed);
        self.next_event.store(s.next_event, Ordering::Relaxed);
        self.sent.store(s.sent, Ordering::Relaxed);
        self.recv.store(s.recv, Ordering::Relaxed);
        self.cycle.store(s.cycle, Ordering::Relaxed);
        self.version.store(v.wrapping_add(2), Ordering::Release);
    }

    /// The current version (even = stable).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Reads a consistent `(version, state)` pair (seqlock retry loop).
    pub fn read(&self) -> (u64, LedgerState) {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let s = LedgerState {
                busy: self.busy.load(Ordering::Relaxed),
                finished: self.finished.load(Ordering::Relaxed) != 0,
                next_event: self.next_event.load(Ordering::Relaxed),
                sent: self.sent.load(Ordering::Relaxed),
                recv: self.recv.load(Ordering::Relaxed),
                cycle: self.cycle.load(Ordering::Relaxed),
            };
            // The acquire fence keeps the field loads above from being
            // reordered past the validating version re-read: an unchanged
            // version then proves every field was read while the slot was
            // stable.
            std::sync::atomic::fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) == v1 {
                return (v1, s);
            }
            std::hint::spin_loop();
        }
    }
}

/// Pure evaluation of the quiescence conditions over one consistent vector of
/// ledger states. This is the function the proptests drill: it must never
/// accept a vector with unbalanced credits or a busy shard.
pub fn credits_balance(states: &[LedgerState]) -> bool {
    let sent: u64 = states.iter().map(|s| s.sent).sum();
    let recv: u64 = states.iter().map(|s| s.recv).sum();
    states.iter().all(|s| s.busy == 0) && sent == recv
}

/// What a quiescence scan concluded.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Quiescence {
    /// Some shard is busy, credits are outstanding, or the snapshot was torn.
    Active,
    /// Globally idle with balanced credits; `next_event` is the earliest
    /// future agent event (`u64::MAX` = none) and `finished` whether every
    /// agent completed. `cycle` is the newest shard clock in the snapshot.
    Idle {
        /// Every agent on every shard reports completion.
        finished: bool,
        /// Earliest future agent event across all shards.
        next_event: u64,
        /// Newest shard clock observed in the snapshot.
        cycle: u64,
    },
}

/// Two-wave consistent scan over a set of ledgers.
///
/// `read` returns the `(version, state)` of ledger `i` (wave one also uses
/// it); `reread_version` returns just the current version of ledger `i`. The
/// scan declares [`Quiescence::Idle`] only if the conditions hold on wave one
/// *and* no version moved by wave two.
pub struct QuiescenceScan {
    wave1: Vec<(u64, LedgerState)>,
}

impl QuiescenceScan {
    /// Runs the scan over `n` ledgers.
    pub fn run(
        n: usize,
        mut read: impl FnMut(usize) -> (u64, LedgerState),
        mut reread_version: impl FnMut(usize) -> u64,
    ) -> Quiescence {
        let mut scan = Self {
            wave1: Vec::with_capacity(n),
        };
        for i in 0..n {
            scan.wave1.push(read(i));
        }
        let states: Vec<LedgerState> = scan.wave1.iter().map(|&(_, s)| s).collect();
        if !credits_balance(&states) {
            return Quiescence::Active;
        }
        // Wave two: the evaluation above only describes a single instant if
        // no ledger was republished while we were reading.
        for (i, &(v1, _)) in scan.wave1.iter().enumerate() {
            if reread_version(i) != v1 {
                return Quiescence::Active;
            }
        }
        Quiescence::Idle {
            finished: states.iter().all(|s| s.finished),
            next_event: states
                .iter()
                .map(|s| s.next_event)
                .min()
                .unwrap_or(u64::MAX),
            cycle: states.iter().map(|s| s.cycle).max().unwrap_or(0),
        }
    }
}

/// Convenience: runs a [`QuiescenceScan`] over shared-memory ledgers.
pub fn scan_ledgers(ledgers: &[ShardLedger]) -> Quiescence {
    QuiescenceScan::run(
        ledgers.len(),
        |i| ledgers[i].read(),
        |i| ledgers[i].version(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle(sent: u64, recv: u64) -> LedgerState {
        LedgerState {
            busy: 0,
            finished: true,
            next_event: u64::MAX,
            sent,
            recv,
            cycle: 10,
        }
    }

    #[test]
    fn balanced_idle_ledgers_are_quiescent() {
        let ledgers: Vec<ShardLedger> = (0..3).map(|_| ShardLedger::new()).collect();
        for (i, l) in ledgers.iter().enumerate() {
            l.publish(&idle(5 + i as u64, 6 + i as u64 % 2));
        }
        // sent = 5+6+7 = 18, recv = 6+7+6 = 19: unbalanced.
        assert_eq!(scan_ledgers(&ledgers), Quiescence::Active);
        for l in &ledgers {
            l.publish(&idle(4, 4));
        }
        assert_eq!(
            scan_ledgers(&ledgers),
            Quiescence::Idle {
                finished: true,
                next_event: u64::MAX,
                cycle: 10
            }
        );
    }

    #[test]
    fn in_flight_credit_blocks_quiescence() {
        let ledgers: Vec<ShardLedger> = (0..2).map(|_| ShardLedger::new()).collect();
        // Shard 0 sent a flit shard 1 has not yet received.
        ledgers[0].publish(&idle(3, 0));
        ledgers[1].publish(&idle(0, 2));
        assert_eq!(scan_ledgers(&ledgers), Quiescence::Active);
    }

    #[test]
    fn busy_shard_blocks_quiescence() {
        let ledgers: Vec<ShardLedger> = (0..2).map(|_| ShardLedger::new()).collect();
        ledgers[0].publish(&idle(1, 1));
        ledgers[1].publish(&LedgerState {
            busy: 2,
            ..idle(1, 1)
        });
        assert_eq!(scan_ledgers(&ledgers), Quiescence::Active);
    }

    #[test]
    fn unpublished_ledger_blocks_quiescence() {
        let ledgers: Vec<ShardLedger> = (0..2).map(|_| ShardLedger::new()).collect();
        ledgers[0].publish(&idle(0, 0));
        // Ledger 1 still holds the conservative initial state (busy).
        assert_eq!(scan_ledgers(&ledgers), Quiescence::Active);
    }

    #[test]
    fn version_movement_between_waves_blocks_quiescence() {
        let ledgers: Vec<ShardLedger> = (0..2).map(|_| ShardLedger::new()).collect();
        ledgers[0].publish(&idle(1, 1));
        ledgers[1].publish(&idle(0, 0));
        let verdict = QuiescenceScan::run(
            2,
            |i| ledgers[i].read(),
            |i| {
                // A publish sneaks in between the waves.
                ledgers[i].publish(&idle(0, 0));
                ledgers[i].version()
            },
        );
        assert_eq!(verdict, Quiescence::Active);
    }

    #[test]
    fn unfinished_and_next_event_are_reported() {
        let ledgers: Vec<ShardLedger> = (0..2).map(|_| ShardLedger::new()).collect();
        ledgers[0].publish(&LedgerState {
            finished: false,
            next_event: 120,
            ..idle(2, 1)
        });
        ledgers[1].publish(&LedgerState {
            next_event: 90,
            ..idle(1, 2)
        });
        assert_eq!(
            scan_ledgers(&ledgers),
            Quiescence::Idle {
                finished: false,
                next_event: 90,
                cycle: 10
            }
        );
    }
}
