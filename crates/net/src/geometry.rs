//! Interconnect geometry.
//!
//! Nodes can be connected pairwise to form any geometry; this module provides
//! ready-made builders for the topologies the paper uses (2-D meshes and tori,
//! rings) as well as the multi-layer 3-D mesh variants of Figure 4
//! (`x1`, `x1y1`, `xcube`) and fully custom connection lists.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A bidirectional connection between two nodes (one physical link, modeled as
/// a pair of unidirectional channels unless bandwidth-adaptive links are
/// enabled).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Connection {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
}

impl Connection {
    /// Creates a connection between two distinct nodes, normalising the order.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-links are not meaningful).
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "a node cannot be connected to itself");
        if a <= b {
            Self { a, b }
        } else {
            Self { a: b, b: a }
        }
    }

    /// Given one endpoint, returns the other; `None` if `n` is not an endpoint.
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// The topology family a geometry was built from; retained because routing
/// table generators need coordinates for mesh-like topologies.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Linear array of `n` nodes.
    Line { n: usize },
    /// Ring of `n` nodes.
    Ring { n: usize },
    /// 2-D mesh, `width × height`, row-major numbering.
    Mesh2D { width: usize, height: usize },
    /// 2-D torus (mesh plus wraparound links).
    Torus2D { width: usize, height: usize },
    /// Multi-layer (3-D) mesh. `vertical` selects the inter-layer connectivity
    /// of Figure 4.
    Mesh3D {
        /// X dimension of each layer.
        width: usize,
        /// Y dimension of each layer.
        height: usize,
        /// Number of layers.
        layers: usize,
        /// Inter-layer connectivity style.
        vertical: VerticalLinks,
    },
    /// Arbitrary user-provided connection list.
    Custom { n: usize },
}

/// Inter-layer connectivity for multi-layer meshes (paper Figure 4).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerticalLinks {
    /// `x1`: one vertical pillar per layer pair (at x = 0, y = 0).
    X1,
    /// `x1y1`: vertical pillars along the x = 0 column and y = 0 row.
    X1Y1,
    /// `xcube`: every node is connected to the node above/below it.
    XCube,
}

/// An interconnect geometry: a set of nodes and the connections between them.
///
/// ```
/// use hornet_net::geometry::Geometry;
/// let g = Geometry::mesh2d(3, 3);
/// assert_eq!(g.node_count(), 9);
/// // An interior node of a 3x3 mesh has four neighbours.
/// assert_eq!(g.neighbors(hornet_net::ids::NodeId::new(4)).len(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    topology: Topology,
    node_count: usize,
    connections: Vec<Connection>,
    /// neighbors[i] = sorted list of neighbours of node i.
    neighbors: Vec<Vec<NodeId>>,
}

impl fmt::Debug for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Geometry")
            .field("topology", &self.topology)
            .field("node_count", &self.node_count)
            .field("connections", &self.connections.len())
            .finish()
    }
}

impl Geometry {
    fn from_connections(topology: Topology, node_count: usize, conns: Vec<Connection>) -> Self {
        let set: BTreeSet<Connection> = conns.into_iter().collect();
        let connections: Vec<Connection> = set.into_iter().collect();
        let mut neighbors = vec![Vec::new(); node_count];
        for c in &connections {
            neighbors[c.a.index()].push(c.b);
            neighbors[c.b.index()].push(c.a);
        }
        for n in &mut neighbors {
            n.sort();
            n.dedup();
        }
        Self {
            topology,
            node_count,
            connections,
            neighbors,
        }
    }

    /// A linear array of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn line(n: usize) -> Self {
        assert!(n > 0, "a geometry needs at least one node");
        let conns = (1..n)
            .map(|i| Connection::new(NodeId::from(i - 1), NodeId::from(i)))
            .collect();
        Self::from_connections(Topology::Line { n }, n, conns)
    }

    /// A ring of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least three nodes");
        let mut conns: Vec<Connection> = (1..n)
            .map(|i| Connection::new(NodeId::from(i - 1), NodeId::from(i)))
            .collect();
        conns.push(Connection::new(NodeId::from(n - 1), NodeId::from(0usize)));
        Self::from_connections(Topology::Ring { n }, n, conns)
    }

    /// A `width × height` 2-D mesh with row-major node numbering.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh2d(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        let mut conns = Vec::new();
        for y in 0..height {
            for x in 0..width {
                let id = y * width + x;
                if x + 1 < width {
                    conns.push(Connection::new(NodeId::from(id), NodeId::from(id + 1)));
                }
                if y + 1 < height {
                    conns.push(Connection::new(NodeId::from(id), NodeId::from(id + width)));
                }
            }
        }
        Self::from_connections(Topology::Mesh2D { width, height }, width * height, conns)
    }

    /// A `width × height` 2-D torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 3 (wraparound links would
    /// duplicate mesh links otherwise).
    pub fn torus2d(width: usize, height: usize) -> Self {
        assert!(width >= 3 && height >= 3, "torus dimensions must be >= 3");
        let mesh = Self::mesh2d(width, height);
        let mut conns = mesh.connections.clone();
        for y in 0..height {
            conns.push(Connection::new(
                NodeId::from(y * width),
                NodeId::from(y * width + width - 1),
            ));
        }
        for x in 0..width {
            conns.push(Connection::new(
                NodeId::from(x),
                NodeId::from((height - 1) * width + x),
            ));
        }
        Self::from_connections(Topology::Torus2D { width, height }, width * height, conns)
    }

    /// A multi-layer 3-D mesh (paper Figure 4). Layers are stacked copies of a
    /// `width × height` 2-D mesh; `vertical` selects which nodes get
    /// inter-layer links.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn mesh3d(width: usize, height: usize, layers: usize, vertical: VerticalLinks) -> Self {
        assert!(
            width > 0 && height > 0 && layers > 0,
            "mesh dimensions must be non-zero"
        );
        let per_layer = width * height;
        let mut conns = Vec::new();
        for l in 0..layers {
            let base = l * per_layer;
            for y in 0..height {
                for x in 0..width {
                    let id = base + y * width + x;
                    if x + 1 < width {
                        conns.push(Connection::new(NodeId::from(id), NodeId::from(id + 1)));
                    }
                    if y + 1 < height {
                        conns.push(Connection::new(NodeId::from(id), NodeId::from(id + width)));
                    }
                    if l + 1 < layers {
                        let above = id + per_layer;
                        let link = match vertical {
                            VerticalLinks::XCube => true,
                            VerticalLinks::X1 => x == 0 && y == 0,
                            VerticalLinks::X1Y1 => x == 0 || y == 0,
                        };
                        if link {
                            conns.push(Connection::new(NodeId::from(id), NodeId::from(above)));
                        }
                    }
                }
            }
        }
        Self::from_connections(
            Topology::Mesh3D {
                width,
                height,
                layers,
                vertical,
            },
            per_layer * layers,
            conns,
        )
    }

    /// A geometry from an explicit connection list over `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if a connection references a node `>= node_count`.
    pub fn custom(node_count: usize, connections: Vec<Connection>) -> Self {
        for c in &connections {
            assert!(
                c.a.index() < node_count && c.b.index() < node_count,
                "connection {c:?} references a node outside 0..{node_count}"
            );
        }
        Self::from_connections(Topology::Custom { n: node_count }, node_count, connections)
    }

    /// The topology family this geometry was built from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All connections (each physical link once).
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Neighbours of a node, sorted by node id.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.neighbors[n.index()]
    }

    /// All node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId::from)
    }

    /// True if the two nodes are directly connected.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors[a.index()].binary_search(&b).is_ok()
    }

    /// (x, y, layer) coordinates of a node, for mesh-like topologies.
    ///
    /// Returns `None` for topologies without a natural coordinate system
    /// (`Custom`).
    pub fn coords(&self, n: NodeId) -> Option<(usize, usize, usize)> {
        let i = n.index();
        match self.topology {
            Topology::Line { .. } | Topology::Ring { .. } => Some((i, 0, 0)),
            Topology::Mesh2D { width, .. } | Topology::Torus2D { width, .. } => {
                Some((i % width, i / width, 0))
            }
            Topology::Mesh3D { width, height, .. } => {
                let per_layer = width * height;
                let l = i / per_layer;
                let r = i % per_layer;
                Some((r % width, r / width, l))
            }
            Topology::Custom { .. } => None,
        }
    }

    /// Node at (x, y, layer), for mesh-like topologies.
    pub fn node_at(&self, x: usize, y: usize, layer: usize) -> Option<NodeId> {
        match self.topology {
            Topology::Line { n } | Topology::Ring { n } => {
                (y == 0 && layer == 0 && x < n).then(|| NodeId::from(x))
            }
            Topology::Mesh2D { width, height } | Topology::Torus2D { width, height } => {
                (x < width && y < height && layer == 0).then(|| NodeId::from(y * width + x))
            }
            Topology::Mesh3D {
                width,
                height,
                layers,
                ..
            } => (x < width && y < height && layer < layers)
                .then(|| NodeId::from(layer * width * height + y * width + x)),
            Topology::Custom { .. } => None,
        }
    }

    /// Width of the mesh (x dimension), if mesh-like.
    pub fn width(&self) -> Option<usize> {
        match self.topology {
            Topology::Line { n } | Topology::Ring { n } => Some(n),
            Topology::Mesh2D { width, .. }
            | Topology::Torus2D { width, .. }
            | Topology::Mesh3D { width, .. } => Some(width),
            Topology::Custom { .. } => None,
        }
    }

    /// Height of the mesh (y dimension), if mesh-like.
    pub fn height(&self) -> Option<usize> {
        match self.topology {
            Topology::Line { .. } | Topology::Ring { .. } => Some(1),
            Topology::Mesh2D { height, .. }
            | Topology::Torus2D { height, .. }
            | Topology::Mesh3D { height, .. } => Some(height),
            Topology::Custom { .. } => None,
        }
    }

    /// Minimal hop distance between two nodes (breadth-first search; exact for
    /// any geometry).
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> usize {
        if from == to {
            return 0;
        }
        let mut dist = vec![usize::MAX; self.node_count];
        let mut queue = std::collections::VecDeque::new();
        dist[from.index()] = 0;
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()];
            for &w in self.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = d + 1;
                    if w == to {
                        return d + 1;
                    }
                    queue.push_back(w);
                }
            }
        }
        usize::MAX
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        let mut seen = vec![false; self.node_count];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(NodeId::from(0usize));
        let mut count = 1usize;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    queue.push_back(w);
                }
            }
        }
        count == self.node_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh2d_structure() {
        let g = Geometry::mesh2d(3, 3);
        assert_eq!(g.node_count(), 9);
        // 2 * 3 * 2 = 12 links in a 3x3 mesh.
        assert_eq!(g.connections().len(), 12);
        // Corner has 2 neighbours, edge 3, centre 4.
        assert_eq!(g.neighbors(NodeId::new(0)).len(), 2);
        assert_eq!(g.neighbors(NodeId::new(1)).len(), 3);
        assert_eq!(g.neighbors(NodeId::new(4)).len(), 4);
        assert!(g.is_connected());
        assert_eq!(g.coords(NodeId::new(5)), Some((2, 1, 0)));
        assert_eq!(g.node_at(2, 1, 0), Some(NodeId::new(5)));
    }

    #[test]
    fn torus_has_wraparound() {
        let g = Geometry::torus2d(4, 4);
        assert_eq!(g.node_count(), 16);
        // Every node in a torus has exactly 4 neighbours.
        for n in g.nodes() {
            assert_eq!(g.neighbors(n).len(), 4, "node {n}");
        }
        assert!(g.connected(NodeId::new(0), NodeId::new(3)));
        assert!(g.connected(NodeId::new(0), NodeId::new(12)));
    }

    #[test]
    fn ring_and_line() {
        let r = Geometry::ring(5);
        assert!(r.connected(NodeId::new(0), NodeId::new(4)));
        assert_eq!(r.hop_distance(NodeId::new(0), NodeId::new(3)), 2);
        let l = Geometry::line(5);
        assert!(!l.connected(NodeId::new(0), NodeId::new(4)));
        assert_eq!(l.hop_distance(NodeId::new(0), NodeId::new(4)), 4);
    }

    #[test]
    fn mesh3d_variants_have_expected_vertical_links() {
        let per_layer_links = |g: &Geometry| {
            g.connections()
                .iter()
                .filter(|c| {
                    let (.., la) = g.coords(c.a).unwrap();
                    let (.., lb) = g.coords(c.b).unwrap();
                    la != lb
                })
                .count()
        };
        let x1 = Geometry::mesh3d(3, 3, 2, VerticalLinks::X1);
        let x1y1 = Geometry::mesh3d(3, 3, 2, VerticalLinks::X1Y1);
        let xcube = Geometry::mesh3d(3, 3, 2, VerticalLinks::XCube);
        assert_eq!(per_layer_links(&x1), 1);
        assert_eq!(per_layer_links(&x1y1), 5); // x==0 column (3) + y==0 row (3) - corner counted once
        assert_eq!(per_layer_links(&xcube), 9);
        assert!(x1.is_connected() && x1y1.is_connected() && xcube.is_connected());
    }

    #[test]
    fn custom_geometry_rejects_out_of_range() {
        let conns = vec![Connection::new(NodeId::new(0), NodeId::new(1))];
        let g = Geometry::custom(2, conns);
        assert_eq!(g.node_count(), 2);
        assert!(g.is_connected());
        let result = std::panic::catch_unwind(|| {
            Geometry::custom(2, vec![Connection::new(NodeId::new(0), NodeId::new(5))])
        });
        assert!(result.is_err());
    }

    #[test]
    fn connection_normalises_order_and_rejects_self_link() {
        let c = Connection::new(NodeId::new(7), NodeId::new(2));
        assert_eq!(c.a, NodeId::new(2));
        assert_eq!(c.b, NodeId::new(7));
        assert_eq!(c.other(NodeId::new(2)), Some(NodeId::new(7)));
        assert_eq!(c.other(NodeId::new(9)), None);
        assert!(
            std::panic::catch_unwind(|| Connection::new(NodeId::new(1), NodeId::new(1))).is_err()
        );
    }

    #[test]
    fn duplicate_connections_are_deduplicated() {
        let conns = vec![
            Connection::new(NodeId::new(0), NodeId::new(1)),
            Connection::new(NodeId::new(1), NodeId::new(0)),
        ];
        let g = Geometry::custom(2, conns);
        assert_eq!(g.connections().len(), 1);
        assert_eq!(g.neighbors(NodeId::new(0)).len(), 1);
    }

    #[test]
    fn hop_distance_disconnected_is_max() {
        let g = Geometry::custom(3, vec![Connection::new(NodeId::new(0), NodeId::new(1))]);
        assert!(!g.is_connected());
        assert_eq!(g.hop_distance(NodeId::new(0), NodeId::new(2)), usize::MAX);
    }
}
