//! A fixed-capacity lock-free single-producer single-consumer ring.
//!
//! This is the primitive under every boundary transport: the in-process
//! thread backend shares one ring directly between two shard workers, while
//! the multi-process backends (shared-memory segments, sockets) use rings as
//! the staging buffers between a shard loop and its transport pump. Split out
//! of `boundary` so transports can reason about the ring independently of the
//! credit protocol layered on top.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity lock-free single-producer single-consumer ring.
///
/// `head` is owned by the consumer, `tail` by the producer; each side only
/// ever stores to its own cursor (with `Release`) and reads the other side's
/// with `Acquire`. Slot `i` is written exactly once per lap by the producer
/// (who proved `tail - head < capacity`) and read exactly once by the consumer
/// (who proved `head < tail`), so the accesses never overlap.
///
/// The single-producer / single-consumer discipline is a *protocol* contract:
/// the sharded runtime hands the producer end to exactly one worker (the
/// sender shard) and the consumer end to exactly one worker (the receiver
/// shard), with hand-offs between runs ordered by channel sends.
pub struct Spsc<T: Copy> {
    capacity: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor: items popped so far.
    head: AtomicU64,
    /// Producer cursor: items pushed so far.
    tail: AtomicU64,
}

// SAFETY: see the struct-level synchronization argument; `T: Copy` means no
// drop obligations for slots that are overwritten a lap later.
unsafe impl<T: Copy + Send> Send for Spsc<T> {}
unsafe impl<T: Copy + Send> Sync for Spsc<T> {}

impl<T: Copy> std::fmt::Debug for Spsc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spsc")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T: Copy> Spsc<T> {
    /// Creates a ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an SPSC ring needs capacity for one item");
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            capacity,
            slots,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }

    /// Maximum number of items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently in the ring (racy but monotone-consistent: safe for
    /// occupancy/idle accounting from either end).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// True if the ring holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative items pushed over the ring's lifetime (the producer cursor).
    /// Monotone; the credit-counting termination detector reads this as the
    /// channel's `sent` count.
    pub fn pushed(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    /// Cumulative items popped over the ring's lifetime (the consumer
    /// cursor). Monotone.
    pub fn popped(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Producer side: appends an item. Returns `false` if the ring is full.
    #[must_use]
    pub fn push(&self, value: T) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail - head >= self.capacity as u64 {
            return false;
        }
        // SAFETY: `tail - head < capacity` proves the consumer has finished
        // with this slot (it will not read it again until tail advances past
        // it), and we are the only producer.
        unsafe {
            (*self.slots[(tail % self.capacity as u64) as usize].get()).write(value);
        }
        self.tail.store(tail + 1, Ordering::Release);
        true
    }

    /// Consumer side: pops the head item if `pred` accepts it.
    pub fn pop_if(&self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head >= tail {
            return None;
        }
        // SAFETY: `head < tail` with the acquire load above proves the
        // producer published this slot; we are the only consumer.
        let value =
            unsafe { (*self.slots[(head % self.capacity as u64) as usize].get()).assume_init() };
        if pred(&value) {
            self.head.store(head + 1, Ordering::Release);
            Some(value)
        } else {
            None
        }
    }

    /// Consumer side: pops the head item unconditionally.
    pub fn pop(&self) -> Option<T> {
        self.pop_if(|_| true)
    }

    /// Consumer side: a non-destructive copy of every item currently in the
    /// ring, in FIFO order (checkpoint capture). Reads `tail` once, so it is
    /// safe to call while the producer is still appending — items published
    /// after the load are simply not part of the snapshot.
    pub fn snapshot(&self) -> Vec<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        (head..tail)
            // SAFETY: `pos < tail` with the acquire load above proves the
            // producer published the slot; we are the only consumer, and we
            // do not advance `head`, so the producer cannot reuse it.
            .map(|pos| unsafe {
                (*self.slots[(pos % self.capacity as u64) as usize].get()).assume_init()
            })
            .collect()
    }

    /// Sets both cursors of an *empty, quiescent* ring to `count`, as if
    /// `count` items had been pushed and popped over its lifetime. Checkpoint
    /// restore uses this to re-establish the cumulative `pushed`/`popped`
    /// counters the credit-counting termination detector balances against;
    /// kept items are re-`push`ed afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the ring is not empty — rebasing would orphan its items.
    pub fn rebase(&self, count: u64) {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        assert_eq!(head, tail, "rebase requires an empty ring");
        self.head.store(count, Ordering::Release);
        self.tail.store(count, Ordering::Release);
    }
}
