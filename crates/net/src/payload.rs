//! Out-of-band payload transport (DMA model).
//!
//! The cycle-level network model moves *flits*, which carry timing and
//! identity but not bulk data — exactly like HORNET, where packet contents are
//! DMA-ed functionally while the NoC model provides the timing. The
//! [`PayloadStore`] is the functional side of that DMA: the sending bridge
//! deposits the full packet (with payload) keyed by packet id, and the
//! receiving bridge claims it when the tail flit arrives. It is sharded to
//! keep lock contention negligible.

use crate::flit::Packet;
use crate::ids::PacketId;
use parking_lot::Mutex;
use std::collections::HashMap;

const SHARDS: usize = 64;

/// A sharded, thread-safe map from packet id to the in-flight packet.
#[derive(Debug)]
pub struct PayloadStore {
    shards: Vec<Mutex<HashMap<PacketId, Packet>>>,
}

impl Default for PayloadStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PayloadStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, id: PacketId) -> &Mutex<HashMap<PacketId, Packet>> {
        &self.shards[(id.raw() as usize) % SHARDS]
    }

    /// Deposits a packet (with its payload) for later pickup at the
    /// destination.
    pub fn deposit(&self, packet: Packet) {
        self.shard(packet.id).lock().insert(packet.id, packet);
    }

    /// Claims (removes and returns) the packet with the given id, if present.
    pub fn claim(&self, id: PacketId) -> Option<Packet> {
        self.shard(id).lock().remove(&id)
    }

    /// Number of packets currently parked in the store.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no packet is parked in the store.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checkpoint capture: every parked packet, sorted by packet id so the
    /// serialized form is deterministic regardless of hash-map iteration
    /// order.
    pub fn snapshot_packets(&self) -> Vec<Packet> {
        let mut all: Vec<Packet> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().values().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|p| p.id.raw());
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Payload;
    use crate::ids::{FlowId, NodeId};

    fn packet(id: u64) -> Packet {
        Packet::new(
            PacketId::new(id),
            FlowId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            2,
            0,
        )
        .with_payload(Payload::from_words(&[id]))
    }

    #[test]
    fn deposit_and_claim_roundtrip() {
        let store = PayloadStore::new();
        assert!(store.is_empty());
        store.deposit(packet(5));
        store.deposit(packet(69)); // same shard as 5 with 64 shards
        assert_eq!(store.len(), 2);
        let p = store.claim(PacketId::new(5)).expect("present");
        assert_eq!(p.payload.words(), &[5]);
        assert!(store.claim(PacketId::new(5)).is_none(), "claim removes");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn concurrent_deposit_and_claim() {
        use std::sync::Arc;
        let store = Arc::new(PayloadStore::new());
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..1000u64 {
                    store.deposit(packet(i));
                }
            })
        };
        let reader = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut claimed = 0usize;
                while claimed < 1000 {
                    for i in 0..1000u64 {
                        if store.claim(PacketId::new(i)).is_some() {
                            claimed += 1;
                        }
                    }
                }
                claimed
            })
        };
        writer.join().unwrap();
        assert_eq!(reader.join().unwrap(), 1000);
        assert!(store.is_empty());
    }
}
