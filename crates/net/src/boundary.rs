//! Cross-shard boundary channels: lock-free SPSC mailboxes for flits and
//! credits crossing a cut link.
//!
//! When the sharded runtime (the `hornet-shard` crate) partitions the tiles of
//! a network across worker threads, every link whose endpoints land in
//! different shards — a *cut link* — is rewired. The downstream ingress
//! [`VcBuffer`]s stay entirely shard-local (only the owning worker touches
//! them); in their place the upstream router's egress port is given a
//! [`BoundaryLink`] per virtual channel:
//!
//! * **flits** travel through a fixed-capacity lock-free SPSC ring
//!   ([`Spsc`]), written by the sender's negative clock edge and drained by
//!   the receiving worker at the top of each of its cycles. Each flit already
//!   carries its `visible_at` cycle stamp, so the receiver can consume
//!   *conservatively* (only flits whose stamp has come due) when bit-exact
//!   reproduction of the sequential schedule is required, or *greedily* under
//!   slack synchronization;
//! * **credits** return through a second SPSC ring of cycle-stamped
//!   [`CreditMsg`] records, emitted by the receiving worker after its negative
//!   edge (one message summarizing the flits its router drained that cycle)
//!   and folded into the sender-side `outstanding` counter before the
//!   sender's next positive edge.
//!
//! The sender's credit check — `free_space()` on the [`BoundaryLink`] — is a
//! single atomic load of `outstanding` (flits sent minus credits applied), so
//! cross-shard traffic never touches a lock of any kind, let alone a global
//! one. Because `outstanding` is only decremented *after* a credit message is
//! consumed, `flits-in-ring + flits-in-downstream-buffer ≤ capacity` holds at
//! all times; a ring sized to the VC capacity can therefore never overflow,
//! and a drained flit always fits in the downstream buffer.
//!
//! [`EgressChannel`] is the small enum that lets a router's egress port face
//! either a local shared [`VcBuffer`] (sequential and intra-shard links) or a
//! [`BoundaryLink`] (cut links) with identical credit semantics.

use crate::flit::Flit;
use crate::ids::Cycle;
use crate::vcbuf::VcBuffer;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

pub use crate::spsc::Spsc;

/// A cycle-stamped credit return: `count` flits left the downstream ingress
/// buffer during the receiver's cycle `cycle`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CreditMsg {
    /// Receiver-local cycle whose negative edge freed the buffer slots.
    pub cycle: Cycle,
    /// Number of slots freed.
    pub count: u32,
}

/// One virtual channel of one *directed* cut link: the flit mailbox, the
/// credit mailbox, and the sender-side credit state.
#[derive(Debug)]
pub struct BoundaryLink {
    capacity: usize,
    /// Sender-side view of the downstream VC occupancy: flits pushed minus
    /// credits applied. Includes flits still in flight in the mailbox, which
    /// is exactly what makes the credit check conservative.
    outstanding: AtomicUsize,
    flits: Spsc<Flit>,
    credits: Spsc<CreditMsg>,
}

impl BoundaryLink {
    /// Creates a boundary link mirroring a downstream VC of `capacity` flits.
    pub fn new(capacity: usize) -> Arc<Self> {
        Self::with_resident(capacity, 0)
    }

    /// Creates a boundary link for a downstream VC that already holds
    /// `resident` flits (wiring mid-simulation): the sender's credit view
    /// must start at the real occupancy or it would oversubscribe the buffer
    /// and diverge from the sequential schedule.
    pub fn with_resident(capacity: usize, resident: usize) -> Arc<Self> {
        let capacity = capacity.max(1);
        Arc::new(Self {
            capacity,
            outstanding: AtomicUsize::new(resident.min(capacity)),
            flits: Spsc::new(capacity),
            // One slot more than the credit count bound: in lock-step the
            // receiver's emission for cycle c+1 can race ahead of the
            // sender's consumption of the cycle-c message, so up to
            // `capacity + 1` messages may momentarily coexist. A full ring
            // would defer (and re-stamp) a credit, silently breaking strict
            //-mode bit-identity for capacity-1 VCs.
            credits: Spsc::new(capacity + 1),
        })
    }

    /// Downstream VC capacity, in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sender-side occupancy view (downstream-resident plus in-flight flits).
    pub fn occupancy(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Free space as seen by the sender's credit check.
    pub fn free_space(&self) -> usize {
        self.capacity.saturating_sub(self.occupancy())
    }

    /// Flits currently in flight in the mailbox (not yet drained by the
    /// receiver); used for idle detection at synchronization boundaries.
    pub fn in_flight(&self) -> usize {
        self.flits.len()
    }

    /// Sender side: sends a flit across the cut link. Returns `false` without
    /// sending if no credit is available (callers have already performed a
    /// credit check, so `false` indicates a flow-control bug upstream).
    #[must_use]
    pub fn push(&self, flit: Flit) -> bool {
        let prev = self.outstanding.fetch_add(1, Ordering::AcqRel);
        if prev >= self.capacity {
            self.outstanding.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        // `outstanding ≤ capacity` now holds, which bounds ring occupancy by
        // `capacity`: this push cannot fail.
        let ok = self.flits.push(flit);
        debug_assert!(ok, "boundary flit ring overflow despite credit check");
        ok
    }

    /// Sender side: folds returned credits into the outstanding counter.
    /// With `limit = Some(c)` only credits stamped `≤ c` are consumed (the
    /// bit-exact schedule: the sender observes exactly the pops the global
    /// barrier would have made visible); with `None` every queued credit is
    /// consumed.
    pub fn apply_credits(&self, limit: Option<Cycle>) {
        while let Some(msg) = self.credits.pop_if(|m| limit.is_none_or(|c| m.cycle <= c)) {
            self.outstanding
                .fetch_sub(msg.count as usize, Ordering::AcqRel);
        }
    }

    /// Cumulative flits pushed into this link over its lifetime. Monotone;
    /// this is the sender-side `sent` count the credit-counting termination
    /// detector balances against the receiver's delivery count.
    pub fn flits_pushed(&self) -> u64 {
        self.flits.pushed()
    }

    // --- transport-side raw endpoints -----------------------------------
    //
    // The multi-process backends split one logical cut link into two local
    // half-links: an *outbound* half whose flit ring is drained to the wire
    // by a transport pump, and an *inbound* half whose flit ring is filled
    // from the wire. The pump plays the role of the remote peer, so it needs
    // ring access that bypasses the sender-side credit accounting (credits
    // are tracked end-to-end by the shard loops, not per hop).

    /// Transport pump (consumer side of an outbound half): drains every
    /// staged flit, in order, into `f`. Returns the number drained.
    pub fn drain_staged_flits(&self, mut f: impl FnMut(Flit)) -> usize {
        let mut n = 0;
        while let Some(flit) = self.flits.pop() {
            f(flit);
            n += 1;
        }
        n
    }

    /// Transport pump (producer side of an inbound half): appends a flit
    /// that arrived from the wire *without* touching the credit window — the
    /// end-to-end credit check already ran on the sending shard. Returns
    /// `false` if the ring is full (a protocol violation: end-to-end credits
    /// bound ring occupancy by its capacity).
    #[must_use]
    pub fn inject_flit(&self, flit: Flit) -> bool {
        self.flits.push(flit)
    }

    /// Transport pump (consumer side of an inbound half): takes one staged
    /// credit message for forwarding to the wire.
    pub fn take_staged_credit(&self) -> Option<CreditMsg> {
        self.credits.pop()
    }

    /// Transport pump (producer side of an outbound half): appends a credit
    /// message that arrived from the wire, to be folded in by the sender's
    /// next [`apply_credits`](Self::apply_credits). Returns `false` if the
    /// ring is full (retry after the shard loop drains it).
    #[must_use]
    pub fn inject_credit(&self, msg: CreditMsg) -> bool {
        self.credits.push(msg)
    }

    // --- checkpoint capture / restore ------------------------------------
    //
    // A checkpoint taken at a rendezvous cycle captures the raw channel
    // state as plain data; the serialization lives with the caller (the
    // shard snapshot module), keeping this module codec-free.

    /// Checkpoint capture: every flit currently staged in the mailbox, in
    /// FIFO order. Safe to call while the producer side is still live.
    pub fn staged_flit_snapshot(&self) -> Vec<Flit> {
        self.flits.snapshot()
    }

    /// Checkpoint capture: every credit message currently staged, in FIFO
    /// order.
    pub fn staged_credit_snapshot(&self) -> Vec<CreditMsg> {
        self.credits.snapshot()
    }

    /// Checkpoint restore of the *sender* side of a link (an outbound half
    /// under the multi-process backends): re-establishes the cumulative
    /// `pushed` cursor the credit-counting termination detector balances
    /// against, refills both rings with the checkpointed items and restores
    /// the sender's credit window.
    ///
    /// Must be called on a freshly created, never-used link.
    ///
    /// # Panics
    ///
    /// Panics if the link has already carried traffic or if the checkpointed
    /// items no longer fit (both indicate a corrupt checkpoint).
    pub fn restore_outbound(
        &self,
        pushed: u64,
        outstanding: usize,
        flits: &[Flit],
        credits: &[CreditMsg],
    ) {
        self.flits.rebase(pushed - flits.len() as u64);
        for &f in flits {
            assert!(self.flits.push(f), "checkpointed flit overflows the ring");
        }
        for &c in credits {
            assert!(
                self.credits.push(c),
                "checkpointed credit overflows the ring"
            );
        }
        self.outstanding
            .store(outstanding.min(self.capacity), Ordering::Release);
    }

    /// Checkpoint restore of the *receiver* side of a link (an inbound half
    /// under the multi-process backends): refills the mailbox with the flits
    /// that were in flight at the checkpoint. The fresh ring's zero cursor
    /// base is kept — receiver-side delivery totals are restored in the
    /// cycle driver, not here.
    ///
    /// # Panics
    ///
    /// Panics if the checkpointed flits no longer fit.
    pub fn restore_inbound(&self, flits: &[Flit]) {
        for &f in flits {
            assert!(self.flits.push(f), "checkpointed flit overflows the ring");
        }
    }
}

/// The receiver-side endpoint of one boundary link: drains the flit mailbox
/// into the real (shard-local) ingress [`VcBuffer`] and emits credits for the
/// flits the router has consumed. Owned by exactly one worker at a time.
#[derive(Debug)]
pub struct BoundaryRx {
    link: Arc<BoundaryLink>,
    target: Arc<VcBuffer>,
    /// Flits resident in `target` when the link was wired (their pops must
    /// produce credits too, since they are part of the sender's initial
    /// `outstanding`).
    baseline: u64,
    /// Flits moved from the mailbox into `target` so far.
    forwarded: u64,
    /// Credits successfully enqueued so far.
    credited: u64,
    /// Credits computed but not yet enqueued (ring momentarily full).
    pending: u64,
}

impl BoundaryRx {
    /// Creates the receiver endpoint draining `link` into `target`. The
    /// buffer's current occupancy becomes the credit baseline and must match
    /// the `resident` count the link was created with.
    pub fn new(link: Arc<BoundaryLink>, target: Arc<VcBuffer>) -> Self {
        let baseline = target.occupancy() as u64;
        Self {
            link,
            target,
            baseline,
            forwarded: 0,
            credited: 0,
            pending: 0,
        }
    }

    /// The downstream ingress buffer this endpoint feeds.
    pub fn target(&self) -> &Arc<VcBuffer> {
        &self.target
    }

    /// Flits still in flight in the mailbox.
    pub fn in_flight(&self) -> usize {
        self.link.in_flight()
    }

    /// Cumulative flits moved out of the mailbox into the ingress buffer.
    /// Monotone; this is the receiver-side `recv` count the credit-counting
    /// termination detector balances against the sender's push count.
    pub fn delivered_total(&self) -> u64 {
        self.forwarded
    }

    /// The underlying link (for transports that pump the mailbox).
    pub fn link(&self) -> &Arc<BoundaryLink> {
        &self.link
    }

    /// Moves mailbox flits into the ingress buffer. With `limit = Some(c)`
    /// only flits whose `visible_at ≤ c` are moved (flit stamps are
    /// nondecreasing, so this consumes exactly the prefix the sequential
    /// schedule would have delivered by cycle `c`); with `None` everything in
    /// the ring is moved. Returns the number of flits delivered.
    pub fn deliver(&mut self, limit: Option<Cycle>) -> usize {
        let mut moved = 0usize;
        while let Some(flit) = self
            .link
            .flits
            .pop_if(|f| limit.is_none_or(|c| f.visible_at <= c) && self.target.free_space() > 0)
        {
            let ok = self.target.push(flit);
            debug_assert!(ok, "boundary delivery overflowed the ingress buffer");
            self.forwarded += 1;
            moved += 1;
        }
        moved
    }

    /// Emits one cycle-stamped credit message covering every flit the router
    /// has popped from the ingress buffer since the last emission. Called
    /// after the shard's negative edge of cycle `now`.
    pub fn emit_credits(&mut self, now: Cycle) {
        let resident = self.target.occupancy() as u64;
        let freed = (self.baseline + self.forwarded).saturating_sub(resident);
        self.pending += freed.saturating_sub(self.credited + self.pending);
        if self.pending > 0 {
            let msg = CreditMsg {
                cycle: now,
                count: self.pending.min(u32::MAX as u64) as u32,
            };
            if self.link.credits.push(msg) {
                self.credited += msg.count as u64;
                self.pending -= msg.count as u64;
            }
        }
    }

    /// Checkpoint capture: credits computed but not yet on the wire. The
    /// rolled-back sender's `outstanding` still counts the flits they cover,
    /// so a restore must fold them back in via [`restore_owed`]
    /// (Self::restore_owed) or the link would leak credit window forever.
    pub fn owed_credits(&self) -> u64 {
        self.pending
    }

    /// Checkpoint restore: folds `owed` uncredited pops into the baseline of
    /// a freshly wired endpoint, so the first post-restore emission covers
    /// exactly the credits the (equally rolled-back) sender is still waiting
    /// for.
    pub fn restore_owed(&mut self, owed: u64) {
        self.baseline += owed;
    }

    /// Checkpoint restore: re-reads the credit baseline from the ingress
    /// buffer's current occupancy. Endpoints are wired before the tile
    /// restore repopulates the buffers, so the baseline captured at
    /// construction is stale; call this afterwards, before
    /// [`restore_owed`](Self::restore_owed).
    pub fn reset_baseline(&mut self) {
        debug_assert_eq!(self.forwarded, 0, "reset_baseline on a used endpoint");
        self.baseline = self.target.occupancy() as u64;
    }

    /// Drains every remaining mailbox flit into the ingress buffer (used when
    /// unwiring boundaries at the end of a parallel run; the credit invariant
    /// guarantees everything fits).
    pub fn flush(mut self) {
        self.deliver(None);
        debug_assert!(self.link.flits.is_empty(), "boundary flush left flits");
    }
}

/// What a router egress port pushes into: a shared downstream [`VcBuffer`]
/// (sequential and intra-shard links) or a cross-shard [`BoundaryLink`].
/// Both expose the same credit interface, so the router pipeline is agnostic.
#[derive(Clone, Debug)]
pub enum EgressChannel {
    /// Directly shared downstream ingress buffer.
    Local(Arc<VcBuffer>),
    /// Cross-shard boundary mailbox.
    Boundary(Arc<BoundaryLink>),
}

impl EgressChannel {
    /// Downstream VC capacity, in flits.
    #[inline]
    pub fn capacity(&self) -> usize {
        match self {
            EgressChannel::Local(b) => b.capacity(),
            EgressChannel::Boundary(l) => l.capacity(),
        }
    }

    /// Downstream occupancy as seen by the sender's credit loop.
    #[inline]
    pub fn occupancy(&self) -> usize {
        match self {
            EgressChannel::Local(b) => b.occupancy(),
            EgressChannel::Boundary(l) => l.occupancy(),
        }
    }

    /// Free space as seen by the sender's credit loop.
    #[inline]
    pub fn free_space(&self) -> usize {
        match self {
            EgressChannel::Local(b) => b.free_space(),
            EgressChannel::Boundary(l) => l.free_space(),
        }
    }

    /// Sends a flit downstream. `false` indicates a flow-control violation.
    #[inline]
    #[must_use]
    pub fn push(&self, flit: Flit) -> bool {
        match self {
            EgressChannel::Local(b) => b.push(flit),
            EgressChannel::Boundary(l) => l.push(flit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlitStats};
    use crate::ids::{FlowId, NodeId, PacketId};

    fn flit(seq: u32, visible_at: Cycle) -> Flit {
        Flit {
            packet: PacketId::new(1),
            flow: FlowId::new(1),
            original_flow: FlowId::new(1),
            kind: FlitKind::Body,
            seq,
            packet_len: 8,
            dst: NodeId::new(1),
            src: NodeId::new(0),
            visible_at,
            stats: FlitStats::default(),
        }
    }

    #[test]
    fn spsc_is_a_bounded_fifo() {
        let ring: Spsc<u32> = Spsc::new(3);
        assert!(ring.push(1) && ring.push(2) && ring.push(3));
        assert!(!ring.push(4), "full ring must reject");
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pop(), Some(1));
        assert!(ring.push(4));
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
        assert_eq!(ring.pop(), Some(4));
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn spsc_pop_if_leaves_rejected_head_in_place() {
        let ring: Spsc<u32> = Spsc::new(2);
        assert!(ring.push(7));
        assert_eq!(ring.pop_if(|&v| v > 10), None);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.pop_if(|&v| v == 7), Some(7));
    }

    #[test]
    fn spsc_survives_concurrent_producer_consumer() {
        let ring = Arc::new(Spsc::<u32>::new(4));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut sent = 0u32;
                while sent < 10_000 {
                    if ring.push(sent) {
                        sent += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let mut expect = 0u32;
        while expect < 10_000 {
            if let Some(v) = ring.pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(ring.is_empty());
    }

    #[test]
    fn boundary_credit_loop_round_trips() {
        let link = BoundaryLink::new(2);
        let target = Arc::new(VcBuffer::new(2));
        let mut rx = BoundaryRx::new(Arc::clone(&link), Arc::clone(&target));

        // Sender fills its credit window.
        assert!(link.push(flit(0, 1)));
        assert!(link.push(flit(1, 1)));
        assert!(!link.push(flit(2, 1)), "no credit left");
        assert_eq!(link.free_space(), 0);
        assert_eq!(link.in_flight(), 2);

        // Receiver drains the mailbox into the real buffer.
        assert_eq!(rx.deliver(Some(1)), 2);
        assert_eq!(target.occupancy(), 2);
        // Nothing popped yet: no credits flow, sender still blocked.
        rx.emit_credits(1);
        link.apply_credits(Some(1));
        assert_eq!(link.free_space(), 0);

        // The router consumes one flit; the credit returns.
        target.absorb_tail();
        assert!(target.pop_if(5, |_| true).is_some());
        rx.emit_credits(2);
        link.apply_credits(Some(2));
        assert_eq!(link.free_space(), 1);
        assert!(link.push(flit(2, 3)));
    }

    #[test]
    fn strict_delivery_respects_cycle_stamps() {
        let link = BoundaryLink::new(4);
        let target = Arc::new(VcBuffer::new(4));
        let mut rx = BoundaryRx::new(Arc::clone(&link), Arc::clone(&target));
        assert!(link.push(flit(0, 3)));
        assert!(link.push(flit(1, 5)));
        // At cycle 3 only the first flit is due.
        assert_eq!(rx.deliver(Some(3)), 1);
        assert_eq!(link.in_flight(), 1);
        // At cycle 5 the rest follows.
        assert_eq!(rx.deliver(Some(5)), 1);
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn strict_credit_application_respects_cycle_stamps() {
        let link = BoundaryLink::new(4);
        let target = Arc::new(VcBuffer::new(4));
        let mut rx = BoundaryRx::new(Arc::clone(&link), Arc::clone(&target));
        assert!(link.push(flit(0, 1)));
        rx.deliver(None);
        target.absorb_tail();
        assert!(target.pop_if(9, |_| true).is_some());
        rx.emit_credits(7);
        // The credit is stamped cycle 7: invisible at 6, visible at 7.
        link.apply_credits(Some(6));
        assert_eq!(link.occupancy(), 1);
        link.apply_credits(Some(7));
        assert_eq!(link.occupancy(), 0);
    }

    #[test]
    fn flush_moves_every_leftover_flit() {
        let link = BoundaryLink::new(3);
        let target = Arc::new(VcBuffer::new(3));
        let rx = BoundaryRx::new(Arc::clone(&link), Arc::clone(&target));
        assert!(link.push(flit(0, 100)));
        assert!(link.push(flit(1, 200)));
        rx.flush();
        assert_eq!(link.in_flight(), 0);
        assert_eq!(target.occupancy(), 2);
    }
}
