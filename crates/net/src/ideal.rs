//! A congestion-oblivious ("ideal") network model.
//!
//! High-level architectural simulators often approximate the interconnect with
//! an analytical model: injection bandwidth is limited as in the accurate
//! model, but transit latency is a simple function of hop count and ignores
//! contention entirely. HORNET's evaluation (Figure 8, Figure 12) uses such a
//! model as the congestion-oblivious baseline; this module provides it with
//! the same [`NodeAgent`] interface as the cycle-accurate network so the same
//! workloads can run on both.

use crate::agent::{NodeAgent, NodeIo};
use crate::flit::{DeliveredPacket, Packet};
use crate::geometry::Geometry;
use crate::ids::{Cycle, NodeId, PacketId};
use crate::routing::DistanceMatrix;
use crate::stats::NetworkStats;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Parameters of the ideal model.
#[derive(Clone, Debug, PartialEq)]
pub struct IdealConfig {
    /// Cycles of latency per hop (the paper's baseline uses plain hop counts,
    /// i.e. 1).
    pub per_hop_latency: u64,
    /// Injection bandwidth in flits per cycle (matches the accurate model's
    /// link bandwidth).
    pub injection_bandwidth: u32,
    /// Ejection bandwidth in flits per cycle.
    pub ejection_bandwidth: u32,
}

impl Default for IdealConfig {
    fn default() -> Self {
        Self {
            per_hop_latency: 1,
            injection_bandwidth: 1,
            ejection_bandwidth: 1,
        }
    }
}

struct InFlight {
    deliver_at: Cycle,
    injected_at: Cycle,
    hops: u32,
    packet: Packet,
}

struct IdealNode {
    node: NodeId,
    agents: Vec<Box<dyn NodeAgent>>,
    rng: ChaCha12Rng,
    pending: VecDeque<Packet>,
    /// Flits of the head pending packet already pushed into the network.
    injected_flits_of_head: u32,
    delivered: VecDeque<DeliveredPacket>,
    stats: NetworkStats,
    next_seq: u64,
}

struct IdealIo<'a> {
    node: NodeId,
    now: Cycle,
    pending: &'a mut VecDeque<Packet>,
    delivered: &'a mut VecDeque<DeliveredPacket>,
    next_seq: &'a mut u64,
}

impl NodeIo for IdealIo<'_> {
    fn node(&self) -> NodeId {
        self.node
    }
    fn cycle(&self) -> Cycle {
        self.now
    }
    fn alloc_packet_id(&mut self) -> PacketId {
        let id = PacketId::new(((self.node.raw() as u64) << 40) | *self.next_seq);
        *self.next_seq += 1;
        id
    }
    fn send(&mut self, packet: Packet) {
        self.pending.push_back(packet);
    }
    fn try_recv(&mut self) -> Option<DeliveredPacket> {
        self.delivered.pop_front()
    }
    fn peek_recv(&self) -> Option<&DeliveredPacket> {
        self.delivered.front()
    }
    fn injection_backlog(&self) -> usize {
        self.pending.len()
    }
    fn recv_backlog(&self) -> usize {
        self.delivered.len()
    }
}

/// The congestion-oblivious network simulator.
pub struct IdealNetwork {
    config: IdealConfig,
    dist: DistanceMatrix,
    nodes: Vec<IdealNode>,
    in_flight: BinaryHeap<Reverse<(Cycle, u64)>>,
    flights: std::collections::HashMap<u64, InFlight>,
    flight_seq: u64,
    cycle: Cycle,
}

impl std::fmt::Debug for IdealNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdealNetwork")
            .field("nodes", &self.nodes.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl IdealNetwork {
    /// Builds an ideal network over a geometry.
    pub fn new(geometry: &Geometry, config: IdealConfig, seed: u64) -> Self {
        let dist = DistanceMatrix::new(geometry);
        let nodes = geometry
            .nodes()
            .map(|node| IdealNode {
                node,
                agents: Vec::new(),
                rng: ChaCha12Rng::seed_from_u64(
                    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node.raw() as u64 + 1)),
                ),
                pending: VecDeque::new(),
                injected_flits_of_head: 0,
                delivered: VecDeque::new(),
                stats: NetworkStats::new(),
                next_seq: 0,
            })
            .collect();
        Self {
            config,
            dist,
            nodes,
            in_flight: BinaryHeap::new(),
            flights: std::collections::HashMap::new(),
            flight_seq: 0,
            cycle: 0,
        }
    }

    /// Attaches an agent to a node.
    pub fn attach_agent(&mut self, node: NodeId, agent: Box<dyn NodeAgent>) {
        self.nodes[node.index()].agents.push(agent);
    }

    /// The current simulated cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// True if nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.flights.is_empty() && self.nodes.iter().all(|n| n.pending.is_empty())
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let now = self.cycle + 1;

        // Deliver packets whose arrival time has come.
        while let Some(&Reverse((t, key))) = self.in_flight.peek() {
            if t > now {
                break;
            }
            self.in_flight.pop();
            let flight = self.flights.remove(&key).expect("flight present");
            let dst = flight.packet.dst;
            let latency = flight.deliver_at - flight.injected_at;
            let node = &mut self.nodes[dst.index()];
            node.stats.record_delivery(
                flight.packet.flow,
                flight.packet.len_flits as u64,
                flight.hops as u64 * self.config.per_hop_latency,
                latency,
                flight.hops,
            );
            node.stats.total_flit_latency += latency * flight.packet.len_flits as u64;
            node.stats.delivered_flits += flight.packet.len_flits as u64;
            node.delivered.push_back(DeliveredPacket {
                packet: flight.packet,
                delivered_at: now,
                head_latency: flight.hops as u64 * self.config.per_hop_latency,
                tail_latency: latency,
                hops: flight.hops,
            });
        }

        // Step agents.
        for node in &mut self.nodes {
            for agent in &mut node.agents {
                let mut io = IdealIo {
                    node: node.node,
                    now,
                    pending: &mut node.pending,
                    delivered: &mut node.delivered,
                    next_seq: &mut node.next_seq,
                };
                agent.tick(&mut io, &mut node.rng);
            }
        }

        // Inject: each node pushes up to `injection_bandwidth` flits of its
        // head-of-line packet per cycle; when the last flit enters, the packet
        // is scheduled for delivery after `hops × per_hop_latency` cycles.
        for node in &mut self.nodes {
            let mut budget = self.config.injection_bandwidth;
            while budget > 0 {
                let Some(head) = node.pending.front() else {
                    break;
                };
                if node.injected_flits_of_head == 0 {
                    node.stats.injected_packets += 1;
                }
                let remaining = head.len_flits - node.injected_flits_of_head;
                let push = remaining.min(budget);
                node.injected_flits_of_head += push;
                node.stats.injected_flits += push as u64;
                budget -= push;
                if node.injected_flits_of_head == head.len_flits {
                    let mut packet = node.pending.pop_front().expect("head present");
                    node.injected_flits_of_head = 0;
                    packet.injected_at = now;
                    let hops = self.dist.distance(packet.src, packet.dst);
                    let deliver_at = now + hops as u64 * self.config.per_hop_latency;
                    let injected_at = now.saturating_sub(packet.len_flits as u64 - 1);
                    let key = self.flight_seq;
                    self.flight_seq += 1;
                    self.in_flight.push(Reverse((deliver_at.max(now + 1), key)));
                    self.flights.insert(
                        key,
                        InFlight {
                            deliver_at: deliver_at.max(now + 1),
                            injected_at,
                            hops,
                            packet,
                        },
                    );
                } else {
                    break;
                }
            }
        }

        for node in &mut self.nodes {
            node.stats.simulated_cycles += 1;
            node.stats.last_cycle = now;
        }
        self.cycle = now;
    }

    /// Runs for `cycles` cycles.
    pub fn run(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until all agents are finished and the network drained, or
    /// `max_cycles` elapse. Returns true on completion.
    pub fn run_to_completion(&mut self, max_cycles: Cycle) -> bool {
        let end = self.cycle + max_cycles;
        while self.cycle < end {
            let done = self
                .nodes
                .iter()
                .all(|n| n.agents.iter().all(|a| a.finished()))
                && self.is_idle();
            if done {
                return true;
            }
            self.step();
        }
        false
    }

    /// Merged statistics across all nodes.
    pub fn stats(&self) -> NetworkStats {
        let mut merged = NetworkStats::new();
        for n in &self.nodes {
            merged.merge(&n.stats);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;

    struct Burst {
        sent: u32,
        total: u32,
        dst: NodeId,
    }
    impl NodeAgent for Burst {
        fn tick(&mut self, io: &mut dyn NodeIo, _rng: &mut ChaCha12Rng) {
            while self.sent < self.total {
                let id = io.alloc_packet_id();
                let src = io.node();
                io.send(Packet::new(
                    id,
                    FlowId::for_pair(src, self.dst, 16),
                    src,
                    self.dst,
                    8,
                    io.cycle(),
                ));
                self.sent += 1;
            }
        }
        fn next_event(&self, now: Cycle) -> Option<Cycle> {
            (self.sent < self.total).then_some(now + 1)
        }
        fn finished(&self) -> bool {
            self.sent == self.total
        }
    }

    #[test]
    fn ideal_latency_is_hops_plus_serialization() {
        let g = Geometry::mesh2d(4, 4);
        let mut net = IdealNetwork::new(&g, IdealConfig::default(), 0);
        net.attach_agent(
            NodeId::new(0),
            Box::new(Burst {
                sent: 0,
                total: 1,
                dst: NodeId::new(15),
            }),
        );
        assert!(net.run_to_completion(1_000));
        let stats = net.stats();
        assert_eq!(stats.delivered_packets, 1);
        // 0 -> 15 is 6 hops; 8-flit packet serializes over 8 cycles.
        // Latency = serialization (7) + hops (6) = 13.
        assert_eq!(stats.avg_packet_latency(), 13.0);
        assert_eq!(stats.avg_hops(), 6.0);
    }

    #[test]
    fn ideal_model_ignores_contention() {
        // Many nodes all sending to one hotspot: the ideal model's latency
        // stays at the zero-load value no matter the load.
        let g = Geometry::mesh2d(4, 4);
        let mut net = IdealNetwork::new(&g, IdealConfig::default(), 0);
        for i in 0..15u32 {
            net.attach_agent(
                NodeId::new(i),
                Box::new(Burst {
                    sent: 0,
                    total: 20,
                    dst: NodeId::new(15),
                }),
            );
        }
        assert!(net.run_to_completion(100_000));
        let stats = net.stats();
        assert_eq!(stats.delivered_packets, 15 * 20);
        // Worst-case zero-load latency on a 4x4 mesh with 8-flit packets is
        // 7 (serialization) + 6 (hops) = 13: no queueing ever shows up.
        assert!(stats.avg_packet_latency() <= 13.0);
    }

    #[test]
    fn injection_bandwidth_limits_throughput() {
        let g = Geometry::mesh2d(2, 2);
        let mut net = IdealNetwork::new(&g, IdealConfig::default(), 0);
        net.attach_agent(
            NodeId::new(0),
            Box::new(Burst {
                sent: 0,
                total: 10,
                dst: NodeId::new(3),
            }),
        );
        // 10 packets x 8 flits at 1 flit/cycle needs at least 80 cycles.
        assert!(!net.run_to_completion(40));
        assert!(net.run_to_completion(10_000));
    }
}
