//! Packets and flits.
//!
//! A packet is the unit of end-to-end communication; it is split into flits
//! (flow-control digits) for transmission through the wormhole network. The
//! head flit carries the routing state; body and tail flits simply follow the
//! path the head established.
//!
//! Per the paper, measurement state (injection time, per-hop accumulated
//! latency) rides *inside* each flit so that loosely-synchronized parallel
//! simulation never compares clock values from two different tiles.

use crate::ids::{Cycle, FlowId, NodeId, PacketId};
use serde::{Deserialize, Serialize};

/// Position of a flit within its packet.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit; carries routing information.
    Head,
    /// Intermediate flit.
    Body,
    /// Last flit; frees the virtual channel behind it.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// True for `Head` and `HeadTail`.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for `Tail` and `HeadTail`.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// Measurement state carried inside a flit.
///
/// Latency is accumulated *incrementally at each node* so that the reported
/// number never depends on the relative clock skew between two tiles — this is
/// what lets loose synchronization keep near-100 % timing fidelity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlitStats {
    /// Cycle (source-tile clock) at which the flit entered the source router's
    /// ingress port.
    pub injected_at: Cycle,
    /// Local-clock cycle at which the flit arrived at the router currently
    /// holding it (used to compute the per-hop residence time).
    pub arrived_at_current: Cycle,
    /// Total in-network latency accumulated so far, in cycles.
    pub accumulated_latency: u64,
    /// Number of router-to-router hops traversed so far.
    pub hops: u32,
}

/// A flow-control digit: the unit of buffering and link transmission.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Current flow identifier (may be a renamed phase of the original flow).
    pub flow: FlowId,
    /// Original (phase-0) flow identifier, restored at the destination.
    pub original_flow: FlowId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Sequence number within the packet (head = 0).
    pub seq: u32,
    /// Total number of flits in the packet.
    pub packet_len: u32,
    /// Final destination node.
    pub dst: NodeId,
    /// Source node.
    pub src: NodeId,
    /// Cycle (sender's local clock) after which the flit may be observed by
    /// the downstream router; models the one-cycle link traversal and keeps
    /// cycle-accurate parallel simulation deterministic.
    pub visible_at: Cycle,
    /// Embedded measurement state.
    pub stats: FlitStats,
}

impl Flit {
    /// True if this flit is the head of its packet.
    pub fn is_head(&self) -> bool {
        self.kind.is_head()
    }

    /// True if this flit is the tail of its packet.
    pub fn is_tail(&self) -> bool {
        self.kind.is_tail()
    }
}

/// Payload attached to a packet.
///
/// Synthetic traffic carries no payload; the memory hierarchy and the core
/// model encode their protocol messages as a short sequence of words.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Payload(pub Vec<u64>);

impl Payload {
    /// An empty payload.
    pub fn empty() -> Self {
        Self(Vec::new())
    }

    /// Payload from a slice of words.
    pub fn from_words(words: &[u64]) -> Self {
        Self(words.to_vec())
    }

    /// The payload words.
    pub fn words(&self) -> &[u64] {
        &self.0
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the payload carries no words.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u64>> for Payload {
    fn from(v: Vec<u64>) -> Self {
        Self(v)
    }
}

/// A packet: the unit of end-to-end communication offered to the network by a
/// traffic generator, core, or memory controller.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identifier.
    pub id: PacketId,
    /// Flow this packet belongs to (phase 0).
    pub flow: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Packet length in flits (>= 1).
    pub len_flits: u32,
    /// Cycle at which the generator offered the packet to the network.
    pub created_at: Cycle,
    /// Cycle at which the first flit entered a router ingress buffer
    /// (filled in by the bridge at injection time).
    pub injected_at: Cycle,
    /// Optional protocol payload.
    pub payload: Payload,
}

impl Packet {
    /// Creates a packet with the given identity and length and an empty payload.
    ///
    /// # Panics
    ///
    /// Panics if `len_flits == 0`.
    pub fn new(
        id: PacketId,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        len_flits: u32,
        created_at: Cycle,
    ) -> Self {
        assert!(len_flits >= 1, "a packet must contain at least one flit");
        Self {
            id,
            flow,
            src,
            dst,
            len_flits,
            created_at,
            injected_at: created_at,
            payload: Payload::empty(),
        }
    }

    /// Attaches a payload, growing `len_flits` if needed so the payload fits.
    ///
    /// A flit is assumed to carry four 64-bit payload words beyond the header
    /// information (a 256-bit-ish flit, typical for on-chip networks), so the
    /// packet needs at least `1 + ceil(words / 4)` flits.
    pub fn with_payload(mut self, payload: Payload) -> Self {
        let needed = 1 + (payload.len() as u32).div_ceil(4);
        if self.len_flits < needed {
            self.len_flits = needed;
        }
        self.payload = payload;
        self
    }

    /// Splits this packet into its flits, stamping the given injection cycle.
    pub fn to_flits(&self, injected_at: Cycle) -> Vec<Flit> {
        let n = self.len_flits;
        (0..n)
            .map(|seq| {
                let kind = match (seq, n) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (s, n) if s == n - 1 => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                Flit {
                    packet: self.id,
                    flow: self.flow,
                    original_flow: self.flow,
                    kind,
                    seq,
                    packet_len: n,
                    dst: self.dst,
                    src: self.src,
                    visible_at: injected_at,
                    stats: FlitStats {
                        injected_at,
                        arrived_at_current: injected_at,
                        accumulated_latency: 0,
                        hops: 0,
                    },
                }
            })
            .collect()
    }
}

/// A packet that has been fully reassembled at its destination, together with
/// the measurement data accumulated by its flits.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredPacket {
    /// The original packet (payload preserved by the bridge).
    pub packet: Packet,
    /// Cycle (destination-tile clock) at which the tail flit left the network.
    pub delivered_at: Cycle,
    /// In-network latency of the head flit (accumulated per hop).
    pub head_latency: u64,
    /// In-network latency of the tail flit (accumulated per hop); this is the
    /// packet latency the paper reports.
    pub tail_latency: u64,
    /// Number of hops the packet traversed.
    pub hops: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(len: u32) -> Packet {
        Packet::new(
            PacketId::new(1),
            FlowId::new(3),
            NodeId::new(0),
            NodeId::new(5),
            len,
            10,
        )
    }

    #[test]
    fn single_flit_packet_is_headtail() {
        let flits = packet(1).to_flits(10);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].is_head() && flits[0].is_tail());
    }

    #[test]
    fn multi_flit_packet_framing() {
        let flits = packet(4).to_flits(12);
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits.iter().enumerate().all(|(i, f)| f.seq == i as u32));
        assert!(flits.iter().all(|f| f.stats.injected_at == 12));
        assert!(flits.iter().all(|f| f.packet_len == 4));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_panics() {
        let _ = packet(0);
    }

    #[test]
    fn payload_grows_packet_length() {
        let p = packet(1).with_payload(Payload::from_words(&[1, 2, 3, 4, 5]));
        assert_eq!(p.len_flits, 3); // head + ceil(5/4) payload flits
        assert_eq!(p.payload.len(), 5);
        // A payload that already fits does not shrink the packet.
        let q = packet(8).with_payload(Payload::from_words(&[1]));
        assert_eq!(q.len_flits, 8);
    }

    #[test]
    fn flit_kind_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Tail.is_head());
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Body.is_head() && !FlitKind::Body.is_tail());
    }

    #[test]
    fn payload_accessors() {
        let p = Payload::from_words(&[7, 8]);
        assert_eq!(p.words(), &[7, 8]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(Payload::empty().is_empty());
    }
}
