//! The ingress virtual-channel buffer — the only data structure shared between
//! two simulation threads.
//!
//! As in the paper (§II-C), each VC buffer carries two fine-grained locks: one
//! at the tail (ingress) end, taken by the *upstream* router when it deposits
//! flits, and one at the head (egress) end, taken by the *downstream* router
//! that owns the buffer. Because these are the only points of communication
//! between two tiles, correct locking of the two ends guarantees that no flit
//! is lost or reordered regardless of the relative progress of the two
//! threads.
//!
//! Occupancy is additionally published in an atomic counter so the upstream
//! router can perform credit checks without taking a lock.

use crate::flit::Flit;
use crate::ids::Cycle;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded FIFO of flits with independently lockable head and tail ends.
#[derive(Debug)]
pub struct VcBuffer {
    capacity: usize,
    /// Tail (ingress) end: flits deposited by the upstream router and not yet
    /// claimed by the owner.
    tail: Mutex<VecDeque<Flit>>,
    /// Head (egress) end: flits visible to the owning (downstream) router.
    head: Mutex<VecDeque<Flit>>,
    /// Total number of flits resident in the buffer (tail + head), updated by
    /// whichever side adds or removes flits; read lock-free for credit checks.
    occupancy: AtomicUsize,
}

impl VcBuffer {
    /// Creates a buffer holding at most `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a VC buffer needs capacity for at least one flit");
        Self {
            capacity,
            tail: Mutex::new(VecDeque::new()),
            head: Mutex::new(VecDeque::new()),
            occupancy: AtomicUsize::new(0),
        }
    }

    /// Buffer capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy (flits resident in the buffer). This is the value
    /// upstream credit checks use; it intentionally lags pops by up to one
    /// cycle, exactly like a hardware credit loop.
    pub fn occupancy(&self) -> usize {
        self.occupancy.load(Ordering::Acquire)
    }

    /// Free space, in flits.
    pub fn free_space(&self) -> usize {
        self.capacity.saturating_sub(self.occupancy())
    }

    /// Deposits a flit at the tail end. Called by the upstream router (or the
    /// local bridge) during its negative clock edge.
    ///
    /// Returns `false` (and does not enqueue) if the buffer is full; callers
    /// are expected to have performed a credit check first, so a `false`
    /// return indicates a flow-control bug and is counted by the router.
    #[must_use]
    pub fn push(&self, flit: Flit) -> bool {
        // Reserve space first so concurrent pushes can never overflow.
        let prev = self.occupancy.fetch_add(1, Ordering::AcqRel);
        if prev >= self.capacity {
            self.occupancy.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        self.tail.lock().push_back(flit);
        true
    }

    /// Moves flits deposited at the tail end into the head end. Called by the
    /// owning router at the start of its cycle; after this, [`peek`](Self::peek)
    /// and [`pop_if`](Self::pop_if) observe them.
    pub fn absorb_tail(&self) {
        let mut tail = self.tail.lock();
        if tail.is_empty() {
            return;
        }
        let mut head = self.head.lock();
        head.extend(tail.drain(..));
    }

    /// Returns a copy of the flit at the head of the buffer, if any, provided
    /// it has become visible by `now` (its `visible_at` stamp has passed).
    pub fn peek(&self, now: Cycle) -> Option<Flit> {
        let head = self.head.lock();
        head.front().copied().filter(|f| f.visible_at <= now)
    }

    /// Pops the head flit if it is visible by `now` and `pred` accepts it.
    pub fn pop_if(&self, now: Cycle, pred: impl FnOnce(&Flit) -> bool) -> Option<Flit> {
        let mut head = self.head.lock();
        let matches = head
            .front()
            .map(|f| f.visible_at <= now && pred(f))
            .unwrap_or(false);
        if matches {
            let flit = head.pop_front();
            drop(head);
            self.occupancy.fetch_sub(1, Ordering::AcqRel);
            flit
        } else {
            None
        }
    }

    /// Number of flits currently visible at the head end (ignores the
    /// visibility timestamp; used for statistics).
    pub fn head_len(&self) -> usize {
        self.head.lock().len()
    }

    /// True if the buffer holds no flits at all.
    pub fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }

    /// Drains every flit out of the buffer (test / teardown helper).
    pub fn drain_all(&self) -> Vec<Flit> {
        let mut out = Vec::new();
        {
            let mut head = self.head.lock();
            out.extend(head.drain(..));
        }
        {
            let mut tail = self.tail.lock();
            out.extend(tail.drain(..));
        }
        self.occupancy.store(0, Ordering::Release);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlitStats};
    use crate::ids::{FlowId, NodeId, PacketId};

    fn flit(seq: u32, visible_at: Cycle) -> Flit {
        Flit {
            packet: PacketId::new(1),
            flow: FlowId::new(1),
            original_flow: FlowId::new(1),
            kind: if seq == 0 { FlitKind::Head } else { FlitKind::Body },
            seq,
            packet_len: 8,
            dst: NodeId::new(1),
            src: NodeId::new(0),
            visible_at,
            stats: FlitStats::default(),
        }
    }

    #[test]
    fn push_respects_capacity() {
        let buf = VcBuffer::new(2);
        assert!(buf.push(flit(0, 0)));
        assert!(buf.push(flit(1, 0)));
        assert!(!buf.push(flit(2, 0)));
        assert_eq!(buf.occupancy(), 2);
        assert_eq!(buf.free_space(), 0);
    }

    #[test]
    fn fifo_order_preserved_across_absorb() {
        let buf = VcBuffer::new(8);
        for i in 0..4 {
            assert!(buf.push(flit(i, 0)));
        }
        buf.absorb_tail();
        for i in 0..4 {
            let f = buf.pop_if(10, |_| true).expect("flit present");
            assert_eq!(f.seq, i);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn visibility_timestamp_hides_future_flits() {
        let buf = VcBuffer::new(4);
        assert!(buf.push(flit(0, 5)));
        buf.absorb_tail();
        assert!(buf.peek(4).is_none());
        assert!(buf.pop_if(4, |_| true).is_none());
        assert!(buf.peek(5).is_some());
        assert!(buf.pop_if(5, |_| true).is_some());
    }

    #[test]
    fn pop_if_respects_predicate() {
        let buf = VcBuffer::new(4);
        assert!(buf.push(flit(0, 0)));
        buf.absorb_tail();
        assert!(buf.pop_if(1, |f| f.seq == 9).is_none());
        assert_eq!(buf.occupancy(), 1);
        assert!(buf.pop_if(1, |f| f.seq == 0).is_some());
        assert_eq!(buf.occupancy(), 0);
    }

    #[test]
    fn occupancy_counts_both_ends() {
        let buf = VcBuffer::new(4);
        assert!(buf.push(flit(0, 0)));
        buf.absorb_tail();
        assert!(buf.push(flit(1, 0)));
        assert_eq!(buf.occupancy(), 2);
        assert_eq!(buf.head_len(), 1);
        let drained = buf.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(buf.is_empty());
    }

    #[test]
    fn concurrent_producer_consumer_preserves_order_and_count() {
        use std::sync::Arc;
        let buf = Arc::new(VcBuffer::new(4));
        let producer = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                let mut pushed = 0u32;
                while pushed < 1000 {
                    if buf.push(flit(pushed, 0)) {
                        pushed += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let consumer = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                let mut expected = 0u32;
                while expected < 1000 {
                    buf.absorb_tail();
                    if let Some(f) = buf.pop_if(u64::MAX, |_| true) {
                        assert_eq!(f.seq, expected, "flits must arrive in order");
                        expected += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert!(buf.is_empty());
    }
}
