//! The ingress virtual-channel buffer — the only data structure shared between
//! two simulation threads.
//!
//! As in the paper (§II-C), each VC buffer has a producer (tail) end written
//! by the *upstream* router and a consumer (head) end owned by the
//! *downstream* router. Because these are the only points of communication
//! between two tiles, correct synchronization of the two ends guarantees that
//! no flit is lost or reordered regardless of the relative progress of the
//! two threads.
//!
//! # Storage and synchronization
//!
//! Flits live in a fixed-capacity ring allocated once at construction —
//! steady-state operation never touches the heap. Three cursors index the
//! ring, each counting flits monotonically (slot = cursor % capacity):
//!
//! * `write_pos` — flits deposited by the producer. Written only by the
//!   producer endpoint; each deposit is published with a release store
//!   *after* writing the slot.
//! * `visible` — the absorb boundary: flits at `read_pos..visible` are visible
//!   to the consumer's pipeline stages. Advanced by [`absorb_tail`] /
//!   [`absorb_and_peek`] with a single acquire load of `write_pos`.
//! * `read_pos` — flits consumed by the owner. Written only by the consumer.
//!
//! The buffer is a single-producer/single-consumer ring, so no cursor needs a
//! lock: every buffer has exactly one producer endpoint (the upstream
//! router's negative edge, the local bridge, or the shard's boundary
//! receiver) and one consumer endpoint (the owning router), and the sharded
//! runtimes rewire every cut link onto boundary mailboxes so both endpoints
//! of an in-shard buffer are driven by the owning shard. This is the same
//! discipline [`crate::spsc`] relies on; dropping the former tail/head mutex
//! pair removes two uncontended-but-hot lock round-trips per flit from the
//! router hot path.
//!
//! Occupancy (`write`-side reservations minus completed pops) is kept in an
//! atomic counter so upstream credit checks stay lock-free, exactly like a
//! hardware credit loop; an optional *aggregate* counter shared by all buffers
//! of one router makes the router's `buffered_flits()` / `is_idle()` O(1).
//!
//! [`absorb_tail`]: VcBuffer::absorb_tail
//! [`absorb_and_peek`]: VcBuffer::absorb_and_peek
//!
//! # Safety argument
//!
//! A slot is written only by the producer at index `write_pos`, and read only
//! by the consumer at indices `read_pos..visible`. Since `visible ≤
//! write_pos` (published with release/acquire on `write_pos`) the two index
//! sets never overlap. Slot *reuse* (writing index `r + capacity` while the
//! consumer pops index `r`) cannot collide either: a push first reserves
//! space in `occupancy` and pops release it only *after* advancing
//! `read_pos`, so `occupancy ≥ write_pos − read_pos` at all times and a
//! successful reservation (`occupancy < capacity`) proves `write_pos −
//! read_pos < capacity`. The release half of the pop's `occupancy` RMW and
//! the acquire half of the push's reservation RMW order the consumer's final
//! read of a slot before the producer's reuse of it.

use crate::flit::Flit;
use crate::ids::Cycle;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A bounded FIFO of flits with an independently synchronized producer (tail)
/// and consumer (head) end, backed by a fixed ring allocated at construction.
pub struct VcBuffer {
    capacity: usize,
    /// Ring storage; see the module-level safety argument.
    slots: Box<[UnsafeCell<MaybeUninit<Flit>>]>,
    /// Producer cursor: flits deposited so far. Written only by the producer,
    /// published with `Release`, read by the consumer with `Acquire`.
    write_pos: AtomicU64,
    /// Absorb boundary; written only by the consumer.
    visible: AtomicU64,
    /// Flits consumed so far; written only by the consumer.
    read_pos: AtomicU64,
    /// Reserved-minus-released flit count; the credit-check value. Lags pops
    /// by up to one cycle, exactly like a hardware credit loop.
    occupancy: AtomicUsize,
    /// Optional router-wide occupancy aggregate (all ingress buffers of one
    /// router share it), making the router's idle check O(1).
    aggregate: Option<Arc<AtomicUsize>>,
}

// SAFETY: all slot accesses are synchronized as described in the module-level
// safety argument; `Flit` is `Copy + Send`.
unsafe impl Send for VcBuffer {}
unsafe impl Sync for VcBuffer {}

impl std::fmt::Debug for VcBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VcBuffer")
            .field("capacity", &self.capacity)
            .field("occupancy", &self.occupancy())
            .finish()
    }
}

impl VcBuffer {
    /// Creates a buffer holding at most `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// Creates a buffer that additionally reports its occupancy into a shared
    /// per-router aggregate counter (see [`occupancy`](Self::occupancy)).
    pub fn with_aggregate(capacity: usize, aggregate: Arc<AtomicUsize>) -> Self {
        Self::build(capacity, Some(aggregate))
    }

    fn build(capacity: usize, aggregate: Option<Arc<AtomicUsize>>) -> Self {
        assert!(
            capacity > 0,
            "a VC buffer needs capacity for at least one flit"
        );
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            capacity,
            slots,
            write_pos: AtomicU64::new(0),
            visible: AtomicU64::new(0),
            read_pos: AtomicU64::new(0),
            occupancy: AtomicUsize::new(0),
            aggregate,
        }
    }

    /// Buffer capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy (flits resident in the buffer). This is the value
    /// upstream credit checks use; it intentionally lags pops by up to one
    /// cycle, exactly like a hardware credit loop.
    pub fn occupancy(&self) -> usize {
        self.occupancy.load(Ordering::Acquire)
    }

    /// Free space, in flits.
    pub fn free_space(&self) -> usize {
        self.capacity.saturating_sub(self.occupancy())
    }

    /// Reads slot `pos` of the ring.
    ///
    /// # Safety
    ///
    /// The caller must be the consumer endpoint and ensure `read_pos ≤ pos <
    /// visible` (the slot holds an initialized flit the producer published
    /// before the acquire load that advanced `visible`).
    #[inline]
    unsafe fn read_slot(&self, pos: u64) -> Flit {
        (*self.slots[(pos % self.capacity as u64) as usize].get()).assume_init()
    }

    /// Deposits a flit at the tail end. Called by the producer endpoint (the
    /// upstream router, the local bridge, or the boundary receiver) during
    /// the tile's negative clock edge; the single-producer discipline in the
    /// module docs is what makes the lock-free deposit sound.
    ///
    /// Returns `false` (and does not enqueue) if the buffer is full; callers
    /// are expected to have performed a credit check first, so a `false`
    /// return indicates a flow-control bug and is counted by the router.
    #[must_use]
    pub fn push(&self, flit: Flit) -> bool {
        // Reserve space first so a push racing the consumer's credit release
        // can never overflow the ring.
        let prev = self.occupancy.fetch_add(1, Ordering::AcqRel);
        if prev >= self.capacity {
            self.occupancy.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        if let Some(agg) = &self.aggregate {
            agg.fetch_add(1, Ordering::AcqRel);
        }
        let pos = self.write_pos.load(Ordering::Relaxed);
        // SAFETY: the successful reservation above proves this slot is not in
        // `read_pos..write_pos` (module-level safety argument), and the
        // single-producer discipline excludes concurrent producers.
        unsafe {
            (*self.slots[(pos % self.capacity as u64) as usize].get()).write(flit);
        }
        self.write_pos.store(pos + 1, Ordering::Release);
        true
    }

    /// Makes flits deposited at the tail end visible to the head end. Called
    /// by the owning router at the start of its cycle; after this,
    /// [`peek`](Self::peek) and [`pop_if`](Self::pop_if) observe them.
    /// Returns the number of flits absorbed.
    pub fn absorb_tail(&self) -> usize {
        let published = self.write_pos.load(Ordering::Acquire);
        let absorbed = published - self.visible.load(Ordering::Relaxed);
        self.visible.store(published, Ordering::Relaxed);
        absorbed as usize
    }

    /// [`absorb_tail`](Self::absorb_tail) plus a snapshot of the head flit.
    /// This is the router hot path: one call per touched VC per cycle
    /// replaces the absorb + repeated-`peek` sequence.
    ///
    /// The returned flit, if any, ignores the visibility timestamp — callers
    /// check `visible_at` against their own clock on the (copied) snapshot.
    pub fn absorb_and_peek(&self) -> (usize, Option<Flit>) {
        let published = self.write_pos.load(Ordering::Acquire);
        let absorbed = (published - self.visible.load(Ordering::Relaxed)) as usize;
        self.visible.store(published, Ordering::Relaxed);
        let read_pos = self.read_pos.load(Ordering::Relaxed);
        let flit = if read_pos < published {
            // SAFETY: consumer endpoint, read_pos < visible.
            Some(unsafe { self.read_slot(read_pos) })
        } else {
            None
        };
        (absorbed, flit)
    }

    /// A snapshot of the head flit among the already-absorbed run, without
    /// advancing the absorb boundary and ignoring the visibility timestamp
    /// (callers check `visible_at` on the copy). Used by the compiled kernel
    /// to refresh its head cache after a pop without re-absorbing.
    pub fn head_snapshot(&self) -> Option<Flit> {
        let read_pos = self.read_pos.load(Ordering::Relaxed);
        if read_pos < self.visible.load(Ordering::Relaxed) {
            // SAFETY: consumer endpoint, read_pos < visible.
            Some(unsafe { self.read_slot(read_pos) })
        } else {
            None
        }
    }

    /// Returns a copy of the flit at the head of the buffer, if any, provided
    /// it has become visible by `now` (its `visible_at` stamp has passed).
    pub fn peek(&self, now: Cycle) -> Option<Flit> {
        let read_pos = self.read_pos.load(Ordering::Relaxed);
        if read_pos < self.visible.load(Ordering::Relaxed) {
            // SAFETY: consumer endpoint, read_pos < visible.
            let flit = unsafe { self.read_slot(read_pos) };
            (flit.visible_at <= now).then_some(flit)
        } else {
            None
        }
    }

    /// Pops the head flit if it is visible by `now` and `pred` accepts it.
    pub fn pop_if(&self, now: Cycle, pred: impl FnOnce(&Flit) -> bool) -> Option<Flit> {
        let read_pos = self.read_pos.load(Ordering::Relaxed);
        if read_pos >= self.visible.load(Ordering::Relaxed) {
            return None;
        }
        // SAFETY: consumer endpoint, read_pos < visible.
        let flit = unsafe { self.read_slot(read_pos) };
        if flit.visible_at <= now && pred(&flit) {
            self.read_pos.store(read_pos + 1, Ordering::Relaxed);
            // Release the slot only after the read completed (see the
            // module-level safety argument for why this ordering matters).
            self.occupancy.fetch_sub(1, Ordering::AcqRel);
            if let Some(agg) = &self.aggregate {
                agg.fetch_sub(1, Ordering::AcqRel);
            }
            Some(flit)
        } else {
            None
        }
    }

    /// Number of flits currently visible at the head end (ignores the
    /// visibility timestamp; used for statistics).
    pub fn head_len(&self) -> usize {
        (self.visible.load(Ordering::Relaxed) - self.read_pos.load(Ordering::Relaxed)) as usize
    }

    /// True if the buffer holds no flits at all.
    pub fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }

    /// A non-destructive copy of the buffer's contents, split at the absorb
    /// boundary: `(visible, pending)` where `visible` holds the flits at
    /// `read_pos..visible` (already absorbed into the consumer's pipeline
    /// view) and `pending` the flits at `visible..write_pos` (deposited but
    /// not yet absorbed). Checkpoint restore replays the two runs around an
    /// [`absorb_tail`](Self::absorb_tail) call so the restored buffer's
    /// cursors land exactly where the snapshot's were. Callers must be
    /// quiescent (no concurrent producer).
    pub fn snapshot_split(&self) -> (Vec<Flit>, Vec<Flit>) {
        let read_pos = self.read_pos.load(Ordering::Relaxed);
        let visible = self.visible.load(Ordering::Relaxed);
        let published = self.write_pos.load(Ordering::Acquire);
        let visible_run = (read_pos..visible)
            // SAFETY: quiescent caller, read_pos ≤ pos < visible.
            .map(|pos| unsafe { self.read_slot(pos) })
            .collect();
        let pending = (visible..published)
            // SAFETY: quiescent caller (no producer mid-deposit) and every
            // slot below `write_pos` was initialized by a completed push.
            .map(|pos| unsafe { self.read_slot(pos) })
            .collect();
        (visible_run, pending)
    }

    /// Restores the contents captured by [`snapshot_split`](Self::snapshot_split)
    /// into this (empty, freshly built) buffer: the `visible` run is pushed
    /// and absorbed, the `pending` run pushed but left unabsorbed.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not empty or the snapshot exceeds capacity.
    pub fn restore_split(&self, visible: &[Flit], pending: &[Flit]) {
        assert!(self.is_empty(), "restore into a non-empty VC buffer");
        for f in visible {
            assert!(self.push(*f), "snapshot exceeds VC buffer capacity");
        }
        self.absorb_tail();
        for f in pending {
            assert!(self.push(*f), "snapshot exceeds VC buffer capacity");
        }
    }

    /// Drains every flit out of the buffer (test / teardown helper). The
    /// caller must be quiescent (no concurrent producer).
    pub fn drain_all(&self) -> Vec<Flit> {
        let published = self.write_pos.load(Ordering::Acquire);
        self.visible.store(published, Ordering::Relaxed);
        let mut read_pos = self.read_pos.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity((published - read_pos) as usize);
        while read_pos < published {
            // SAFETY: quiescent caller, read_pos < visible.
            out.push(unsafe { self.read_slot(read_pos) });
            read_pos += 1;
        }
        self.read_pos.store(read_pos, Ordering::Relaxed);
        self.occupancy.fetch_sub(out.len(), Ordering::AcqRel);
        if let Some(agg) = &self.aggregate {
            agg.fetch_sub(out.len(), Ordering::AcqRel);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlitStats};
    use crate::ids::{FlowId, NodeId, PacketId};

    fn flit(seq: u32, visible_at: Cycle) -> Flit {
        Flit {
            packet: PacketId::new(1),
            flow: FlowId::new(1),
            original_flow: FlowId::new(1),
            kind: if seq == 0 {
                FlitKind::Head
            } else {
                FlitKind::Body
            },
            seq,
            packet_len: 8,
            dst: NodeId::new(1),
            src: NodeId::new(0),
            visible_at,
            stats: FlitStats::default(),
        }
    }

    #[test]
    fn push_respects_capacity() {
        let buf = VcBuffer::new(2);
        assert!(buf.push(flit(0, 0)));
        assert!(buf.push(flit(1, 0)));
        assert!(!buf.push(flit(2, 0)));
        assert_eq!(buf.occupancy(), 2);
        assert_eq!(buf.free_space(), 0);
    }

    #[test]
    fn fifo_order_preserved_across_absorb() {
        let buf = VcBuffer::new(8);
        for i in 0..4 {
            assert!(buf.push(flit(i, 0)));
        }
        assert_eq!(buf.absorb_tail(), 4);
        for i in 0..4 {
            let f = buf.pop_if(10, |_| true).expect("flit present");
            assert_eq!(f.seq, i);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn visibility_timestamp_hides_future_flits() {
        let buf = VcBuffer::new(4);
        assert!(buf.push(flit(0, 5)));
        buf.absorb_tail();
        assert!(buf.peek(4).is_none());
        assert!(buf.pop_if(4, |_| true).is_none());
        assert!(buf.peek(5).is_some());
        assert!(buf.pop_if(5, |_| true).is_some());
    }

    #[test]
    fn pop_if_respects_predicate() {
        let buf = VcBuffer::new(4);
        assert!(buf.push(flit(0, 0)));
        buf.absorb_tail();
        assert!(buf.pop_if(1, |f| f.seq == 9).is_none());
        assert_eq!(buf.occupancy(), 1);
        assert!(buf.pop_if(1, |f| f.seq == 0).is_some());
        assert_eq!(buf.occupancy(), 0);
    }

    #[test]
    fn occupancy_counts_both_ends() {
        let buf = VcBuffer::new(4);
        assert!(buf.push(flit(0, 0)));
        buf.absorb_tail();
        assert!(buf.push(flit(1, 0)));
        assert_eq!(buf.occupancy(), 2);
        assert_eq!(buf.head_len(), 1);
        let drained = buf.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(buf.is_empty());
    }

    #[test]
    fn absorb_and_peek_reports_count_and_snapshot() {
        let buf = VcBuffer::new(8);
        assert_eq!(buf.absorb_and_peek(), (0, None));
        for i in 0..3 {
            assert!(buf.push(flit(i, 0)));
        }
        let (absorbed, head) = buf.absorb_and_peek();
        assert_eq!(absorbed, 3);
        assert_eq!(head.unwrap().seq, 0);
        // Nothing new: count is zero but the snapshot persists.
        let (absorbed, head) = buf.absorb_and_peek();
        assert_eq!(absorbed, 0);
        assert_eq!(head.unwrap().seq, 0);
    }

    #[test]
    fn head_snapshot_respects_absorb_boundary() {
        let buf = VcBuffer::new(8);
        assert!(buf.push(flit(0, 7)));
        // Deposited but not absorbed: no head yet.
        assert!(buf.head_snapshot().is_none());
        buf.absorb_tail();
        // Absorbed: visible regardless of the `visible_at` stamp.
        assert_eq!(buf.head_snapshot().unwrap().seq, 0);
        assert!(buf.pop_if(7, |_| true).is_some());
        assert!(buf.head_snapshot().is_none());
    }

    #[test]
    fn ring_reuses_slots_across_many_wraps() {
        let buf = VcBuffer::new(3);
        let mut next = 0u32;
        let mut expect = 0u32;
        for _ in 0..50 {
            while buf.push(flit(next, 0)) {
                next += 1;
            }
            buf.absorb_tail();
            while let Some(f) = buf.pop_if(u64::MAX, |_| true) {
                assert_eq!(f.seq, expect);
                expect += 1;
            }
        }
        assert_eq!(next, expect);
        assert!(next >= 150, "three flits per round expected");
    }

    #[test]
    fn aggregate_counter_tracks_all_movements() {
        let agg = Arc::new(AtomicUsize::new(0));
        let a = VcBuffer::with_aggregate(4, Arc::clone(&agg));
        let b = VcBuffer::with_aggregate(4, Arc::clone(&agg));
        assert!(a.push(flit(0, 0)));
        assert!(b.push(flit(1, 0)));
        assert!(b.push(flit(2, 0)));
        assert_eq!(agg.load(Ordering::Acquire), 3);
        a.absorb_tail();
        assert!(a.pop_if(1, |_| true).is_some());
        assert_eq!(agg.load(Ordering::Acquire), 2);
        b.drain_all();
        assert_eq!(agg.load(Ordering::Acquire), 0);
        // A full buffer's rejected push must not disturb the aggregate.
        let full = VcBuffer::with_aggregate(1, Arc::clone(&agg));
        assert!(full.push(flit(0, 0)));
        assert!(!full.push(flit(1, 0)));
        assert_eq!(agg.load(Ordering::Acquire), 1);
    }

    #[test]
    fn concurrent_producer_consumer_preserves_order_and_count() {
        let buf = Arc::new(VcBuffer::new(4));
        let producer = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                let mut pushed = 0u32;
                while pushed < 1000 {
                    if buf.push(flit(pushed, 0)) {
                        pushed += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let consumer = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                let mut expected = 0u32;
                while expected < 1000 {
                    buf.absorb_tail();
                    if let Some(f) = buf.pop_if(u64::MAX, |_| true) {
                        assert_eq!(f.seq, expected, "flits must arrive in order");
                        expected += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert!(buf.is_empty());
    }
}
