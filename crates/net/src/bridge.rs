//! The bridge between a locally attached agent (traffic injector, CPU core,
//! memory controller) and the router.
//!
//! The bridge presents a simple packet-based interface to the agent, hiding
//! the details of splitting packets into flits, DMA-style injection into the
//! router's CPU-facing ingress port, retrying when the network cannot accept
//! flits, and reassembling ejected flits back into packets.

use crate::codec::{self, Dec, Enc};
use crate::flit::{DeliveredPacket, Flit, Packet};
use crate::ids::{Cycle, NodeId, PacketId};
use crate::payload::PayloadStore;
use crate::stats::NetworkStats;
use crate::vcbuf::VcBuffer;
use hornet_obs::trace::{TraceEvent, TraceKind, TraceRing};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One slot of the reassembly slab: the flits of one in-flight inbound
/// packet. `expected == 0` marks a free slot whose `flits` allocation is
/// retained for reuse, so steady-state reassembly never allocates — the slab
/// only grows to the high-water mark of *concurrently* reassembling packets
/// (bounded by the router's ingress VC count, since flits of one packet
/// arrive on one VC in order).
#[derive(Debug)]
struct ReassemblySlot {
    packet: PacketId,
    expected: u32,
    flits: Vec<Flit>,
}

impl Default for ReassemblySlot {
    fn default() -> Self {
        Self {
            packet: PacketId::new(0),
            expected: 0,
            flits: Vec::new(),
        }
    }
}

/// Injection state: the flits of the packet currently being pushed into one
/// injection VC.
#[derive(Debug)]
struct InjectionSlot {
    flits: VecDeque<Flit>,
}

/// The packet-based bridge between one agent and its router.
#[derive(Debug)]
pub struct Bridge {
    node: NodeId,
    /// Injection VC buffers of the local router.
    injection_vcs: Vec<Arc<VcBuffer>>,
    /// Flits per cycle the bridge may push toward the router.
    injection_bandwidth: u32,
    /// Packets waiting to enter the network.
    pending: VecDeque<Packet>,
    /// Per-VC packet currently being injected (wormhole: one packet at a time
    /// per VC).
    slots: Vec<Option<InjectionSlot>>,
    /// Reassembly slab for inbound packets: a handful of reusable slots
    /// searched linearly by packet id (cheaper than hashing at the small
    /// concurrency the ejection port can sustain, and allocation-free in
    /// steady state).
    reassembly: Vec<ReassemblySlot>,
    /// Original packets by id, so payloads survive the trip (the network only
    /// carries flits; a real chip would DMA the payload).
    in_flight_payloads: HashMap<PacketId, Packet>,
    /// Fully reassembled inbound packets not yet consumed by the agent.
    delivered: VecDeque<DeliveredPacket>,
    /// Packet id allocator (node-unique ids composed with the node index).
    next_packet_seq: u64,
    /// Shared out-of-band payload transport (DMA model); when absent, payloads
    /// only survive node-local loopback.
    payload_store: Option<Arc<PayloadStore>>,
}

impl Bridge {
    /// Creates a bridge for `node` wired to the given injection VC buffers.
    pub fn new(node: NodeId, injection_vcs: Vec<Arc<VcBuffer>>, injection_bandwidth: u32) -> Self {
        let slots = (0..injection_vcs.len()).map(|_| None).collect();
        Self {
            node,
            injection_vcs,
            injection_bandwidth: injection_bandwidth.max(1),
            pending: VecDeque::new(),
            slots,
            reassembly: Vec::new(),
            in_flight_payloads: HashMap::new(),
            delivered: VecDeque::new(),
            next_packet_seq: 0,
            payload_store: None,
        }
    }

    /// Attaches the shared payload store so payloads reach remote
    /// destinations (see [`PayloadStore`]).
    pub fn attach_payload_store(&mut self, store: Arc<PayloadStore>) {
        self.payload_store = Some(store);
    }

    /// The node this bridge belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Allocates a packet identifier unique across the simulation (node index
    /// in the high bits, local sequence number in the low bits).
    pub fn alloc_packet_id(&mut self) -> PacketId {
        let id = PacketId::new(((self.node.raw() as u64) << 40) | self.next_packet_seq);
        self.next_packet_seq += 1;
        id
    }

    /// Queues a packet for injection. The packet enters the network when
    /// injection-port buffer space allows; the agent can observe backpressure
    /// through [`pending_packets`](Self::pending_packets).
    pub fn send(&mut self, packet: Packet) {
        self.pending.push_back(packet);
    }

    /// Number of packets queued at the injector (including the ones partially
    /// injected).
    pub fn pending_packets(&self) -> usize {
        self.pending.len() + self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True if the bridge has nothing left to inject.
    pub fn injection_idle(&self) -> bool {
        self.pending.is_empty() && self.slots.iter().all(|s| s.is_none())
    }

    /// Earliest cycle at which the bridge has injection work to do, for
    /// fast-forwarding: `None` when idle.
    pub fn next_injection_event(&self) -> Option<Cycle> {
        if self.injection_idle() {
            None
        } else {
            Some(0)
        }
    }

    /// Takes the next delivered packet, if any.
    pub fn try_recv(&mut self) -> Option<DeliveredPacket> {
        self.delivered.pop_front()
    }

    /// Peeks at the next delivered packet without consuming it.
    pub fn peek_recv(&self) -> Option<&DeliveredPacket> {
        self.delivered.front()
    }

    /// Number of delivered packets waiting for the agent.
    pub fn delivered_len(&self) -> usize {
        self.delivered.len()
    }

    /// Injection step, run during the tile's negative edge: move flits from
    /// the pending queue into the router's injection VC buffers, respecting
    /// buffer capacity, wormhole ordering (one packet per VC at a time) and
    /// the injection bandwidth.
    pub fn inject(&mut self, now: Cycle, stats: &mut NetworkStats) {
        self.inject_traced(now, stats, None);
    }

    /// [`inject`](Self::inject) with an optional event tracer: records a
    /// [`TraceKind::FlitInject`] event per flit that actually enters the
    /// router's injection VCs (back-pressured flits are not traced until the
    /// cycle they go in).
    pub fn inject_traced(
        &mut self,
        now: Cycle,
        stats: &mut NetworkStats,
        mut tracer: Option<&mut TraceRing>,
    ) {
        // Fill idle slots with pending packets.
        for (vc, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(mut packet) = self.pending.pop_front() {
                    packet.injected_at = now;
                    stats.injected_packets += 1;
                    let flits = packet.to_flits(now);
                    if packet.dst == self.node || self.payload_store.is_none() {
                        self.in_flight_payloads.insert(packet.id, packet.clone());
                    } else if let Some(store) = &self.payload_store {
                        store.deposit(packet.clone());
                    }
                    *slot = Some(InjectionSlot {
                        flits: flits.into(),
                    });
                } else {
                    break;
                }
            }
            let _ = vc;
        }
        // Push flits, round-robin over the slots, up to the injection bandwidth.
        let mut budget = self.injection_bandwidth;
        for vc in 0..self.slots.len() {
            if budget == 0 {
                break;
            }
            let Some(slot) = &mut self.slots[vc] else {
                continue;
            };
            while budget > 0 {
                let Some(front) = slot.flits.front() else {
                    break;
                };
                let mut flit = *front;
                flit.visible_at = now + 1;
                flit.stats.injected_at = now;
                flit.stats.arrived_at_current = now;
                // `push` performs its own credit check (it reserves occupancy
                // before enqueueing), so no separate free_space() pre-check is
                // needed.
                if self.injection_vcs[vc].push(flit) {
                    slot.flits.pop_front();
                    stats.injected_flits += 1;
                    budget -= 1;
                    if let Some(t) = tracer.as_deref_mut() {
                        t.record(TraceEvent {
                            cycle: now,
                            node: self.node.raw(),
                            kind: TraceKind::FlitInject,
                            a: flit.packet.raw(),
                            b: flit.seq as u64,
                        });
                    }
                } else {
                    break;
                }
            }
            if slot.flits.is_empty() {
                self.slots[vc] = None;
            }
        }
    }

    /// Accepts flits ejected by the router (run after the router's negative
    /// edge) and reassembles them into delivered packets. The input vector is
    /// drained in place so its allocation survives into the next cycle.
    pub fn accept(&mut self, flits: &mut Vec<Flit>, now: Cycle, stats: &mut NetworkStats) {
        for flit in flits.drain(..) {
            // Find the packet's slab slot (or claim a free one). Linear
            // search: the slab holds at most one entry per ingress VC.
            let mut slot_idx = None;
            let mut free_idx = None;
            for (i, slot) in self.reassembly.iter().enumerate() {
                if slot.expected != 0 {
                    if slot.packet == flit.packet {
                        slot_idx = Some(i);
                        break;
                    }
                } else if free_idx.is_none() {
                    free_idx = Some(i);
                }
            }
            let idx = slot_idx.unwrap_or_else(|| {
                let idx = free_idx.unwrap_or_else(|| {
                    self.reassembly.push(ReassemblySlot::default());
                    self.reassembly.len() - 1
                });
                let slot = &mut self.reassembly[idx];
                slot.packet = flit.packet;
                slot.expected = flit.packet_len;
                debug_assert!(slot.flits.is_empty());
                idx
            });
            let entry = &mut self.reassembly[idx];
            entry.flits.push(flit);
            if entry.flits.len() as u32 == entry.expected {
                let head = entry
                    .flits
                    .iter()
                    .find(|f| f.seq == 0)
                    .copied()
                    .expect("head flit present");
                let tail = entry
                    .flits
                    .iter()
                    .max_by_key(|f| f.seq)
                    .copied()
                    .expect("tail flit present");
                let expected = entry.expected;
                // Release the slot but keep its flit vector's allocation.
                entry.expected = 0;
                entry.flits.clear();
                let packet = self
                    .in_flight_payloads
                    .remove(&flit.packet)
                    .or_else(|| {
                        self.payload_store
                            .as_ref()
                            .and_then(|store| store.claim(flit.packet))
                    })
                    .unwrap_or_else(|| Packet {
                        id: head.packet,
                        flow: head.original_flow,
                        src: head.src,
                        dst: head.dst,
                        len_flits: head.packet_len,
                        created_at: head.stats.injected_at,
                        injected_at: head.stats.injected_at,
                        payload: crate::flit::Payload::empty(),
                    });
                stats.record_delivery(
                    packet.flow,
                    expected as u64,
                    head.stats.accumulated_latency,
                    tail.stats.accumulated_latency,
                    tail.stats.hops,
                );
                self.delivered.push_back(DeliveredPacket {
                    packet,
                    delivered_at: now,
                    head_latency: head.stats.accumulated_latency,
                    tail_latency: tail.stats.accumulated_latency,
                    hops: tail.stats.hops,
                });
            }
        }
    }

    /// Forgets a payload for a packet injected on another node but destined
    /// here (payloads travel out-of-band between bridges on different tiles
    /// only via [`accept`]'s fallback reconstruction). Exposed for the memory
    /// hierarchy, which re-attaches payloads from its own protocol state.
    pub fn register_inbound_payload(&mut self, packet: Packet) {
        self.in_flight_payloads.insert(packet.id, packet);
    }

    /// Serializes the bridge's architectural state: the id allocator, the
    /// pending queue, the per-VC injection slots, the active reassembly
    /// slots, the in-flight loopback payloads (sorted by packet id so the
    /// encoding is canonical) and the delivered-but-unconsumed packets.
    pub fn snapshot(&self, e: &mut Enc) {
        e.u64(self.next_packet_seq);
        e.u32(self.pending.len() as u32);
        for p in &self.pending {
            codec::encode_packet(e, p);
        }
        e.u32(self.slots.len() as u32);
        for slot in &self.slots {
            match slot {
                None => {
                    e.u8(0);
                }
                Some(s) => {
                    e.u8(1).u32(s.flits.len() as u32);
                    for f in &s.flits {
                        codec::encode_flit(e, f);
                    }
                }
            }
        }
        let active: Vec<&ReassemblySlot> =
            self.reassembly.iter().filter(|s| s.expected != 0).collect();
        e.u32(active.len() as u32);
        for slot in active {
            e.u64(slot.packet.raw()).u32(slot.expected);
            e.u32(slot.flits.len() as u32);
            for f in &slot.flits {
                codec::encode_flit(e, f);
            }
        }
        let mut payloads: Vec<&Packet> = self.in_flight_payloads.values().collect();
        payloads.sort_by_key(|p| p.id.raw());
        e.u32(payloads.len() as u32);
        for p in payloads {
            codec::encode_packet(e, p);
        }
        e.u32(self.delivered.len() as u32);
        for d in &self.delivered {
            codec::encode_packet(e, &d.packet);
            e.u64(d.delivered_at)
                .u64(d.head_latency)
                .u64(d.tail_latency)
                .u32(d.hops);
        }
    }

    /// Restores the state captured by [`snapshot`](Self::snapshot) into this
    /// freshly built bridge.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` if the injection VC count does not match or
    /// the checkpoint is corrupt.
    pub fn restore(&mut self, d: &mut Dec) -> std::io::Result<()> {
        let corrupt = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bridge checkpoint: {what}"),
            )
        };
        self.next_packet_seq = d.u64()?;
        self.pending = (0..d.u32()?)
            .map(|_| codec::decode_packet(d))
            .collect::<std::io::Result<_>>()?;
        if d.u32()? as usize != self.slots.len() {
            return Err(corrupt("injection VC count mismatch"));
        }
        for slot in &mut self.slots {
            *slot = match d.u8()? {
                0 => None,
                _ => Some(InjectionSlot {
                    flits: (0..d.u32()?)
                        .map(|_| codec::decode_flit(d))
                        .collect::<std::io::Result<_>>()?,
                }),
            };
        }
        self.reassembly.clear();
        for _ in 0..d.u32()? {
            let packet = PacketId::new(d.u64()?);
            let expected = d.u32()?;
            if expected == 0 {
                return Err(corrupt("free reassembly slot in checkpoint"));
            }
            let flits = (0..d.u32()?)
                .map(|_| codec::decode_flit(d))
                .collect::<std::io::Result<_>>()?;
            self.reassembly.push(ReassemblySlot {
                packet,
                expected,
                flits,
            });
        }
        self.in_flight_payloads.clear();
        for _ in 0..d.u32()? {
            let p = codec::decode_packet(d)?;
            self.in_flight_payloads.insert(p.id, p);
        }
        self.delivered.clear();
        for _ in 0..d.u32()? {
            let packet = codec::decode_packet(d)?;
            self.delivered.push_back(DeliveredPacket {
                packet,
                delivered_at: d.u64()?,
                head_latency: d.u64()?,
                tail_latency: d.u64()?,
                hops: d.u32()?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Payload;
    use crate::ids::FlowId;

    fn bridge_with_vcs(n: usize, capacity: usize) -> Bridge {
        let vcs = (0..n).map(|_| Arc::new(VcBuffer::new(capacity))).collect();
        Bridge::new(NodeId::new(0), vcs, 1)
    }

    fn packet(id: u64, len: u32) -> Packet {
        Packet::new(
            PacketId::new(id),
            FlowId::new(1),
            NodeId::new(0),
            NodeId::new(1),
            len,
            0,
        )
    }

    #[test]
    fn packet_ids_are_unique_and_node_scoped() {
        let mut b0 = bridge_with_vcs(1, 4);
        let mut b1 = Bridge::new(NodeId::new(1), vec![Arc::new(VcBuffer::new(4))], 1);
        let ids: Vec<_> = (0..10)
            .map(|_| b0.alloc_packet_id())
            .chain((0..10).map(|_| b1.alloc_packet_id()))
            .collect();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn injection_respects_bandwidth_and_capacity() {
        let mut b = bridge_with_vcs(1, 2);
        let mut stats = NetworkStats::new();
        b.send(packet(1, 4));
        assert_eq!(b.pending_packets(), 1);
        b.inject(0, &mut stats);
        // Bandwidth 1: only one flit entered this cycle.
        assert_eq!(stats.injected_flits, 1);
        b.inject(1, &mut stats);
        assert_eq!(stats.injected_flits, 2);
        // Buffer is now full (capacity 2); further injection stalls.
        b.inject(2, &mut stats);
        assert_eq!(stats.injected_flits, 2);
        assert!(!b.injection_idle());
    }

    #[test]
    fn reassembly_delivers_complete_packets_only() {
        let mut b = bridge_with_vcs(1, 4);
        let mut stats = NetworkStats::new();
        let p = packet(7, 3);
        let flits = p.to_flits(0);
        b.accept(&mut vec![flits[0], flits[1]], 5, &mut stats);
        assert!(b.try_recv().is_none());
        b.accept(&mut vec![flits[2]], 6, &mut stats);
        let d = b.try_recv().expect("packet delivered");
        assert_eq!(d.packet.id, p.id);
        assert_eq!(d.delivered_at, 6);
        assert_eq!(stats.delivered_packets, 1);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn payloads_survive_when_registered() {
        let mut b = bridge_with_vcs(1, 4);
        let mut stats = NetworkStats::new();
        let p = packet(9, 2).with_payload(Payload::from_words(&[0xdead, 0xbeef]));
        b.register_inbound_payload(p.clone());
        let mut flits = p.to_flits(0);
        b.accept(&mut flits, 3, &mut stats);
        let d = b.try_recv().unwrap();
        assert_eq!(d.packet.payload.words(), &[0xdead, 0xbeef]);
    }

    #[test]
    fn multi_vc_bridge_interleaves_packets() {
        let mut b = Bridge::new(
            NodeId::new(0),
            vec![Arc::new(VcBuffer::new(8)), Arc::new(VcBuffer::new(8))],
            4,
        );
        let mut stats = NetworkStats::new();
        b.send(packet(1, 2));
        b.send(packet(2, 2));
        b.inject(0, &mut stats);
        // Both packets got a slot; with bandwidth 4 all four flits entered.
        assert_eq!(stats.injected_flits, 4);
        assert!(b.injection_idle());
        assert_eq!(b.next_injection_event(), None);
    }
}
