//! The compiled shard-local cycle kernel.
//!
//! The reference simulator interprets one [`Router`] object at a time,
//! walking every ingress VC of every tile through absorb → SA → VA → RC each
//! cycle. That per-object, per-VC dispatch is exactly the overhead the BEE
//! and Parendi lines of work remove by *compiling* the simulated fabric into
//! flat batched execution streams. [`MeshKernel`] is that move for a shard of
//! tiles: at build time it lowers the shard's routers into contiguous
//! structure-of-arrays acceleration state — a flat, tile-major array of VC
//! buffer handles, per-tile occupancy bitmasks for every pipeline predicate
//! (cached head present, Routed, Active, Dropping, touched-since-last-edge) —
//! and then sweeps each pipeline stage across *all* tiles in tight
//! bit-iteration loops that only ever visit VCs the stage can act on.
//!
//! Two properties make the kernel fast without forking the model:
//!
//! * **Quiet tiles cost O(1).** A tile with no buffered flit skips absorb,
//!   SA, VA and RC entirely (one aggregate atomic load + clearing any stale
//!   cached heads, found by bitmask). Per-cycle cost scales with *activity*,
//!   not with fabric size.
//! * **Untouched VCs cost nothing.** A VC is re-absorbed (one lock) only when
//!   something touched it since the previous positive edge: a local pop, a
//!   downstream push from a neighbour tile (tracked through a pointer→bit
//!   map), a bridge injection, or a boundary delivery
//!   ([`note_external_push`](MeshKernel::note_external_push)). For an
//!   untouched VC the interpreter's absorb is a provable no-op, so skipping
//!   it is invisible.
//!
//! The kernel holds **no authoritative state**: VC state machines, head
//! caches, staged moves, statistics and the clock all stay on the routers, so
//! snapshot/restore, telemetry and the ledger read the tiles exactly as they
//! do under the interpreter, with no flush step. Every stage replicates the
//! interpreter's code path — including its per-tile RNG draw sequence and
//! stat-counting order — so kernel and interpreter runs are bit-identical in
//! statistics *and* canonical flit traces. Stage-major execution across tiles
//! is safe because positive-edge cross-tile reads (occupancy, free space) are
//! phase-stable: buffers change only at the negative edge.
//!
//! Configurations the flat specialization cannot represent — adaptive routing
//! (extra RNG draws keyed to cross-tile free space), bandwidth-adaptive
//! bidirectional links (negative-edge demand publication), more than 64 VCs
//! on one tile, or egress channels pointing outside the compiled tile set —
//! make [`MeshKernel::compile`] return `None` and the caller falls back to
//! the interpreter.

use crate::boundary::EgressChannel;
use crate::ids::{Cycle, VcId};
use crate::network::NetworkNode;
use crate::router::{pick_weighted, SaCandidate, StagedMove, VcState};
use crate::routing::NextHop;
use crate::vca::{DownstreamVc, VcaRequest};
use crate::vcbuf::VcBuffer;
use hornet_obs::trace::{TraceEvent, TraceKind};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a backend executes router cycles: interpreter, compiled kernel, or
/// auto-detection.
///
/// `Auto` (the default) compiles the kernel whenever the configuration is
/// eligible and honours the `HORNET_KERNEL` environment variable (`off`
/// disables, `on`/`force` insists). Explicit `Off`/`Force` always win over
/// the environment, so programmatic selections are immune to it. `Force`
/// still falls back to the interpreter when the configuration is ineligible —
/// both paths are bit-identical, so the choice is purely about speed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelMode {
    /// Use the kernel when eligible; consult `HORNET_KERNEL`.
    #[default]
    Auto,
    /// Always interpret.
    Off,
    /// Use the kernel whenever the configuration is eligible, ignoring the
    /// environment.
    Force,
}

impl KernelMode {
    /// Applies the `HORNET_KERNEL` environment override (consulted only in
    /// `Auto` mode).
    pub fn resolved(self) -> KernelMode {
        match self {
            KernelMode::Auto => match std::env::var("HORNET_KERNEL") {
                Ok(v) => match v.to_ascii_lowercase().as_str() {
                    "off" | "0" | "interp" | "interpreter" => KernelMode::Off,
                    "on" | "1" | "force" | "kernel" => KernelMode::Force,
                    _ => KernelMode::Auto,
                },
                Err(_) => KernelMode::Auto,
            },
            explicit => explicit,
        }
    }

    /// True unless the resolved mode disables the kernel.
    pub fn enabled(self) -> bool {
        !matches!(self.resolved(), KernelMode::Off)
    }
}

impl std::str::FromStr for KernelMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(KernelMode::Auto),
            "off" | "interp" | "interpreter" => Ok(KernelMode::Off),
            "on" | "force" | "kernel" => Ok(KernelMode::Force),
            other => Err(format!(
                "unknown kernel mode {other:?} (expected auto|off|force)"
            )),
        }
    }
}

/// Accumulated wall-clock time per kernel pipeline stage (all zero unless
/// timing was enabled at compile time).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimes {
    /// Absorb + head-snapshot + quiet-tile triage.
    pub absorb: Duration,
    /// Switch arbitration (per flit).
    pub sa: Duration,
    /// VC allocation (per packet).
    pub va: Duration,
    /// Route computation (per packet).
    pub rc: Duration,
    /// Negative edge, router half: staged moves and drops.
    pub negedge: Duration,
    /// Negative edge, bridge half: ejected-flit hand-off and injection.
    pub bridge: Duration,
}

/// Per-flat-VC location: which tile and which bit within the tile's masks.
#[inline]
fn pack_loc(tile: usize, bit: usize) -> u64 {
    ((tile as u64) << 6) | bit as u64
}

/// The compiled cycle kernel for one shard's tiles (see the module docs).
pub struct MeshKernel {
    /// Flat, tile-major clones of every ingress VC buffer; tile `t` owns
    /// `vcs[tile_off[t]..tile_off[t + 1]]`, inner order `(port, vc)`
    /// ascending — identical to the router's own `head_cache` layout, so a
    /// tile-local bit index doubles as the router's head-cache index.
    vcs: Vec<Arc<VcBuffer>>,
    /// Ingress port of each flat VC.
    vc_port: Vec<u32>,
    /// VC index within its ingress port of each flat VC.
    vc_sub: Vec<u32>,
    /// Start of each tile's slice in `vcs` (length `tiles + 1`).
    tile_off: Vec<u32>,
    /// `Arc::as_ptr` of every ingress VC buffer → packed (tile, bit), for
    /// marking the downstream VC dirty when a negative-edge push lands in it.
    by_ptr: HashMap<usize, u64>,
    /// Bits covering each tile's injection-port VCs (bridge injections).
    inj_mask: Vec<u64>,
    /// Bits covering each tile's full VC range.
    valid: Vec<u64>,
    // --- per-tile pipeline predicates (bit set ⇔ predicate holds) ---
    /// The router's cached head snapshot is `Some` for this VC.
    head_mask: Vec<u64>,
    /// VC state is `Routed`.
    routed: Vec<u64>,
    /// VC state is `Active`.
    active: Vec<u64>,
    /// VC state is `Dropping`.
    dropping: Vec<u64>,
    /// VC received a push since the last positive edge and needs its absorb
    /// cursor advanced (and, if it had no cached head, a fresh head peek).
    /// Pops need no mask: the negative edge refreshes the head cache in
    /// place, since the successor flit is already absorbed (pops never move
    /// the absorb boundary).
    dirty: Vec<u64>,
    // --- shared per-cycle scratch (one set for all tiles) ---
    /// Tiles with at least one buffered flit this positive edge.
    busy: Vec<u32>,
    sa_cand: Vec<SaCandidate>,
    ingress_granted: Vec<u32>,
    egress_granted: Vec<u32>,
    /// Generation-stamped flat map `(egress, out_vc) → flits staged this
    /// cycle for the tile currently in switch arbitration`.
    staged_count: Vec<u32>,
    staged_stamp: Vec<u64>,
    staged_gen: u64,
    /// Stride of the staged tables (widest egress port across all tiles).
    stride: usize,
    /// Packed (tile, bit) of the ingress VC each local egress channel feeds,
    /// indexed `tile * egress_stride + egress * stride + out_vc`
    /// (`u64::MAX` for ejection/non-local channels). Topology is static, so
    /// resolving push targets through this flat table replaces a per-move
    /// `by_ptr` hash lookup on the negative edge.
    egress_target: Vec<u64>,
    /// Row length of `egress_target` per tile (`max_egress * stride`).
    egress_stride: usize,
    route_scratch: Vec<NextHop>,
    downstream_scratch: Vec<DownstreamVc>,
    vca_scratch: Vec<(VcId, f64)>,
    timing: bool,
    times: StageTimes,
}

impl std::fmt::Debug for MeshKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeshKernel")
            .field("tiles", &(self.tile_off.len().saturating_sub(1)))
            .field("vcs", &self.vcs.len())
            .finish()
    }
}

impl MeshKernel {
    /// Lowers `nodes` into the kernel's flat acceleration state, or returns
    /// `None` if the configuration is ineligible (adaptive routing,
    /// bandwidth-adaptive links, more than 64 VCs on one tile, or a local
    /// egress channel pointing outside `nodes` — e.g. a direct router-level
    /// wiring the network builder did not produce).
    ///
    /// Compiling is cheap — O(total VCs) — and may be repeated freely, e.g.
    /// after a snapshot restore; all masks are derived from the routers'
    /// current architectural state and every VC starts dirty.
    pub fn compile(nodes: &[NetworkNode], timing: bool) -> Option<Self> {
        let tiles = nodes.len();
        let mut k = MeshKernel {
            vcs: Vec::new(),
            vc_port: Vec::new(),
            vc_sub: Vec::new(),
            tile_off: Vec::with_capacity(tiles + 1),
            by_ptr: HashMap::new(),
            inj_mask: vec![0; tiles],
            valid: vec![0; tiles],
            head_mask: vec![0; tiles],
            routed: vec![0; tiles],
            active: vec![0; tiles],
            dropping: vec![0; tiles],
            dirty: vec![0; tiles],
            busy: Vec::with_capacity(tiles),
            sa_cand: Vec::new(),
            ingress_granted: Vec::new(),
            egress_granted: Vec::new(),
            staged_count: Vec::new(),
            staged_stamp: Vec::new(),
            staged_gen: 0,
            egress_target: Vec::new(),
            egress_stride: 0,
            stride: 1,
            route_scratch: Vec::new(),
            downstream_scratch: Vec::new(),
            vca_scratch: Vec::new(),
            timing,
            times: StageTimes::default(),
        };

        let mut max_ingress = 0usize;
        let mut max_egress = 0usize;
        for (t, node) in nodes.iter().enumerate() {
            let r = &node.router;
            if r.routing.is_adaptive() {
                return None; // extra RNG draws keyed to cross-tile free space
            }
            let total_vcs: usize = r.ingress.iter().map(|p| p.vcs.len()).sum();
            if total_vcs > 64 {
                return None; // one mask word per tile
            }
            max_ingress = max_ingress.max(r.ingress.len());
            max_egress = max_egress.max(r.egress.len());
            for e in &r.egress {
                if e.bidir.is_some() {
                    return None; // negative-edge demand publication
                }
                k.stride = k.stride.max(e.buffers.len());
            }

            k.tile_off.push(k.vcs.len() as u32);
            let mut bit = 0usize;
            for (p, port) in r.ingress.iter().enumerate() {
                for (v, vc) in port.vcs.iter().enumerate() {
                    k.by_ptr.insert(Arc::as_ptr(vc) as usize, pack_loc(t, bit));
                    k.vc_port.push(p as u32);
                    k.vc_sub.push(v as u32);
                    k.vcs.push(Arc::clone(vc));
                    if p == r.injection_port {
                        k.inj_mask[t] |= 1 << bit;
                    }
                    k.valid[t] |= 1 << bit;
                    if r.head_cache[bit].is_some() {
                        k.head_mask[t] |= 1 << bit;
                    }
                    match port.state[v] {
                        VcState::Idle => {}
                        VcState::Routed { .. } => k.routed[t] |= 1 << bit,
                        VcState::Active { .. } => k.active[t] |= 1 << bit,
                        VcState::Dropping => k.dropping[t] |= 1 << bit,
                    }
                    bit += 1;
                }
            }
            // Everything starts dirty: the first positive edge re-absorbs
            // every VC, exactly like the interpreter does every cycle.
            k.dirty[t] = k.valid[t];
        }
        k.tile_off.push(k.vcs.len() as u32);

        // Every local egress channel must land in a compiled tile's ingress,
        // otherwise its pushes would escape the dirty tracking. The resolved
        // targets are frozen into `egress_target` so the negative edge can
        // mark downstream VCs dirty with an array index instead of a hash
        // lookup per staged move.
        k.egress_stride = max_egress * k.stride;
        k.egress_target = vec![u64::MAX; tiles * k.egress_stride];
        for (t, node) in nodes.iter().enumerate() {
            for (p, e) in node.router.egress.iter().enumerate() {
                for (v, ch) in e.buffers.iter().enumerate() {
                    if let EgressChannel::Local(buf) = ch {
                        let &packed = k.by_ptr.get(&(Arc::as_ptr(buf) as usize))?;
                        k.egress_target[t * k.egress_stride + p * k.stride + v] = packed;
                    }
                }
            }
        }

        k.ingress_granted = vec![0; max_ingress];
        k.egress_granted = vec![0; max_egress];
        k.staged_count = vec![0; max_egress * k.stride];
        k.staged_stamp = vec![0; max_egress * k.stride];
        Some(k)
    }

    /// Accumulated per-stage timings (all zero unless compiled with timing).
    pub fn stage_times(&self) -> StageTimes {
        self.times
    }

    /// Marks the target VC of an out-of-band push (e.g. a boundary delivery
    /// from another shard) dirty so the next positive edge re-absorbs it.
    /// Buffers the kernel does not manage are ignored.
    pub fn note_external_push(&mut self, buf: &Arc<VcBuffer>) {
        if let Some(&packed) = self.by_ptr.get(&(Arc::as_ptr(buf) as usize)) {
            self.dirty[(packed >> 6) as usize] |= 1 << (packed & 63);
        }
    }

    /// Positive clock edge for every tile: absorb (dirty VCs only), then the
    /// SA, VA and RC sweeps over the busy tiles, then the agent ticks.
    /// Bit-identical to calling [`NetworkNode::posedge`] on every tile in
    /// order.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `nodes` is not the slice this kernel was
    /// compiled from.
    pub fn posedge(&mut self, nodes: &mut [NetworkNode], now: Cycle) {
        debug_assert_eq!(nodes.len() + 1, self.tile_off.len(), "tile set changed");
        let mut lap = self.timing.then(Instant::now);

        // --- absorb + quiet-tile triage -------------------------------
        self.busy.clear();
        for (t, node) in nodes.iter_mut().enumerate() {
            let r = &mut node.router;
            r.cycle = now;
            r.staged.clear();
            r.staged_drops.clear();
            r.stats.simulated_cycles += 1;
            r.stats.last_cycle = now;

            if r.buffered_flits() == 0 {
                // Quiet tile: every stage would be a no-op; just invalidate
                // stale cached heads (the interpreter nulls them during its
                // absorb scan).
                let mut m = self.head_mask[t];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    r.head_cache[b] = None;
                }
                self.head_mask[t] = 0;
                self.dirty[t] = 0;
                continue;
            }
            r.stats.busy_cycles += 1;

            let lo = self.tile_off[t] as usize;
            let pushed = self.dirty[t];
            let mut hm = self.head_mask[t];
            // Pushed VCs that already have a cached head only need the absorb
            // cursor advanced — a push can never change the head flit of a
            // non-empty buffer, so the (88-byte) head re-copy is skipped.
            let mut cursor_only = pushed & hm;
            let mut m = pushed & !hm;
            let mut absorbed = 0u64;
            while cursor_only != 0 {
                let b = cursor_only.trailing_zeros() as usize;
                cursor_only &= cursor_only - 1;
                absorbed += self.vcs[lo + b].absorb_tail() as u64;
            }
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                m &= m - 1;
                let vc = &self.vcs[lo + b];
                let (n, head) = vc.absorb_and_peek();
                absorbed += n as u64;
                if head.is_some() {
                    hm |= 1 << b;
                }
                r.head_cache[b] = head;
            }
            self.head_mask[t] = hm;
            self.dirty[t] = 0;
            r.stats.activity.buffer_writes += absorbed;
            self.busy.push(t as u32);
        }
        lap = self.lap(lap, |s| &mut s.times.absorb);

        // Stage-major sweeps. Safe to reorder across tiles: RNGs are
        // per-tile, the within-tile SA → VA → RC order is preserved, and all
        // cross-tile reads (occupancy / free space) are stable for the whole
        // positive edge (buffers change only at the negative edge).
        let busy = std::mem::take(&mut self.busy);
        for &t in &busy {
            self.sa_tile(&mut nodes[t as usize], t as usize, now);
        }
        lap = self.lap(lap, |s| &mut s.times.sa);
        for &t in &busy {
            self.va_tile(&mut nodes[t as usize], t as usize, now);
        }
        lap = self.lap(lap, |s| &mut s.times.va);
        for &t in &busy {
            self.rc_tile(&mut nodes[t as usize], t as usize, now);
        }
        self.busy = busy;
        self.lap(lap, |s| &mut s.times.rc);

        // Agents run on *every* tile (they inject into quiet ones), after
        // their own tile's router stages — as in the interpreter.
        for node in nodes.iter_mut() {
            node.tick_agents(now);
        }
    }

    /// Negative clock edge for every tile: apply the staged moves and drops,
    /// then run the bridge transfers. Bit-identical to calling
    /// [`NetworkNode::negedge`] on every tile in order — the bridge sweep may
    /// run after *all* router sweeps because a tile's bridge only touches its
    /// own delivery queue and injection buffers, whose state depends only on
    /// that tile's router half (which the interpreter also runs first).
    pub fn negedge(&mut self, nodes: &mut [NetworkNode], now: Cycle) {
        let mut lap = self.timing.then(Instant::now);
        for (t, node) in nodes.iter_mut().enumerate() {
            self.negedge_router(node, t, now);
        }
        lap = self.lap(lap, |s| &mut s.times.negedge);
        for (t, node) in nodes.iter_mut().enumerate() {
            let before = node.router.stats.injected_flits;
            node.negedge_bridge(now);
            if node.router.stats.injected_flits != before {
                self.dirty[t] |= self.inj_mask[t];
            }
        }
        self.lap(lap, |s| &mut s.times.bridge);
    }

    /// Records a stage lap when timing is enabled and starts the next one.
    #[inline]
    fn lap(
        &mut self,
        started: Option<Instant>,
        slot: impl FnOnce(&mut Self) -> &mut Duration,
    ) -> Option<Instant> {
        let s = started?;
        *slot(self) += s.elapsed();
        Some(Instant::now())
    }

    /// Switch arbitration for one tile; replicates
    /// `Router::switch_arbitration` (candidate gather order, RNG shuffle,
    /// grant bookkeeping) with the candidates found by bitmask instead of a
    /// full VC scan. Staged moves land in the router's own `staged` /
    /// `staged_drops`, so snapshots and a later interpreter hand-off see
    /// exactly the interpreter's state.
    fn sa_tile(&mut self, node: &mut NetworkNode, t: usize, now: Cycle) {
        let r = &mut node.router;
        let lo = self.tile_off[t] as usize;
        let mut cand = std::mem::take(&mut self.sa_cand);
        cand.clear();
        let mut m = (self.active[t] | self.dropping[t]) & self.head_mask[t];
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            match &r.head_cache[b] {
                Some(f) if f.visible_at <= now => {}
                _ => continue,
            }
            let p = self.vc_port[lo + b] as usize;
            let v = self.vc_sub[lo + b] as usize;
            match r.ingress[p].state[v] {
                VcState::Active {
                    egress,
                    out_vc,
                    next_flow,
                } => cand.push(SaCandidate {
                    ingress: p,
                    vc: v,
                    egress,
                    out_vc,
                    next_flow,
                }),
                VcState::Dropping => r.staged_drops.push((p, v)),
                _ => unreachable!("mask out of sync with VC state"),
            }
        }
        if cand.is_empty() {
            self.sa_cand = cand;
            return;
        }
        r.stats.activity.arbitrations += cand.len() as u64;

        // Randomize consideration order to break ties fairly (identical
        // Fisher–Yates draw sequence to the interpreter).
        for i in (1..cand.len()).rev() {
            let j = node.rng.gen_range(0..=i);
            cand.swap(i, j);
        }

        let ingress_bw = r.cfg.link_bandwidth.max(1);
        self.ingress_granted[..r.ingress.len()]
            .iter_mut()
            .for_each(|g| *g = 0);
        self.egress_granted[..r.egress.len()]
            .iter_mut()
            .for_each(|g| *g = 0);
        self.staged_gen += 1;

        for c in &cand {
            if self.ingress_granted[c.ingress] >= ingress_bw {
                continue;
            }
            let egress_bw = r.egress_bandwidth(c.egress);
            if self.egress_granted[c.egress] >= egress_bw {
                continue;
            }
            let key = c.egress * self.stride + c.out_vc;
            if c.egress != r.ejection_port {
                let already = if self.staged_stamp[key] == self.staged_gen {
                    self.staged_count[key] as usize
                } else {
                    0
                };
                if r.egress[c.egress].buffers[c.out_vc].free_space() <= already {
                    continue; // no downstream credit
                }
            }
            self.ingress_granted[c.ingress] += 1;
            self.egress_granted[c.egress] += 1;
            if self.staged_stamp[key] == self.staged_gen {
                self.staged_count[key] += 1;
            } else {
                self.staged_stamp[key] = self.staged_gen;
                self.staged_count[key] = 1;
            }
            r.staged.push(StagedMove {
                ingress: c.ingress,
                vc: c.vc,
                egress: c.egress,
                out_vc: c.out_vc,
                next_flow: c.next_flow,
            });
        }
        self.sa_cand = cand;
    }

    /// VC allocation for one tile; replicates `Router::vc_allocation` with
    /// the Routed VCs found by bitmask.
    fn va_tile(&mut self, node: &mut NetworkNode, t: usize, now: Cycle) {
        let r = &mut node.router;
        let lo = self.tile_off[t] as usize;
        let mut downstream = std::mem::take(&mut self.downstream_scratch);
        let mut cand = std::mem::take(&mut self.vca_scratch);
        // Downstream snapshots are stable for the whole positive edge
        // (buffers move only at the negative edge) except for the `out_state`
        // assignments this very loop makes — so build each egress port's
        // snapshot at most once per tile per cycle and invalidate it only
        // when a VC on that port is granted. Under congestion many Routed
        // heads retry the same port every cycle; they all share one build.
        let mut built: u64 = 0;
        let mut m = self.routed[t];
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let (flow, packet) = match &r.head_cache[b] {
                Some(f) if f.visible_at <= now => (f.flow, f.packet),
                _ => continue,
            };
            let p = self.vc_port[lo + b] as usize;
            let v = self.vc_sub[lo + b] as usize;
            let VcState::Routed { egress, next_flow } = r.ingress[p].state[v] else {
                unreachable!("mask out of sync with VC state");
            };
            r.stats.activity.arbitrations += 1;
            if egress == r.ejection_port {
                r.ingress[p].state[v] = VcState::Active {
                    egress,
                    out_vc: 0,
                    next_flow,
                };
                self.routed[t] &= !(1 << b);
                self.active[t] |= 1 << b;
                continue;
            }
            let lo_ds = egress * self.stride;
            if built & (1 << egress) == 0 {
                built |= 1 << egress;
                let e = &r.egress[egress];
                downstream.resize(
                    downstream.len().max(lo_ds + e.buffers.len()),
                    DownstreamVc {
                        vc: VcId::new(0),
                        free_for_allocation: false,
                        occupancy: 0,
                        capacity: 0,
                        resident_flow: None,
                    },
                );
                for (i, buf) in e.buffers.iter().enumerate() {
                    let occupancy = buf.occupancy();
                    downstream[lo_ds + i] = DownstreamVc {
                        vc: VcId::new(i as u16),
                        free_for_allocation: e.out_state[i].owner.is_none(),
                        occupancy,
                        capacity: buf.capacity(),
                        resident_flow: if occupancy > 0 || e.out_state[i].owner.is_some() {
                            e.out_state[i].resident_flow
                        } else {
                            None
                        },
                    };
                }
            }
            let req = VcaRequest {
                prev: r.ingress[p].upstream,
                flow,
                next: r.egress[egress].downstream,
                next_flow,
            };
            let port_vcs = r.egress[egress].buffers.len();
            r.vca
                .candidates_into(&req, &downstream[lo_ds..lo_ds + port_vcs], &mut cand);
            if cand.is_empty() {
                continue; // wait in the VA stage
            }
            let (vc_id, _) = pick_weighted(&mut node.rng, &cand, |c| c.1);
            let out_vc = vc_id.index();
            r.egress[egress].out_state[out_vc].owner = Some(packet);
            r.egress[egress].out_state[out_vc].resident_flow = Some(next_flow);
            built &= !(1 << egress);
            r.ingress[p].state[v] = VcState::Active {
                egress,
                out_vc,
                next_flow,
            };
            self.routed[t] &= !(1 << b);
            self.active[t] |= 1 << b;
        }
        self.downstream_scratch = downstream;
        self.vca_scratch = cand;
    }

    /// Route computation for one tile; replicates `Router::route_computation`
    /// for the non-adaptive policies the kernel specializes (the adaptive
    /// branch — and its extra RNG draws — is excluded at compile time).
    fn rc_tile(&mut self, node: &mut NetworkNode, t: usize, now: Cycle) {
        let NetworkNode {
            router: r,
            rng,
            tracer,
            ..
        } = node;
        let lo = self.tile_off[t] as usize;
        let mut cand = std::mem::take(&mut self.route_scratch);
        let idle = self.valid[t] & !(self.routed[t] | self.active[t] | self.dropping[t]);
        let mut m = idle & self.head_mask[t];
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let (is_head, flow, dst, packet) = match &r.head_cache[b] {
                Some(f) if f.visible_at <= now => (f.is_head(), f.flow, f.dst, f.packet),
                _ => continue,
            };
            let p = self.vc_port[lo + b] as usize;
            let v = self.vc_sub[lo + b] as usize;
            if !is_head {
                // A body flit at the head of an idle VC can only happen if
                // the packet was dropped upstream; discard it.
                r.ingress[p].state[v] = VcState::Dropping;
                self.dropping[t] |= 1 << b;
                continue;
            }
            let prev = r.ingress[p].upstream;
            r.routing
                .candidates_into(r.node, prev, flow, dst, &mut cand);
            if cand.is_empty() {
                r.stats.routing_failures += 1;
                r.ingress[p].state[v] = VcState::Dropping;
                self.dropping[t] |= 1 << b;
                continue;
            }
            let choice = pick_weighted(rng, &cand, |c| c.weight);
            let egress = if choice.next_node == r.node {
                r.ejection_port
            } else {
                r.egress_of(choice.next_node)
            };
            r.ingress[p].state[v] = VcState::Routed {
                egress,
                next_flow: choice.next_flow,
            };
            self.routed[t] |= 1 << b;
            if let Some(tr) = tracer.as_deref_mut() {
                tr.record(TraceEvent {
                    cycle: now,
                    node: r.node.raw(),
                    kind: TraceKind::FlitRoute,
                    a: packet.raw(),
                    b: egress as u64,
                });
            }
        }
        self.route_scratch = cand;
    }

    /// The router half of one tile's negative edge; replicates
    /// `Router::negedge` (bandwidth-adaptive demand publication excluded at
    /// compile time) with dirty/state-mask bookkeeping on every pop and push.
    fn negedge_router(&mut self, node: &mut NetworkNode, t: usize, now: Cycle) {
        let r = &mut node.router;
        for i in 0..r.staged.len() {
            let m = r.staged[i];
            let Some(mut flit) = r.ingress[m.ingress].vcs[m.vc].pop_if(now, |_| true) else {
                continue;
            };
            let bit = r.ingress_offsets[m.ingress] + m.vc;
            // Refresh the cached head in place: the successor flit (if any)
            // is already absorbed, so no positive-edge re-peek is needed.
            let head = r.ingress[m.ingress].vcs[m.vc].head_snapshot();
            if head.is_none() {
                self.head_mask[t] &= !(1 << bit);
            }
            r.head_cache[bit] = head;
            r.stats.activity.buffer_reads += 1;
            r.stats.activity.crossbar_transits += 1;

            // Accumulate the residence time at this node into the flit itself.
            let departure = now + 1;
            flit.stats.accumulated_latency +=
                departure.saturating_sub(flit.stats.arrived_at_current);
            flit.stats.arrived_at_current = departure;
            flit.flow = m.next_flow;
            flit.visible_at = departure;

            let is_tail = flit.is_tail();
            if m.egress == r.ejection_port {
                r.stats.total_flit_latency += flit.stats.accumulated_latency;
                r.stats.delivered_flits += 1;
                r.delivered.push(flit);
            } else {
                flit.stats.hops += 1;
                r.stats.activity.link_flits += 1;
                let ch = &r.egress[m.egress].buffers[m.out_vc];
                if ch.push(flit) {
                    // Compile froze every local target into `egress_target`;
                    // non-local channels carry the MAX sentinel.
                    let packed = self.egress_target
                        [t * self.egress_stride + m.egress * self.stride + m.out_vc];
                    if packed != u64::MAX {
                        self.dirty[(packed >> 6) as usize] |= 1 << (packed & 63);
                    }
                } else {
                    // Credit checking should make this impossible; record it
                    // as a routing failure so tests can detect flow-control
                    // bugs rather than silently losing flits.
                    r.stats.routing_failures += 1;
                }
                if is_tail {
                    r.egress[m.egress].out_state[m.out_vc].owner = None;
                }
            }
            if is_tail {
                r.ingress[m.ingress].state[m.vc] = VcState::Idle;
                self.active[t] &= !(1 << bit);
            }
        }
        r.staged.clear();

        // Discard flits of packets that could not be routed.
        for i in 0..r.staged_drops.len() {
            let (p, v) = r.staged_drops[i];
            if let Some(flit) = r.ingress[p].vcs[v].pop_if(now, |_| true) {
                let bit = r.ingress_offsets[p] + v;
                let head = r.ingress[p].vcs[v].head_snapshot();
                if head.is_none() {
                    self.head_mask[t] &= !(1 << bit);
                }
                r.head_cache[bit] = head;
                r.stats.activity.buffer_reads += 1;
                if flit.is_tail() {
                    r.ingress[p].state[v] = VcState::Idle;
                    self.dropping[t] &= !(1 << bit);
                }
            }
        }
        r.staged_drops.clear();
    }
}
