//! The cycle-level ingress-queued virtual-channel wormhole router.
//!
//! Packets arrive flit-by-flit on ingress ports and are buffered in ingress VC
//! buffers. When the head flit of a packet reaches the head of its VC buffer
//! the packet enters the route-computation (RC) stage; it then waits in the
//! VC-allocation (VA) stage for a next-hop virtual channel; finally each flit
//! competes in switch arbitration (SA) for the crossbar and traverses it in
//! the switch-traversal (ST) stage. RC and VA act once per packet; SA and ST
//! act per flit. Arbitration ties are broken randomly (per-tile PRNG) to avoid
//! the pathological interactions between regular traffic and deterministic
//! arbiters described in the paper (§II-A5).
//!
//! Every cycle is split into a positive edge ([`Router::posedge`]), when all
//! decisions are computed from the state made visible at the previous negative
//! edge, and a negative edge ([`Router::negedge`]), when the staged flit
//! movements are applied. This faithfully models the parallelism of
//! synchronous hardware and is what makes cycle-accurate parallel simulation
//! bit-identical to sequential simulation.
//!
//! # Hot-path discipline
//!
//! A steady-state simulated cycle performs **no heap allocation** and **no
//! lock acquisitions**: every VC buffer is a lock-free single-producer /
//! single-consumer ring ([`VcBuffer`]), so absorbing, peeking and popping
//! are a handful of atomic loads and stores:
//!
//! * the head flit of every VC is snapshotted once per positive edge via
//!   [`VcBuffer::absorb_and_peek`]; the RC/VA/SA stages read the snapshot
//!   instead of re-running `peek` once per stage;
//! * empty VCs are skipped with a single lock-free occupancy load, and the
//!   router-wide idle check reads one aggregate atomic ([`buffered_flits`] is
//!   O(1), feeding the engine's idle / fast-forward boundary checks);
//! * all arbitration working memory (candidate list, per-port grant tables,
//!   the per-downstream-buffer staging counts, routing / VC-allocation
//!   candidate vectors) lives in reusable scratch buffers on the router; the
//!   per-buffer staging map is a generation-stamped flat table indexed by
//!   `egress × max_vcs + vc`, so it is never cleared, only re-stamped.
//!
//! [`buffered_flits`]: Router::buffered_flits

use crate::boundary::EgressChannel;
use crate::codec::{self, Dec, Enc};
use crate::flit::Flit;
use crate::ids::{Cycle, FlowId, NodeId, PacketId, VcId};
use crate::link::BidirLink;
use crate::routing::{NextHop, RoutingPolicy};
use crate::stats::NetworkStats;
use crate::vca::{DownstreamVc, VcaPolicy, VcaRequest};
use crate::vcbuf::VcBuffer;
use hornet_obs::trace::{TraceEvent, TraceKind, TraceRing};
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Structural parameters of one router.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouterConfig {
    /// Virtual channels per router-facing port.
    pub vcs_per_port: usize,
    /// Depth of each router-facing VC buffer, in flits.
    pub vc_capacity: usize,
    /// Virtual channels on the CPU-facing (injection) port.
    pub injection_vcs: usize,
    /// Depth of each injection VC buffer, in flits.
    pub injection_vc_capacity: usize,
    /// Link bandwidth in flits per cycle per direction.
    pub link_bandwidth: u32,
    /// Ejection (network→CPU) bandwidth in flits per cycle.
    pub ejection_bandwidth: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            vcs_per_port: 4,
            vc_capacity: 4,
            injection_vcs: 4,
            injection_vc_capacity: 8,
            link_bandwidth: 1,
            ejection_bandwidth: 1,
        }
    }
}

/// Receiver-side state of one ingress virtual channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum VcState {
    /// No packet is being routed through this VC.
    Idle,
    /// Route computed; waiting for a next-hop VC.
    Routed { egress: usize, next_flow: FlowId },
    /// Next-hop VC allocated; flits may compete for the crossbar.
    Active {
        egress: usize,
        out_vc: usize,
        next_flow: FlowId,
    },
    /// The packet could not be routed and its flits are being discarded.
    Dropping,
}

/// One ingress port: the VC buffers (shared with the upstream router) plus the
/// receiver-side VC state.
#[derive(Debug)]
pub(crate) struct IngressPort {
    pub(crate) upstream: NodeId,
    pub(crate) vcs: Vec<Arc<VcBuffer>>,
    pub(crate) state: Vec<VcState>,
}

/// Sender-side record of one downstream virtual channel.
#[derive(Clone, Debug, Default)]
pub(crate) struct OutVcState {
    /// Packet currently allocated to the downstream VC, if any.
    pub(crate) owner: Option<PacketId>,
    /// Flow whose flits were last sent into the downstream VC (consulted by
    /// EDVCA / FAA).
    pub(crate) resident_flow: Option<FlowId>,
}

/// One egress port: the downstream channels (shared ingress buffers, or
/// boundary mailboxes when the link is cut between two shards) plus
/// sender-side allocation state.
#[derive(Debug)]
pub(crate) struct EgressPort {
    pub(crate) downstream: NodeId,
    pub(crate) buffers: Vec<EgressChannel>,
    pub(crate) out_state: Vec<OutVcState>,
    /// Bandwidth-adaptive link shared with the neighbour, if enabled.
    pub(crate) bidir: Option<(Arc<BidirLink>, usize)>,
}

/// A flit movement decided at the positive edge and applied at the negative
/// edge.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StagedMove {
    pub(crate) ingress: usize,
    pub(crate) vc: usize,
    pub(crate) egress: usize,
    pub(crate) out_vc: usize,
    pub(crate) next_flow: FlowId,
}

/// A VC ready to move a flit this cycle (switch-arbitration scratch entry).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SaCandidate {
    pub(crate) ingress: usize,
    pub(crate) vc: usize,
    pub(crate) egress: usize,
    pub(crate) out_vc: usize,
    pub(crate) next_flow: FlowId,
}

/// The cycle-level router model for one node.
#[derive(Debug)]
pub struct Router {
    pub(crate) node: NodeId,
    pub(crate) cfg: RouterConfig,
    pub(crate) routing: RoutingPolicy,
    pub(crate) vca: VcaPolicy,
    pub(crate) ingress: Vec<IngressPort>,
    pub(crate) egress: Vec<EgressPort>,
    /// Downstream node of each egress port, packed flat for the egress
    /// lookup: routers have at most a handful of ports, so a linear scan of
    /// this compact array beats both a HashMap (hashing, allocation) and a
    /// node-indexed dense table (O(network size) memory per router).
    egress_nodes: Vec<NodeId>,
    /// Index of the local injection ingress port.
    pub(crate) injection_port: usize,
    /// Index of the local ejection egress port.
    pub(crate) ejection_port: usize,
    /// Total flits resident in this router's ingress buffers; every ingress
    /// `VcBuffer` reports into it, making [`buffered_flits`](Self::buffered_flits)
    /// and the engine's idle checks O(1).
    buffered: Arc<AtomicUsize>,
    /// Per-posedge snapshot of each ingress VC's head flit, indexed by
    /// `ingress_offsets[port] + vc`; refreshed once per cycle so RC/VA/SA
    /// never re-lock the buffer.
    pub(crate) head_cache: Vec<Option<Flit>>,
    /// Start of each ingress port's slice in `head_cache`.
    pub(crate) ingress_offsets: Vec<usize>,
    pub(crate) staged: Vec<StagedMove>,
    pub(crate) staged_drops: Vec<(usize, usize)>,
    pub(crate) delivered: Vec<Flit>,
    // --- reusable arbitration scratch (see module docs) ---
    sa_candidates: Vec<SaCandidate>,
    ingress_granted: Vec<u32>,
    egress_granted: Vec<u32>,
    /// Generation-stamped flat map `(egress, out_vc) → flits staged this
    /// cycle`; `staged_stamp[i] == staged_gen` marks a live entry.
    staged_count: Vec<u32>,
    staged_stamp: Vec<u64>,
    staged_gen: u64,
    /// Widest egress port (in downstream VCs); stride of the staged tables.
    max_out_vcs: usize,
    route_scratch: Vec<NextHop>,
    downstream_scratch: Vec<DownstreamVc>,
    vca_scratch: Vec<(VcId, f64)>,
    pub(crate) stats: NetworkStats,
    pub(crate) cycle: Cycle,
}

impl Router {
    /// Creates a router for `node` with one ingress/egress port pair per
    /// neighbour (in the order given) plus one CPU-facing port pair.
    ///
    /// The router owns its ingress buffers; call
    /// [`ingress_buffers_from`](Self::ingress_buffers_from) on the *neighbour*
    /// routers and connect them with [`connect_egress`](Self::connect_egress)
    /// to wire the network together (the [`network`](crate::network) module
    /// does this automatically).
    pub fn new(
        node: NodeId,
        neighbors: &[NodeId],
        cfg: RouterConfig,
        routing: RoutingPolicy,
        vca: VcaPolicy,
    ) -> Self {
        let buffered = Arc::new(AtomicUsize::new(0));
        let mut ingress = Vec::with_capacity(neighbors.len() + 1);
        for &nb in neighbors {
            ingress.push(IngressPort {
                upstream: nb,
                vcs: (0..cfg.vcs_per_port)
                    .map(|_| {
                        Arc::new(VcBuffer::with_aggregate(
                            cfg.vc_capacity,
                            Arc::clone(&buffered),
                        ))
                    })
                    .collect(),
                state: vec![VcState::Idle; cfg.vcs_per_port],
            });
        }
        ingress.push(IngressPort {
            upstream: node,
            vcs: (0..cfg.injection_vcs)
                .map(|_| {
                    Arc::new(VcBuffer::with_aggregate(
                        cfg.injection_vc_capacity,
                        Arc::clone(&buffered),
                    ))
                })
                .collect(),
            state: vec![VcState::Idle; cfg.injection_vcs],
        });
        let injection_port = ingress.len() - 1;

        let mut egress = Vec::with_capacity(neighbors.len() + 1);
        let egress_nodes: Vec<NodeId> = neighbors.to_vec();
        for &nb in neighbors {
            egress.push(EgressPort {
                downstream: nb,
                buffers: Vec::new(),
                out_state: Vec::new(),
                bidir: None,
            });
        }
        // Ejection port: flits leaving the network toward the local agent.
        egress.push(EgressPort {
            downstream: node,
            buffers: Vec::new(),
            out_state: vec![OutVcState::default()],
            bidir: None,
        });
        let ejection_port = egress.len() - 1;

        let mut ingress_offsets = Vec::with_capacity(ingress.len());
        let mut total_vcs = 0usize;
        for port in &ingress {
            ingress_offsets.push(total_vcs);
            total_vcs += port.vcs.len();
        }

        let ingress_count = ingress.len();
        let egress_count = egress.len();
        Self {
            node,
            cfg,
            routing,
            vca,
            ingress,
            egress,
            egress_nodes,
            injection_port,
            ejection_port,
            buffered,
            head_cache: vec![None; total_vcs],
            ingress_offsets,
            staged: Vec::new(),
            staged_drops: Vec::new(),
            delivered: Vec::new(),
            sa_candidates: Vec::new(),
            ingress_granted: vec![0; ingress_count],
            egress_granted: vec![0; egress_count],
            staged_count: Vec::new(),
            staged_stamp: Vec::new(),
            staged_gen: 0,
            max_out_vcs: 1,
            route_scratch: Vec::new(),
            downstream_scratch: Vec::new(),
            vca_scratch: Vec::new(),
            stats: NetworkStats::new(),
            cycle: 0,
        }
    }

    /// The node this router serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The egress port index toward neighbour `to`: a linear scan of the
    /// compact per-port node array (routers have at most a handful of ports,
    /// so this is faster than hashing and needs O(degree) memory).
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of this router.
    #[inline]
    pub(crate) fn egress_of(&self, to: NodeId) -> usize {
        self.egress_nodes
            .iter()
            .position(|&n| n == to)
            .unwrap_or_else(|| panic!("{to} is not downstream of {}", self.node))
    }

    /// The ingress VC buffers facing upstream node `from`; the network builder
    /// hands these to `from`'s router via [`connect_egress`](Self::connect_egress).
    ///
    /// Returns a borrowed slice — build and partition paths that only inspect
    /// the buffers pay no allocation; callers that need owned handles clone
    /// the individual `Arc`s (or `.to_vec()` the slice).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a neighbour of this router.
    pub fn ingress_buffers_from(&self, from: NodeId) -> &[Arc<VcBuffer>] {
        let port = self
            .ingress
            .iter()
            .find(|p| p.upstream == from && p.upstream != self.node)
            .unwrap_or_else(|| panic!("{from} is not upstream of {}", self.node));
        &port.vcs
    }

    /// The local injection VC buffers (used by the bridge to inject flits).
    /// Borrowed; clone the `Arc`s for owned handles.
    pub fn injection_buffers(&self) -> &[Arc<VcBuffer>] {
        &self.ingress[self.injection_port].vcs
    }

    /// Wires the egress port toward `to` with the downstream ingress buffers
    /// owned by `to`'s router.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of this router.
    pub fn connect_egress(&mut self, to: NodeId, buffers: Vec<Arc<VcBuffer>>) {
        let idx = self.egress_of(to);
        self.max_out_vcs = self.max_out_vcs.max(buffers.len());
        self.egress[idx].out_state = vec![OutVcState::default(); buffers.len()];
        self.egress[idx].buffers = buffers.into_iter().map(EgressChannel::Local).collect();
    }

    /// Swaps the downstream channels of the egress port toward `to`,
    /// returning the previous ones. Used by the sharded runtime to replace
    /// the shared ingress buffers of a cut link with boundary mailboxes (and
    /// back). When the channel count is unchanged, the sender-side VC
    /// allocation state (`owner` / `resident_flow`) is preserved, so swapping
    /// mid-simulation does not perturb allocation decisions.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of this router.
    pub fn swap_egress_channels(
        &mut self,
        to: NodeId,
        channels: Vec<EgressChannel>,
    ) -> Vec<EgressChannel> {
        let idx = self.egress_of(to);
        self.max_out_vcs = self.max_out_vcs.max(channels.len());
        if self.egress[idx].out_state.len() != channels.len() {
            self.egress[idx].out_state = vec![OutVcState::default(); channels.len()];
        }
        std::mem::replace(&mut self.egress[idx].buffers, channels)
    }

    /// The router-facing neighbours of this router, in egress-port order.
    pub fn neighbors(&self) -> &[NodeId] {
        &self.egress_nodes
    }

    /// True if a bandwidth-adaptive bidirectional link is attached toward
    /// `to`. The sharded runtime uses this to detect cut links whose demand
    /// arbitration needs stricter phase ordering.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of this router.
    pub fn has_bidir_toward(&self, to: NodeId) -> bool {
        self.egress[self.egress_of(to)].bidir.is_some()
    }

    /// Attaches a bandwidth-adaptive bidirectional link toward `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of this router.
    pub fn attach_bidir_link(&mut self, to: NodeId, link: Arc<BidirLink>, direction: usize) {
        let idx = self.egress_of(to);
        self.egress[idx].bidir = Some((link, direction));
    }

    /// Immutable access to the per-router statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Mutable access to the per-router statistics (the bridge records
    /// injection and delivery counts here).
    pub fn stats_mut(&mut self) -> &mut NetworkStats {
        &mut self.stats
    }

    /// Number of flits currently buffered in this router's ingress VCs. O(1):
    /// a single load of the aggregate counter every ingress buffer updates.
    #[inline]
    pub fn buffered_flits(&self) -> usize {
        self.buffered.load(Ordering::Acquire)
    }

    /// True if no flit is buffered here. O(1).
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.buffered_flits() == 0
    }

    /// The router's current local cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Sets the local clock (used by fast-forwarding).
    pub fn set_cycle(&mut self, cycle: Cycle) {
        self.cycle = cycle;
    }

    /// Takes the flits delivered to the local agent since the last call.
    ///
    /// Prefer [`delivered_and_stats_mut`](Self::delivered_and_stats_mut) in
    /// per-cycle code: this method surrenders the vector's allocation.
    pub fn take_delivered(&mut self) -> Vec<Flit> {
        std::mem::take(&mut self.delivered)
    }

    /// The delivered-flit queue and the statistics, borrowed together so the
    /// bridge can drain deliveries in place (keeping the queue's allocation)
    /// while recording stats.
    pub fn delivered_and_stats_mut(&mut self) -> (&mut Vec<Flit>, &mut NetworkStats) {
        (&mut self.delivered, &mut self.stats)
    }

    pub(crate) fn egress_bandwidth(&self, egress: usize) -> u32 {
        if egress == self.ejection_port {
            return self.cfg.ejection_bandwidth;
        }
        match &self.egress[egress].bidir {
            Some((link, dir)) => link.bandwidth_for(*dir),
            None => self.cfg.link_bandwidth,
        }
    }

    /// Grows the generation-stamped staging tables if the port topology
    /// changed since the last cycle (only ever fires on the first cycle after
    /// wiring; steady state never reallocates).
    fn ensure_staging_tables(&mut self) {
        let needed = self.egress.len() * self.max_out_vcs;
        if self.staged_count.len() != needed {
            self.staged_count = vec![0; needed];
            self.staged_stamp = vec![0; needed];
            self.staged_gen = 0;
        }
    }

    /// Positive clock edge: absorb newly arrived flits, snapshot every VC's
    /// head flit, run the RC, VA and SA stages, and stage the resulting flit
    /// movements. No shared state is mutated except the tail→head absorption
    /// of this router's own buffers.
    pub fn posedge<R: Rng>(&mut self, now: Cycle, rng: &mut R) {
        self.posedge_traced(now, rng, None);
    }

    /// [`posedge`](Self::posedge) with an optional event tracer. When a
    /// tracer is supplied, a [`TraceKind::FlitRoute`] event is recorded each
    /// time the RC stage binds a packet to an egress port. The tracer only
    /// observes decisions — it never influences them — so traced and
    /// untraced runs stay bit-identical.
    pub fn posedge_traced<R: Rng>(
        &mut self,
        now: Cycle,
        rng: &mut R,
        tracer: Option<&mut TraceRing>,
    ) {
        self.cycle = now;
        self.staged.clear();
        self.staged_drops.clear();
        self.ensure_staging_tables();

        // Absorb flits deposited by upstream routers / the local bridge and
        // snapshot each VC's head flit: a few atomic ops per non-empty VC,
        // none for empty VCs (a lock-free occupancy load skips them).
        let mut absorbed = 0u64;
        for (p, port) in self.ingress.iter().enumerate() {
            let off = self.ingress_offsets[p];
            for (v, vc) in port.vcs.iter().enumerate() {
                if vc.occupancy() == 0 {
                    self.head_cache[off + v] = None;
                } else {
                    let (n, head) = vc.absorb_and_peek();
                    absorbed += n as u64;
                    self.head_cache[off + v] = head;
                }
            }
        }
        self.stats.activity.buffer_writes += absorbed;

        if self.buffered_flits() > 0 {
            self.stats.busy_cycles += 1;
        }

        // --- SA stage (per flit), computed before VA/RC so that state
        // transitions made this cycle take effect next cycle (3-stage
        // pipeline for the head flit of each packet).
        self.switch_arbitration(now, rng);

        // --- VA stage (per packet).
        self.vc_allocation(now, rng);

        // --- RC stage (per packet).
        self.route_computation(now, rng, tracer);

        self.stats.simulated_cycles += 1;
        self.stats.last_cycle = now;
    }

    /// The cached head-flit snapshot for `(ingress port, vc)`, filtered by the
    /// visibility timestamp exactly like `VcBuffer::peek(now)`.
    #[inline]
    pub(crate) fn cached_head(&self, port: usize, vc: usize, now: Cycle) -> Option<Flit> {
        self.head_cache[self.ingress_offsets[port] + vc].filter(|f| f.visible_at <= now)
    }

    fn route_computation<R: Rng>(
        &mut self,
        now: Cycle,
        rng: &mut R,
        mut tracer: Option<&mut TraceRing>,
    ) {
        let mut candidates = std::mem::take(&mut self.route_scratch);
        for p in 0..self.ingress.len() {
            for v in 0..self.ingress[p].vcs.len() {
                if self.ingress[p].state[v] != VcState::Idle {
                    continue;
                }
                let Some(flit) = self.cached_head(p, v, now) else {
                    continue;
                };
                if !flit.is_head() {
                    // A body flit at the head of an idle VC can only happen if
                    // the packet was dropped upstream; discard it.
                    self.ingress[p].state[v] = VcState::Dropping;
                    continue;
                }
                let prev = self.ingress[p].upstream;
                self.routing
                    .candidates_into(self.node, prev, flit.flow, flit.dst, &mut candidates);
                if candidates.is_empty() {
                    self.stats.routing_failures += 1;
                    self.ingress[p].state[v] = VcState::Dropping;
                    continue;
                }
                let choice = if self.routing.is_adaptive() && candidates.len() > 1 {
                    // Adaptive: pick the candidate with the most free space in
                    // its downstream buffers; break ties randomly.
                    let mut best_idx = 0usize;
                    let mut best_key = (u64::MIN, 0u64);
                    for (i, c) in candidates.iter().enumerate() {
                        let free: u64 = if c.next_node == self.node {
                            u64::MAX
                        } else {
                            let e = self.egress_of(c.next_node);
                            self.egress[e]
                                .buffers
                                .iter()
                                .map(|b| b.free_space() as u64)
                                .sum()
                        };
                        let tiebreak = rng.gen::<u64>();
                        if (free, tiebreak) > best_key || i == 0 {
                            best_key = (free, tiebreak);
                            best_idx = i;
                        }
                    }
                    candidates[best_idx]
                } else {
                    pick_weighted(rng, &candidates, |c| c.weight)
                };
                let egress = if choice.next_node == self.node {
                    self.ejection_port
                } else {
                    self.egress_of(choice.next_node)
                };
                self.ingress[p].state[v] = VcState::Routed {
                    egress,
                    next_flow: choice.next_flow,
                };
                if let Some(t) = tracer.as_deref_mut() {
                    t.record(TraceEvent {
                        cycle: now,
                        node: self.node.raw(),
                        kind: TraceKind::FlitRoute,
                        a: flit.packet.raw(),
                        b: egress as u64,
                    });
                }
            }
        }
        self.route_scratch = candidates;
    }

    fn vc_allocation<R: Rng>(&mut self, now: Cycle, rng: &mut R) {
        let mut downstream = std::mem::take(&mut self.downstream_scratch);
        let mut candidates = std::mem::take(&mut self.vca_scratch);
        for p in 0..self.ingress.len() {
            for v in 0..self.ingress[p].vcs.len() {
                let VcState::Routed { egress, next_flow } = self.ingress[p].state[v] else {
                    continue;
                };
                let Some(flit) = self.cached_head(p, v, now) else {
                    continue;
                };
                self.stats.activity.arbitrations += 1;
                if egress == self.ejection_port {
                    self.ingress[p].state[v] = VcState::Active {
                        egress,
                        out_vc: 0,
                        next_flow,
                    };
                    continue;
                }
                downstream.clear();
                {
                    let e = &self.egress[egress];
                    for (i, b) in e.buffers.iter().enumerate() {
                        let occupancy = b.occupancy();
                        downstream.push(DownstreamVc {
                            vc: VcId::new(i as u16),
                            free_for_allocation: e.out_state[i].owner.is_none(),
                            occupancy,
                            capacity: b.capacity(),
                            resident_flow: if occupancy > 0 || e.out_state[i].owner.is_some() {
                                e.out_state[i].resident_flow
                            } else {
                                None
                            },
                        });
                    }
                }
                let req = VcaRequest {
                    prev: self.ingress[p].upstream,
                    flow: flit.flow,
                    next: self.egress[egress].downstream,
                    next_flow,
                };
                self.vca.candidates_into(&req, &downstream, &mut candidates);
                if candidates.is_empty() {
                    continue; // wait in the VA stage
                }
                let (vc_id, _) = pick_weighted(rng, &candidates, |c| c.1);
                let out_vc = vc_id.index();
                self.egress[egress].out_state[out_vc].owner = Some(flit.packet);
                self.egress[egress].out_state[out_vc].resident_flow = Some(next_flow);
                self.ingress[p].state[v] = VcState::Active {
                    egress,
                    out_vc,
                    next_flow,
                };
            }
        }
        self.downstream_scratch = downstream;
        self.vca_scratch = candidates;
    }

    fn switch_arbitration<R: Rng>(&mut self, now: Cycle, rng: &mut R) {
        // Gather the VCs that are ready to move a flit this cycle.
        let mut candidates = std::mem::take(&mut self.sa_candidates);
        candidates.clear();
        for p in 0..self.ingress.len() {
            for v in 0..self.ingress[p].vcs.len() {
                match self.ingress[p].state[v] {
                    VcState::Active {
                        egress,
                        out_vc,
                        next_flow,
                    } if self.cached_head(p, v, now).is_some() => {
                        candidates.push(SaCandidate {
                            ingress: p,
                            vc: v,
                            egress,
                            out_vc,
                            next_flow,
                        });
                    }
                    VcState::Dropping if self.cached_head(p, v, now).is_some() => {
                        self.staged_drops.push((p, v));
                    }
                    _ => {}
                }
            }
        }
        if candidates.is_empty() {
            self.sa_candidates = candidates;
            return;
        }
        self.stats.activity.arbitrations += candidates.len() as u64;

        // Randomize consideration order to break ties fairly.
        for i in (1..candidates.len()).rev() {
            let j = rng.gen_range(0..=i);
            candidates.swap(i, j);
        }

        let ingress_bw = self.cfg.link_bandwidth.max(1);
        self.ingress_granted.iter_mut().for_each(|g| *g = 0);
        self.egress_granted.iter_mut().for_each(|g| *g = 0);
        // New generation: every staged-per-buffer entry is logically zero.
        self.staged_gen += 1;

        for c in &candidates {
            if self.ingress_granted[c.ingress] >= ingress_bw {
                continue;
            }
            let egress_bw = self.egress_bandwidth(c.egress);
            if self.egress_granted[c.egress] >= egress_bw {
                continue;
            }
            let key = c.egress * self.max_out_vcs + c.out_vc;
            if c.egress != self.ejection_port {
                let already = if self.staged_stamp[key] == self.staged_gen {
                    self.staged_count[key] as usize
                } else {
                    0
                };
                if self.egress[c.egress].buffers[c.out_vc].free_space() <= already {
                    continue; // no downstream credit
                }
            }
            self.ingress_granted[c.ingress] += 1;
            self.egress_granted[c.egress] += 1;
            if self.staged_stamp[key] == self.staged_gen {
                self.staged_count[key] += 1;
            } else {
                self.staged_stamp[key] = self.staged_gen;
                self.staged_count[key] = 1;
            }
            self.staged.push(StagedMove {
                ingress: c.ingress,
                vc: c.vc,
                egress: c.egress,
                out_vc: c.out_vc,
                next_flow: c.next_flow,
            });
        }
        self.sa_candidates = candidates;
    }

    /// Negative clock edge: apply the staged flit movements — pop the granted
    /// flits from the ingress buffers, push them into the downstream buffers
    /// (or the local delivery queue), release VC allocations behind tail
    /// flits, and publish link demand for bandwidth-adaptive links.
    pub fn negedge(&mut self, now: Cycle) {
        for i in 0..self.staged.len() {
            let m = self.staged[i];
            let Some(mut flit) = self.ingress[m.ingress].vcs[m.vc].pop_if(now, |_| true) else {
                continue;
            };
            self.stats.activity.buffer_reads += 1;
            self.stats.activity.crossbar_transits += 1;

            // Accumulate the residence time at this node into the flit itself.
            let departure = now + 1;
            flit.stats.accumulated_latency +=
                departure.saturating_sub(flit.stats.arrived_at_current);
            flit.stats.arrived_at_current = departure;
            flit.flow = m.next_flow;
            flit.visible_at = departure;

            let is_tail = flit.is_tail();
            if m.egress == self.ejection_port {
                self.stats.total_flit_latency += flit.stats.accumulated_latency;
                self.stats.delivered_flits += 1;
                self.delivered.push(flit);
            } else {
                flit.stats.hops += 1;
                self.stats.activity.link_flits += 1;
                if !self.egress[m.egress].buffers[m.out_vc].push(flit) {
                    // Credit checking should make this impossible; record it
                    // as a routing failure so tests can detect flow-control
                    // bugs rather than silently losing flits.
                    self.stats.routing_failures += 1;
                }
                if is_tail {
                    self.egress[m.egress].out_state[m.out_vc].owner = None;
                }
            }
            if is_tail {
                self.ingress[m.ingress].state[m.vc] = VcState::Idle;
            }
        }
        self.staged.clear();

        // Discard flits of packets that could not be routed.
        for i in 0..self.staged_drops.len() {
            let (p, v) = self.staged_drops[i];
            if let Some(flit) = self.ingress[p].vcs[v].pop_if(now, |_| true) {
                self.stats.activity.buffer_reads += 1;
                if flit.is_tail() {
                    self.ingress[p].state[v] = VcState::Idle;
                }
            }
        }
        self.staged_drops.clear();

        // Publish demand on bandwidth-adaptive links for the next cycle.
        for e in 0..self.egress.len() {
            if let Some((link, dir)) = &self.egress[e].bidir {
                let mut demand = 0u32;
                for p in 0..self.ingress.len() {
                    for v in 0..self.ingress[p].vcs.len() {
                        if let VcState::Active { egress, .. } = self.ingress[p].state[v] {
                            if egress == e && self.ingress[p].vcs[v].occupancy() > 0 {
                                demand += 1;
                            }
                        }
                    }
                }
                link.publish_demand(*dir, demand);
            }
        }
    }

    /// Capacity-bearing pointers of the reusable hot-path scratch buffers,
    /// so tests can assert that steady-state operation never reallocates
    /// them.
    #[cfg(test)]
    fn scratch_fingerprint(&self) -> [usize; 7] {
        [
            self.sa_candidates.as_ptr() as usize,
            self.route_scratch.as_ptr() as usize,
            self.downstream_scratch.as_ptr() as usize,
            self.vca_scratch.as_ptr() as usize,
            self.staged_count.as_ptr() as usize,
            self.head_cache.as_ptr() as usize,
            self.staged.as_ptr() as usize,
        ]
    }
}

fn vc_state_snapshot(e: &mut Enc, s: &VcState) {
    match *s {
        VcState::Idle => {
            e.u8(0);
        }
        VcState::Routed { egress, next_flow } => {
            e.u8(1).u32(egress as u32);
            codec::encode_flow(e, next_flow);
        }
        VcState::Active {
            egress,
            out_vc,
            next_flow,
        } => {
            e.u8(2).u32(egress as u32).u32(out_vc as u32);
            codec::encode_flow(e, next_flow);
        }
        VcState::Dropping => {
            e.u8(3);
        }
    }
}

fn vc_state_restore(d: &mut Dec) -> std::io::Result<VcState> {
    Ok(match d.u8()? {
        0 => VcState::Idle,
        1 => VcState::Routed {
            egress: d.u32()? as usize,
            next_flow: codec::decode_flow(d)?,
        },
        2 => VcState::Active {
            egress: d.u32()? as usize,
            out_vc: d.u32()? as usize,
            next_flow: codec::decode_flow(d)?,
        },
        3 => VcState::Dropping,
        t => return Err(corrupt(&format!("bad VC state tag {t}"))),
    })
}

fn corrupt(what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("router checkpoint: {what}"),
    )
}

/// Checkpoint capture / restore.
///
/// The snapshot covers the *architectural* state: the clock, the statistics,
/// every ingress VC buffer (split at its absorb boundary so the restored
/// cursors land exactly where the originals were), the per-VC receiver state
/// machines, the sender-side downstream VC allocations and any flits parked
/// in the local delivery queue. Derived and scratch state (head cache,
/// staged moves, arbitration tables) is rebuilt from scratch at the next
/// positive edge and is deliberately excluded.
impl Router {
    /// Serializes this router's architectural state. Must be called between
    /// cycles (no staged moves outstanding).
    pub fn snapshot(&self, e: &mut Enc) {
        debug_assert!(self.staged.is_empty(), "snapshot mid-cycle");
        e.u64(self.cycle);
        codec::encode_stats(e, &self.stats);
        e.u32(self.ingress.len() as u32);
        for port in &self.ingress {
            e.u32(port.vcs.len() as u32);
            for (vc, state) in port.vcs.iter().zip(&port.state) {
                vc_state_snapshot(e, state);
                let (visible, pending) = vc.snapshot_split();
                e.u32(visible.len() as u32);
                for f in &visible {
                    codec::encode_flit(e, f);
                }
                e.u32(pending.len() as u32);
                for f in &pending {
                    codec::encode_flit(e, f);
                }
            }
        }
        e.u32(self.egress.len() as u32);
        for port in &self.egress {
            e.u32(port.out_state.len() as u32);
            for out in &port.out_state {
                match out.owner {
                    Some(p) => e.u8(1).u64(p.raw()),
                    None => e.u8(0),
                };
                match out.resident_flow {
                    Some(f) => {
                        e.u8(1);
                        codec::encode_flow(e, f);
                    }
                    None => {
                        e.u8(0);
                    }
                };
            }
        }
        e.u32(self.delivered.len() as u32);
        for f in &self.delivered {
            codec::encode_flit(e, f);
        }
    }

    /// Restores the state captured by [`snapshot`](Self::snapshot) into this
    /// freshly built (empty, fully wired) router.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` if the checkpoint does not match this
    /// router's topology (port or VC counts differ) or is corrupt.
    pub fn restore(&mut self, d: &mut Dec) -> std::io::Result<()> {
        self.cycle = d.u64()?;
        self.stats = codec::decode_stats(d)?;
        if d.u32()? as usize != self.ingress.len() {
            return Err(corrupt("ingress port count mismatch"));
        }
        for port in &mut self.ingress {
            if d.u32()? as usize != port.vcs.len() {
                return Err(corrupt("ingress VC count mismatch"));
            }
            for (vc, state) in port.vcs.iter().zip(port.state.iter_mut()) {
                *state = vc_state_restore(d)?;
                let visible = (0..d.u32()?)
                    .map(|_| codec::decode_flit(d))
                    .collect::<std::io::Result<Vec<_>>>()?;
                let pending = (0..d.u32()?)
                    .map(|_| codec::decode_flit(d))
                    .collect::<std::io::Result<Vec<_>>>()?;
                if visible.len() + pending.len() > vc.capacity() {
                    return Err(corrupt("VC snapshot exceeds buffer capacity"));
                }
                vc.restore_split(&visible, &pending);
            }
        }
        if d.u32()? as usize != self.egress.len() {
            return Err(corrupt("egress port count mismatch"));
        }
        for port in &mut self.egress {
            if d.u32()? as usize != port.out_state.len() {
                return Err(corrupt("egress VC count mismatch"));
            }
            for out in &mut port.out_state {
                out.owner = match d.u8()? {
                    0 => None,
                    _ => Some(PacketId::new(d.u64()?)),
                };
                out.resident_flow = match d.u8()? {
                    0 => None,
                    _ => Some(codec::decode_flow(d)?),
                };
            }
        }
        self.delivered = (0..d.u32()?)
            .map(|_| codec::decode_flit(d))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(())
    }
}

/// Picks one item from a weighted list using the provided RNG. Falls back to
/// the first item if all weights are zero or non-finite.
pub(crate) fn pick_weighted<R: Rng, T: Copy>(
    rng: &mut R,
    items: &[T],
    weight: impl Fn(&T) -> f64,
) -> T {
    assert!(!items.is_empty(), "cannot pick from an empty candidate set");
    if items.len() == 1 {
        return items[0];
    }
    let total: f64 = items.iter().map(&weight).filter(|w| w.is_finite()).sum();
    if total <= 0.0 {
        return items[0];
    }
    let mut target = rng.gen::<f64>() * total;
    for item in items {
        let w = weight(item);
        if w.is_finite() && w > 0.0 {
            if target < w {
                return *item;
            }
            target -= w;
        }
    }
    items[items.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Packet;
    use crate::geometry::Geometry;
    use crate::routing::{build_routing, FlowSpec, RoutingKind};
    use crate::vca::VcAllocKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_node_routers(cfg: RouterConfig) -> (Router, Router) {
        // Two nodes connected by one link, a single flow 0 -> 1.
        let g = Geometry::line(2);
        let flows = vec![FlowSpec::pair(NodeId::new(0), NodeId::new(1), 2)];
        let policies = build_routing(RoutingKind::Xy, &g, &flows);
        let mut r0 = Router::new(
            NodeId::new(0),
            &[NodeId::new(1)],
            cfg.clone(),
            policies[0].clone(),
            VcaPolicy::from_kind(VcAllocKind::Dynamic),
        );
        let r1 = Router::new(
            NodeId::new(1),
            &[NodeId::new(0)],
            cfg,
            policies[1].clone(),
            VcaPolicy::from_kind(VcAllocKind::Dynamic),
        );
        r0.connect_egress(
            NodeId::new(1),
            r1.ingress_buffers_from(NodeId::new(0)).to_vec(),
        );
        (r0, r1)
    }

    fn inject_packet(router: &Router, len: u32, now: Cycle) -> Packet {
        let packet = Packet::new(
            PacketId::new(42),
            FlowId::for_pair(NodeId::new(0), NodeId::new(1), 2),
            NodeId::new(0),
            NodeId::new(1),
            len,
            now,
        );
        let bufs = router.injection_buffers();
        for flit in packet.to_flits(now) {
            assert!(bufs[0].push(flit));
        }
        packet
    }

    #[test]
    fn single_packet_traverses_one_hop() {
        let (mut r0, mut r1) = two_node_routers(RouterConfig::default());
        let mut rng0 = StdRng::seed_from_u64(1);
        let mut rng1 = StdRng::seed_from_u64(2);
        let packet = inject_packet(&r0, 4, 0);

        let mut delivered = Vec::new();
        for cycle in 1..40 {
            r0.posedge(cycle, &mut rng0);
            r1.posedge(cycle, &mut rng1);
            r0.negedge(cycle);
            r1.negedge(cycle);
            delivered.extend(r1.take_delivered());
        }
        assert_eq!(delivered.len(), 4, "all four flits must be delivered");
        assert!(delivered.iter().all(|f| f.packet == packet.id));
        // Flits of a packet arrive in order on the same VC.
        for (i, f) in delivered.iter().enumerate() {
            assert_eq!(f.seq, i as u32);
        }
        assert_eq!(r1.stats().delivered_flits, 4);
        assert!(r0.is_idle() && r1.is_idle());
        assert!(delivered.iter().all(|f| f.stats.hops == 1));
        assert!(delivered.iter().all(|f| f.stats.accumulated_latency > 0));
    }

    #[test]
    fn credit_backpressure_never_overflows_buffers() {
        let cfg = RouterConfig {
            vcs_per_port: 1,
            vc_capacity: 2,
            injection_vcs: 1,
            injection_vc_capacity: 32,
            link_bandwidth: 1,
            ejection_bandwidth: 1,
        };
        let (mut r0, mut r1) = two_node_routers(cfg);
        let mut rng0 = StdRng::seed_from_u64(3);
        let mut rng1 = StdRng::seed_from_u64(4);
        // A long packet that cannot fit in the downstream buffer at once.
        inject_packet(&r0, 16, 0);
        let mut delivered = 0usize;
        for cycle in 1..200 {
            r0.posedge(cycle, &mut rng0);
            r1.posedge(cycle, &mut rng1);
            r0.negedge(cycle);
            r1.negedge(cycle);
            delivered += r1.take_delivered().len();
        }
        assert_eq!(delivered, 16);
        assert_eq!(r0.stats().routing_failures, 0, "no push may ever fail");
        assert_eq!(r1.stats().routing_failures, 0);
    }

    #[test]
    fn unroutable_packets_are_dropped_and_counted() {
        // No flows configured -> empty routing tables -> RC fails.
        let g = Geometry::line(2);
        let policies = build_routing(RoutingKind::Xy, &g, &[]);
        let mut r0 = Router::new(
            NodeId::new(0),
            &[NodeId::new(1)],
            RouterConfig::default(),
            policies[0].clone(),
            VcaPolicy::from_kind(VcAllocKind::Dynamic),
        );
        let r1 = Router::new(
            NodeId::new(1),
            &[NodeId::new(0)],
            RouterConfig::default(),
            policies[1].clone(),
            VcaPolicy::from_kind(VcAllocKind::Dynamic),
        );
        r0.connect_egress(
            NodeId::new(1),
            r1.ingress_buffers_from(NodeId::new(0)).to_vec(),
        );
        inject_packet(&r0, 4, 0);
        let mut rng = StdRng::seed_from_u64(5);
        for cycle in 1..30 {
            r0.posedge(cycle, &mut rng);
            r0.negedge(cycle);
        }
        assert_eq!(r0.stats().routing_failures, 1);
        assert!(r0.is_idle(), "dropped flits must drain");
    }

    #[test]
    fn pick_weighted_is_deterministic_for_single_item() {
        let mut rng = StdRng::seed_from_u64(0);
        let items = [(5u32, 1.0f64)];
        assert_eq!(pick_weighted(&mut rng, &items, |i| i.1).0, 5);
    }

    #[test]
    fn pick_weighted_respects_weights_statistically() {
        let mut rng = StdRng::seed_from_u64(7);
        let items = [(0u32, 0.9f64), (1u32, 0.1f64)];
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[pick_weighted(&mut rng, &items, |i| i.1).0 as usize] += 1;
        }
        assert!(counts[0] > 1600, "heavy option should dominate: {counts:?}");
        assert!(
            counts[1] > 50,
            "light option should still occur: {counts:?}"
        );
    }

    #[test]
    fn identical_seeds_give_identical_results() {
        let run = |seed: u64| {
            let (mut r0, mut r1) = two_node_routers(RouterConfig::default());
            let mut rng0 = StdRng::seed_from_u64(seed);
            let mut rng1 = StdRng::seed_from_u64(seed + 1);
            inject_packet(&r0, 8, 0);
            let mut latencies = Vec::new();
            for cycle in 1..60 {
                r0.posedge(cycle, &mut rng0);
                r1.posedge(cycle, &mut rng1);
                r0.negedge(cycle);
                r1.negedge(cycle);
                for f in r1.take_delivered() {
                    latencies.push(f.stats.accumulated_latency);
                }
            }
            latencies
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn steady_state_posedge_reuses_scratch_allocations() {
        // Saturate a 2-node line with continuous traffic, warm the scratch
        // buffers up, then assert their backing allocations stay put for a
        // thousand busy cycles: the zero-allocation hot-path guarantee.
        let (mut r0, mut r1) = two_node_routers(RouterConfig::default());
        let mut rng0 = StdRng::seed_from_u64(21);
        let mut rng1 = StdRng::seed_from_u64(22);
        let bufs = r0.injection_buffers().to_vec();
        let mut next_packet = 0u64;
        let mut inject_more = |now: Cycle| {
            for vc in &bufs {
                if vc.free_space() >= 4 {
                    let packet = Packet::new(
                        PacketId::new(next_packet),
                        FlowId::for_pair(NodeId::new(0), NodeId::new(1), 2),
                        NodeId::new(0),
                        NodeId::new(1),
                        4,
                        now,
                    );
                    next_packet += 1;
                    for flit in packet.to_flits(now) {
                        assert!(vc.push(flit));
                    }
                }
            }
        };
        // Warm-up: grow every scratch buffer to its steady-state size.
        for cycle in 1..=100 {
            inject_more(cycle);
            r0.posedge(cycle, &mut rng0);
            r1.posedge(cycle, &mut rng1);
            r0.negedge(cycle);
            r1.negedge(cycle);
            r1.take_delivered();
        }
        let fp0 = r0.scratch_fingerprint();
        let fp1 = r1.scratch_fingerprint();
        for cycle in 101..=1100 {
            inject_more(cycle);
            r0.posedge(cycle, &mut rng0);
            r1.posedge(cycle, &mut rng1);
            r0.negedge(cycle);
            r1.negedge(cycle);
            r1.take_delivered();
            assert_eq!(
                r0.scratch_fingerprint(),
                fp0,
                "cycle {cycle}: scratch moved"
            );
            assert_eq!(
                r1.scratch_fingerprint(),
                fp1,
                "cycle {cycle}: scratch moved"
            );
        }
        assert!(
            r1.stats().delivered_flits > 500,
            "traffic must actually flow"
        );
    }
}
