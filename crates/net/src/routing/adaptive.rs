//! Minimal adaptive routing support: an all-pairs hop-distance matrix that the
//! router uses to enumerate minimal next hops, choosing among them at run time
//! by downstream buffer availability (congestion).

use crate::geometry::Geometry;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// All-pairs hop distances over a geometry, stored densely.
///
/// Construction is `O(nodes × links)` (one BFS per node); lookups are O(1).
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<u32>,
    neighbors: Vec<Vec<NodeId>>,
}

impl DistanceMatrix {
    /// Builds the distance matrix for a geometry.
    pub fn new(geometry: &Geometry) -> Self {
        let n = geometry.node_count();
        let mut dist = vec![u32::MAX; n * n];
        for src in geometry.nodes() {
            let base = src.index() * n;
            dist[base + src.index()] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(src);
            while let Some(v) = queue.pop_front() {
                let dv = dist[base + v.index()];
                for &w in geometry.neighbors(v) {
                    if dist[base + w.index()] == u32::MAX {
                        dist[base + w.index()] = dv + 1;
                        queue.push_back(w);
                    }
                }
            }
        }
        let neighbors = geometry
            .nodes()
            .map(|v| geometry.neighbors(v).to_vec())
            .collect();
        Self { n, dist, neighbors }
    }

    /// Hop distance between two nodes (`u32::MAX` if unreachable).
    pub fn distance(&self, from: NodeId, to: NodeId) -> u32 {
        self.dist[from.index() * self.n + to.index()]
    }

    /// All physical neighbours of `node` (the candidate set
    /// [`minimal_next_hops`](Self::minimal_next_hops) filters); exposed so
    /// allocation-free callers can do the minimal-path filtering themselves.
    pub fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    /// True if `via` (a neighbour of `node`) lies on a minimal path from
    /// `node` toward `dst`. This is the single home of the minimal-hop
    /// predicate; both [`minimal_next_hops`](Self::minimal_next_hops) and the
    /// router's allocation-free RC path use it.
    pub fn is_minimal_hop(&self, node: NodeId, via: NodeId, dst: NodeId) -> bool {
        let d = self.distance(node, dst);
        d != 0 && d != u32::MAX && self.distance(via, dst).saturating_add(1) == d
    }

    /// Neighbours of `node` that lie on a minimal path toward `dst`.
    pub fn minimal_next_hops(&self, node: NodeId, dst: NodeId) -> Vec<NodeId> {
        self.neighbors[node.index()]
            .iter()
            .copied()
            .filter(|&w| self.is_minimal_hop(node, w, dst))
            .collect()
    }

    /// Number of nodes covered by the matrix.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn distances_match_bfs() {
        let g = Geometry::mesh2d(4, 4);
        let m = DistanceMatrix::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(m.distance(a, b) as usize, g.hop_distance(a, b));
            }
        }
    }

    #[test]
    fn minimal_next_hops_on_mesh() {
        let g = Geometry::mesh2d(3, 3);
        let m = DistanceMatrix::new(&g);
        // From a corner to the opposite corner both outgoing links are minimal.
        let hops = m.minimal_next_hops(n(0), n(8));
        assert_eq!(hops.len(), 2);
        assert!(hops.contains(&n(1)) && hops.contains(&n(3)));
        // At the destination there are no next hops.
        assert!(m.minimal_next_hops(n(8), n(8)).is_empty());
        // One hop away there is exactly one minimal next hop.
        assert_eq!(m.minimal_next_hops(n(7), n(8)), vec![n(8)]);
    }

    #[test]
    fn unreachable_nodes_have_no_next_hops() {
        use crate::geometry::Connection;
        let g = Geometry::custom(3, vec![Connection::new(n(0), n(1))]);
        let m = DistanceMatrix::new(&g);
        assert_eq!(m.distance(n(0), n(2)), u32::MAX);
        assert!(m.minimal_next_hops(n(0), n(2)).is_empty());
    }
}
