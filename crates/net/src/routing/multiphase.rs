//! Multi-phase oblivious routing: O1TURN, Valiant, and two-phase ROMM.
//!
//! These schemes are expressed with the same weighted routing tables as DOR by
//! (a) renaming the flow while the packet is in an auxiliary phase (the YX
//! subroute for O1TURN, the "heading to the intermediate node" phase for
//! Valiant/ROMM) and renaming it back at the phase boundary, and (b) merging
//! all routes that share a `(previous node, flow)` key into weighted entries.

use crate::geometry::{Geometry, Topology};
use crate::ids::NodeId;
use crate::routing::dor::{dor_path, install_path, install_path_with_flows, DimensionOrder};
use crate::routing::table::RoutingTable;
use crate::routing::FlowSpec;

/// Phase tag used for the YX subroute of O1TURN and the first (to-intermediate)
/// phase of Valiant/ROMM.
pub const AUX_PHASE: u8 = 1;

/// Builds O1TURN routing tables: each packet takes the XY path or the YX path
/// with equal probability; the YX subroute is renamed to phase 1 so that VC
/// allocation can keep the two subroutes on disjoint virtual channels
/// (the deadlock-freedom condition of O1TURN).
pub fn build_o1turn_tables(geometry: &Geometry, flows: &[FlowSpec]) -> Vec<RoutingTable> {
    let mut tables = vec![RoutingTable::new(); geometry.node_count()];
    for spec in flows {
        let xy = dor_path(geometry, spec.src, spec.dst, DimensionOrder::XFirst);
        let yx = dor_path(geometry, spec.src, spec.dst, DimensionOrder::YFirst);
        if xy == yx {
            // Source and destination share a row or column: only one DOR path.
            install_path(&mut tables, &xy, spec.flow, 1.0);
            continue;
        }
        install_path(&mut tables, &xy, spec.flow, 0.5);
        let mut yx_flows = vec![spec.flow.with_phase(AUX_PHASE); yx.len()];
        yx_flows[0] = spec.flow; // the packet is injected carrying the base flow
        install_path_with_flows(&mut tables, &yx, &yx_flows, 0.5);
    }
    for t in &mut tables {
        t.normalize();
    }
    tables
}

/// Returns the candidate intermediate nodes for a flow: the whole network for
/// Valiant, the minimal rectangle spanned by source and destination for
/// two-phase ROMM.
fn intermediates(geometry: &Geometry, spec: &FlowSpec, minimal_rectangle: bool) -> Vec<NodeId> {
    if !minimal_rectangle {
        return geometry.nodes().collect();
    }
    match geometry.topology() {
        Topology::Mesh2D { .. } | Topology::Mesh3D { .. } => {
            let (sx, sy, sl) = geometry.coords(spec.src).expect("mesh coords");
            let (dx, dy, dl) = geometry.coords(spec.dst).expect("mesh coords");
            let (x0, x1) = (sx.min(dx), sx.max(dx));
            let (y0, y1) = (sy.min(dy), sy.max(dy));
            let (l0, l1) = (sl.min(dl), sl.max(dl));
            let mut nodes = Vec::new();
            for l in l0..=l1 {
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        if let Some(n) = geometry.node_at(x, y, l) {
                            nodes.push(n);
                        }
                    }
                }
            }
            nodes
        }
        // Rectangles are not well-defined on rings/tori/custom graphs; use the
        // set of nodes on minimal paths as the closest equivalent: nodes m with
        // d(s,m) + d(m,d) == d(s,d).
        _ => {
            let total = geometry.hop_distance(spec.src, spec.dst);
            geometry
                .nodes()
                .filter(|&m| {
                    geometry.hop_distance(spec.src, m) + geometry.hop_distance(m, spec.dst) == total
                })
                .collect()
        }
    }
}

/// Builds Valiant (`minimal_rectangle = false`) or two-phase ROMM
/// (`minimal_rectangle = true`) routing tables.
///
/// For each flow and each candidate intermediate node `m`, the route is the XY
/// path to `m` (phase 1, renamed flow) followed by the XY path from `m` to the
/// destination (phase 0, original flow); all routes of a flow are merged into
/// weighted table entries, which reproduces the construction described in the
/// paper (§II-A2): weights at a node are proportional to the number of
/// intermediate choices whose route continues through each next hop.
///
/// The table size (and construction time) is `O(flows × intermediates ×
/// path length)`; the paper's ROMM experiments use 8×8 meshes, where this is
/// trivially cheap. Prefer XY/O1TURN for all-to-all flow sets on ≥ 32×32
/// meshes.
pub fn build_valiant_tables(
    geometry: &Geometry,
    flows: &[FlowSpec],
    minimal_rectangle: bool,
) -> Vec<RoutingTable> {
    let mut tables = vec![RoutingTable::new(); geometry.node_count()];
    for spec in flows {
        let mids = intermediates(geometry, spec, minimal_rectangle);
        for m in mids {
            if m == spec.src || m == spec.dst {
                let path = dor_path(geometry, spec.src, spec.dst, DimensionOrder::XFirst);
                install_path(&mut tables, &path, spec.flow, 1.0);
                continue;
            }
            let p1 = dor_path(geometry, spec.src, m, DimensionOrder::XFirst);
            let p2 = dor_path(geometry, m, spec.dst, DimensionOrder::XFirst);
            // Combined node sequence: src .. m .. dst (m appears once).
            let mut path = p1.clone();
            path.extend_from_slice(&p2[1..]);
            // Flow carried at each position: base at the source, the renamed
            // phase-1 flow until the intermediate node (inclusive), base after.
            let mut path_flows = Vec::with_capacity(path.len());
            for (i, _) in path.iter().enumerate() {
                let flow = if i == 0 {
                    spec.flow
                } else if i < p1.len() {
                    spec.flow.with_phase(AUX_PHASE)
                } else {
                    spec.flow
                };
                path_flows.push(flow);
            }
            install_path_with_flows(&mut tables, &path, &path_flows, 1.0);
        }
    }
    for t in &mut tables {
        t.normalize();
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{trace_route, RoutingPolicy};
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn policies(tables: Vec<RoutingTable>) -> Vec<RoutingPolicy> {
        tables
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect()
    }

    #[test]
    fn o1turn_source_has_two_options() {
        // Paper Figure 3b: 3x3 mesh, flow 6 -> 2: start node has two entries
        // (via node 3 and via node 7) weighted equally.
        let g = Geometry::mesh2d(3, 3);
        let spec = FlowSpec::pair(n(6), n(2), 9);
        let tables = build_o1turn_tables(&g, &[spec]);
        let options = tables[6].lookup(n(6), spec.flow);
        assert_eq!(options.len(), 2);
        let nodes: Vec<_> = options.iter().map(|o| o.next_node).collect();
        assert!(nodes.contains(&n(3)) && nodes.contains(&n(7)));
        for o in options {
            assert!((o.weight - 0.5).abs() < 1e-9);
        }
        // Destination has two entries: one arriving from node 1 (YX) and one
        // from node 5 (XY).
        assert_eq!(tables[2].lookup(n(5), spec.flow).len(), 1);
        assert_eq!(
            tables[2]
                .lookup(n(1), spec.flow.with_phase(AUX_PHASE))
                .len(),
            1
        );
    }

    #[test]
    fn o1turn_degenerate_same_row_is_single_path() {
        let g = Geometry::mesh2d(3, 3);
        let spec = FlowSpec::pair(n(3), n(5), 9);
        let tables = build_o1turn_tables(&g, &[spec]);
        let options = tables[3].lookup(n(3), spec.flow);
        assert_eq!(options.len(), 1);
        assert!((options[0].weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn romm_intermediate_stays_in_rectangle() {
        let g = Geometry::mesh2d(3, 3);
        let spec = FlowSpec::pair(n(6), n(2), 9);
        let mids = intermediates(&g, &spec, true);
        // The 6..2 rectangle is the whole 3x3 mesh here.
        assert_eq!(mids.len(), 9);
        let spec2 = FlowSpec::pair(n(0), n(2), 9);
        let mids2 = intermediates(&g, &spec2, true);
        // Same-row flow: rectangle is just that row.
        assert_eq!(mids2.len(), 3);
    }

    #[test]
    fn romm_routes_always_reach_destination() {
        let g = Geometry::mesh2d(4, 4);
        let flows = crate::routing::FlowSpec::all_to_all(&g);
        let tables = build_valiant_tables(&g, &flows, true);
        let pol = policies(tables);
        for f in &flows {
            let path = trace_route(&pol, f.src, f.dst, f.flow, 64).expect("route");
            assert_eq!(*path.last().unwrap(), f.dst);
        }
    }

    #[test]
    fn valiant_uses_nonminimal_paths() {
        // With Valiant, the table at the source of a 1-hop flow must offer
        // next hops other than the destination (routes via far intermediates).
        let g = Geometry::mesh2d(4, 4);
        let spec = FlowSpec::pair(n(0), n(1), 16);
        let tables = build_valiant_tables(&g, &[spec], false);
        let options = tables[0].lookup(n(0), spec.flow);
        assert!(
            options.len() >= 2,
            "expected nonminimal options, got {options:?}"
        );
    }

    #[test]
    fn romm_paper_example_node4_weights() {
        // Paper §II-A2 example: flow 6 -> 2 on a 3x3 mesh; at node 4, a packet
        // arriving from node 7 (still in phase 1) goes to node 1 or node 5
        // with equal probability (one path each), renaming when it goes to 5.
        let g = Geometry::mesh2d(3, 3);
        let spec = FlowSpec::pair(n(6), n(2), 9);
        let tables = build_valiant_tables(&g, &[spec], true);
        let phase1 = spec.flow.with_phase(AUX_PHASE);
        let opts = tables[4].lookup(n(7), phase1);
        assert_eq!(opts.len(), 2, "{opts:?}");
        for o in opts {
            assert!((o.weight - 0.5).abs() < 1e-9, "{opts:?}");
            if o.next_node == n(5) {
                assert_eq!(o.next_flow, spec.flow, "renamed back after intermediate");
            } else {
                assert_eq!(o.next_node, n(1));
                assert_eq!(o.next_flow, phase1, "still heading to intermediate");
            }
        }
    }
}
