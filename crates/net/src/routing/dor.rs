//! Dimension-ordered routing (DOR): XY and YX, on meshes, tori, rings and
//! multi-layer meshes. For custom geometries without coordinates the builder
//! falls back to breadth-first shortest paths.

use crate::geometry::{Geometry, Topology};
use crate::ids::NodeId;
use crate::routing::table::RoutingTable;
use crate::routing::FlowSpec;

/// Which dimension is resolved first.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DimensionOrder {
    /// Route X first, then Y, then layer (classic XY / DOR).
    XFirst,
    /// Route Y first, then X, then layer.
    YFirst,
}

/// Steps one coordinate toward a target, honouring torus wraparound when the
/// geometry provides it.
fn step_toward(cur: usize, dst: usize, extent: usize, wraps: bool) -> usize {
    if cur == dst {
        return cur;
    }
    if wraps {
        let forward = (dst + extent - cur) % extent;
        let backward = (cur + extent - dst) % extent;
        if forward <= backward {
            (cur + 1) % extent
        } else {
            (cur + extent - 1) % extent
        }
    } else if dst > cur {
        cur + 1
    } else {
        cur - 1
    }
}

/// Computes the dimension-ordered path (inclusive of both endpoints) from
/// `src` to `dst`.
///
/// For `Custom` geometries this degenerates to a breadth-first shortest path
/// (the geometry has no coordinate system to order dimensions by).
///
/// # Panics
///
/// Panics if the geometry is disconnected between `src` and `dst`.
pub fn dor_path(
    geometry: &Geometry,
    src: NodeId,
    dst: NodeId,
    order: DimensionOrder,
) -> Vec<NodeId> {
    if src == dst {
        return vec![src];
    }
    match geometry.topology() {
        Topology::Custom { .. } => bfs_path(geometry, src, dst),
        topo => {
            let wraps = matches!(topo, Topology::Torus2D { .. } | Topology::Ring { .. });
            let width = geometry.width().expect("coordinate topology");
            let height = geometry.height().expect("coordinate topology");
            let layers = match topo {
                Topology::Mesh3D { layers, .. } => *layers,
                _ => 1,
            };
            let (mut x, mut y, mut l) = geometry.coords(src).expect("coordinate topology");
            let (dx, dy, dl) = geometry.coords(dst).expect("coordinate topology");
            let mut path = vec![src];
            let mut guard = 0usize;
            let max_steps = width + height + layers + 4;
            while (x, y, l) != (dx, dy, dl) {
                guard += 1;
                assert!(
                    guard <= max_steps * 2,
                    "dimension-ordered routing failed to converge"
                );
                match order {
                    DimensionOrder::XFirst => {
                        if x != dx {
                            x = step_toward(x, dx, width, wraps);
                        } else if y != dy {
                            y = step_toward(y, dy, height, wraps);
                        } else {
                            l = step_toward(l, dl, layers, false);
                        }
                    }
                    DimensionOrder::YFirst => {
                        if y != dy {
                            y = step_toward(y, dy, height, wraps);
                        } else if x != dx {
                            x = step_toward(x, dx, width, wraps);
                        } else {
                            l = step_toward(l, dl, layers, false);
                        }
                    }
                }
                let next = geometry
                    .node_at(x, y, l)
                    .expect("dimension-ordered step stayed inside the geometry");
                // Multi-layer meshes with sparse vertical links may not have a
                // direct link for the layer step from an arbitrary (x, y);
                // route within the layer to a pillar first by falling back to
                // BFS in that rare case.
                if !geometry.connected(*path.last().unwrap(), next) {
                    return bfs_path(geometry, src, dst);
                }
                path.push(next);
            }
            path
        }
    }
}

/// Breadth-first shortest path (inclusive of endpoints).
///
/// # Panics
///
/// Panics if `dst` is unreachable from `src`.
pub fn bfs_path(geometry: &Geometry, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    if src == dst {
        return vec![src];
    }
    let n = geometry.node_count();
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[src.index()] = true;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        if v == dst {
            break;
        }
        for &w in geometry.neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                prev[w.index()] = Some(v);
                queue.push_back(w);
            }
        }
    }
    assert!(
        seen[dst.index()],
        "destination {dst} unreachable from {src}"
    );
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    path
}

/// Installs a single path into per-node routing tables for a flow, with the
/// given weight, keeping the flow identifier constant along the path.
pub fn install_path(
    tables: &mut [RoutingTable],
    path: &[NodeId],
    flow: crate::ids::FlowId,
    weight: f64,
) {
    install_path_with_flows(tables, path, &vec![flow; path.len()], weight);
}

/// Installs a path where each position may carry a different (renamed) flow
/// identifier. `flows[i]` is the flow identifier the packet carries when it is
/// *at* `path[i]`; renaming to `flows[i+1]` happens on the hop out of
/// `path[i]`.
pub fn install_path_with_flows(
    tables: &mut [RoutingTable],
    path: &[NodeId],
    flows: &[crate::ids::FlowId],
    weight: f64,
) {
    assert_eq!(path.len(), flows.len());
    if path.is_empty() {
        return;
    }
    for i in 0..path.len() {
        let node = path[i];
        let prev = if i == 0 { path[0] } else { path[i - 1] };
        let flow_here = flows[i];
        if i + 1 < path.len() {
            tables[node.index()].add(prev, flow_here, path[i + 1], flows[i + 1], weight);
        } else {
            // Terminal entry: deliver locally, restoring the base flow.
            tables[node.index()].add(prev, flow_here, node, flows[i].with_phase(0), weight);
        }
    }
}

/// Builds dimension-ordered routing tables for the given flows.
pub fn build_dor_tables(
    geometry: &Geometry,
    flows: &[FlowSpec],
    order: DimensionOrder,
) -> Vec<RoutingTable> {
    let mut tables = vec![RoutingTable::new(); geometry.node_count()];
    for spec in flows {
        let path = dor_path(geometry, spec.src, spec.dst, order);
        install_path(&mut tables, &path, spec.flow, 1.0);
    }
    for t in &mut tables {
        t.normalize();
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn xy_path_on_mesh_matches_paper_example() {
        // Paper Figure 3a: 3x3 mesh, flow from node 6 to node 2 goes
        // 6 -> 7 -> 8 -> 5 -> 2 under XY routing.
        let g = Geometry::mesh2d(3, 3);
        let path = dor_path(&g, n(6), n(2), DimensionOrder::XFirst);
        assert_eq!(path, vec![n(6), n(7), n(8), n(5), n(2)]);
    }

    #[test]
    fn yx_path_on_mesh() {
        let g = Geometry::mesh2d(3, 3);
        let path = dor_path(&g, n(6), n(2), DimensionOrder::YFirst);
        assert_eq!(path, vec![n(6), n(3), n(0), n(1), n(2)]);
    }

    #[test]
    fn dor_path_is_minimal_on_mesh() {
        let g = Geometry::mesh2d(8, 8);
        for (s, d) in [(0u32, 63u32), (7, 56), (12, 34), (63, 0)] {
            let path = dor_path(&g, n(s), n(d), DimensionOrder::XFirst);
            assert_eq!(path.len() - 1, g.hop_distance(n(s), n(d)));
        }
    }

    #[test]
    fn torus_uses_wraparound_when_shorter() {
        let g = Geometry::torus2d(8, 8);
        // 0 -> 7 is 1 hop across the wraparound link.
        let path = dor_path(&g, n(0), n(7), DimensionOrder::XFirst);
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn path_to_self_is_single_node() {
        let g = Geometry::mesh2d(4, 4);
        assert_eq!(dor_path(&g, n(5), n(5), DimensionOrder::XFirst), vec![n(5)]);
    }

    #[test]
    fn bfs_path_works_on_custom_geometry() {
        use crate::geometry::Connection;
        let g = Geometry::custom(
            4,
            vec![
                Connection::new(n(0), n(1)),
                Connection::new(n(1), n(2)),
                Connection::new(n(2), n(3)),
                Connection::new(n(0), n(3)),
            ],
        );
        let path = dor_path(&g, n(0), n(2), DimensionOrder::XFirst);
        assert_eq!(path.len(), 3); // 0-1-2 or 0-3-2
    }

    #[test]
    fn tables_have_entries_along_the_path_only() {
        let g = Geometry::mesh2d(3, 3);
        let flow = FlowSpec::pair(n(6), n(2), 9);
        let tables = build_dor_tables(&g, &[flow], DimensionOrder::XFirst);
        // Nodes on the path 6,7,8,5,2 have an entry; others don't.
        for (i, t) in tables.iter().enumerate() {
            let expected = [6usize, 7, 8, 5, 2].contains(&i);
            assert_eq!(!t.is_empty(), expected, "node {i}");
        }
        // Source entry keyed by (self, flow).
        let src_entry = tables[6].lookup(n(6), flow.flow);
        assert_eq!(src_entry.len(), 1);
        assert_eq!(src_entry[0].next_node, n(7));
        // Terminal entry at the destination delivers locally.
        let dst_entry = tables[2].lookup(n(5), flow.flow);
        assert_eq!(dst_entry.len(), 1);
        assert_eq!(dst_entry[0].next_node, n(2));
    }

    #[test]
    fn mesh3d_dor_path_reaches_other_layer() {
        use crate::geometry::VerticalLinks;
        let g = Geometry::mesh3d(3, 3, 2, VerticalLinks::XCube);
        let path = dor_path(&g, n(0), n(17), DimensionOrder::XFirst);
        assert_eq!(*path.last().unwrap(), n(17));
        for w in path.windows(2) {
            assert!(g.connected(w[0], w[1]));
        }
    }

    #[test]
    fn mesh3d_sparse_vertical_falls_back_to_bfs() {
        use crate::geometry::VerticalLinks;
        let g = Geometry::mesh3d(3, 3, 2, VerticalLinks::X1);
        // Destination on the other layer far from the single pillar at (0,0).
        let src = g.node_at(2, 2, 0).unwrap();
        let dst = g.node_at(2, 2, 1).unwrap();
        let path = dor_path(&g, src, dst, DimensionOrder::XFirst);
        assert_eq!(*path.last().unwrap(), dst);
        for w in path.windows(2) {
            assert!(g.connected(w[0], w[1]));
        }
    }
}
