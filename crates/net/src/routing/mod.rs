//! Routing: table-driven oblivious/static schemes and adaptive routing.
//!
//! HORNET routes packets with per-node routing tables addressed by
//! `⟨previous node, flow⟩`; each entry is a set of weighted next-hop results
//! `{⟨next node, next flow, weight⟩, …}`. When a lookup returns several
//! options one is chosen at random with probability proportional to its
//! weight, and the packet's flow identifier is renamed to `next flow` — this
//! single mechanism expresses DOR (XY/YX), O1TURN, Valiant, ROMM, PROM and
//! application-aware static routing. Adaptive routing bypasses the tables and
//! selects among minimal next hops based on downstream congestion.

pub mod adaptive;
pub mod dor;
pub mod multiphase;
pub mod prom;
pub mod staticlb;
pub mod table;

pub use adaptive::DistanceMatrix;
pub use table::{NextHop, RoutingTable};

use crate::geometry::Geometry;
use crate::ids::{FlowId, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A flow that the routing tables must be able to carry: a (source,
/// destination) pair plus its canonical flow identifier.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Canonical (phase-0) flow identifier.
    pub flow: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

impl FlowSpec {
    /// Creates a flow spec with the canonical pair flow identifier.
    pub fn pair(src: NodeId, dst: NodeId, node_count: usize) -> Self {
        Self {
            flow: FlowId::for_pair(src, dst, node_count),
            src,
            dst,
        }
    }

    /// All-to-all flows over a geometry (every ordered pair of distinct nodes).
    pub fn all_to_all(geometry: &Geometry) -> Vec<Self> {
        let n = geometry.node_count();
        let mut flows = Vec::with_capacity(n * (n - 1));
        for s in geometry.nodes() {
            for d in geometry.nodes() {
                if s != d {
                    flows.push(Self::pair(s, d, n));
                }
            }
        }
        flows
    }
}

/// The routing algorithm families available out of the box (paper §II-A2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Dimension-ordered XY routing.
    Xy,
    /// Dimension-ordered YX routing.
    Yx,
    /// O1TURN: each packet picks XY or YX with equal probability.
    O1Turn,
    /// Valiant: route to a uniformly random intermediate node, then to the
    /// destination (both phases XY).
    Valiant,
    /// Two-phase ROMM: like Valiant but the intermediate node is restricted to
    /// the minimal rectangle between source and destination.
    Romm,
    /// PROM: probabilistic oblivious minimal routing — at every hop the next
    /// minimal direction is chosen with probability proportional to the number
    /// of remaining minimal paths through it.
    Prom,
    /// Application-aware static routing (BSOR-style): one fixed minimal path
    /// per flow, chosen greedily to balance link load.
    StaticLoadBalanced,
    /// Minimal adaptive routing: choose among minimal next hops by downstream
    /// buffer availability.
    AdaptiveMinimal,
}

impl RoutingKind {
    /// A short lowercase label, matching the figure legends of the paper.
    pub fn label(self) -> &'static str {
        match self {
            RoutingKind::Xy => "xy",
            RoutingKind::Yx => "yx",
            RoutingKind::O1Turn => "o1turn",
            RoutingKind::Valiant => "valiant",
            RoutingKind::Romm => "romm",
            RoutingKind::Prom => "prom",
            RoutingKind::StaticLoadBalanced => "static",
            RoutingKind::AdaptiveMinimal => "adaptive",
        }
    }

    /// True if this scheme needs more than one virtual-channel set to stay
    /// deadlock-free (subroute / phase separation).
    pub fn needs_phase_separated_vcs(self) -> bool {
        matches!(
            self,
            RoutingKind::O1Turn | RoutingKind::Valiant | RoutingKind::Romm
        )
    }
}

impl std::fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The per-node routing policy the router consults in its RC stage.
#[derive(Clone, Debug)]
pub enum RoutingPolicy {
    /// Table-driven (oblivious or static) routing.
    Table(Arc<RoutingTable>),
    /// Minimal adaptive routing over a shared distance matrix.
    AdaptiveMinimal(Arc<DistanceMatrix>),
}

impl RoutingPolicy {
    /// Returns the weighted next-hop candidates for a packet of flow `flow`
    /// heading to `dst` that arrived at `node` from `prev` (where
    /// `prev == node` denotes local injection).
    ///
    /// Returns an empty vector if the policy has no route — the router treats
    /// that as a configuration error and drops the packet while counting it.
    pub fn candidates(
        &self,
        node: NodeId,
        prev: NodeId,
        flow: FlowId,
        dst: NodeId,
    ) -> Vec<NextHop> {
        let mut out = Vec::new();
        self.candidates_into(node, prev, flow, dst, &mut out);
        out
    }

    /// Allocation-free variant of [`candidates`](Self::candidates): clears
    /// `out` and fills it with the weighted next-hop candidates. The router's
    /// RC stage calls this every cycle with a reusable scratch vector, so the
    /// steady-state hot path never touches the heap.
    pub fn candidates_into(
        &self,
        node: NodeId,
        prev: NodeId,
        flow: FlowId,
        dst: NodeId,
        out: &mut Vec<NextHop>,
    ) {
        out.clear();
        match self {
            RoutingPolicy::Table(table) => out.extend_from_slice(table.lookup(prev, flow)),
            RoutingPolicy::AdaptiveMinimal(dist) => {
                if node == dst {
                    out.push(NextHop {
                        next_node: node,
                        next_flow: flow,
                        weight: 1.0,
                    });
                    return;
                }
                for &w in dist.neighbors_of(node) {
                    if dist.is_minimal_hop(node, w, dst) {
                        out.push(NextHop {
                            next_node: w,
                            next_flow: flow,
                            weight: 1.0,
                        });
                    }
                }
            }
        }
    }

    /// True if the router should break ties among candidates by downstream
    /// congestion rather than by weighted random selection.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, RoutingPolicy::AdaptiveMinimal(_))
    }
}

/// Builds one routing policy per node for the requested scheme.
///
/// `flows` must list every flow the traffic will use; table-driven schemes
/// only install entries for those flows (exactly like HORNET's configuration
/// files do).
///
/// # Panics
///
/// Panics if a table-driven scheme is requested for a geometry without
/// coordinates (custom geometries support `Xy` = BFS shortest path,
/// `StaticLoadBalanced` and `AdaptiveMinimal` only).
pub fn build_routing(
    kind: RoutingKind,
    geometry: &Geometry,
    flows: &[FlowSpec],
) -> Vec<RoutingPolicy> {
    match kind {
        RoutingKind::Xy => dor::build_dor_tables(geometry, flows, dor::DimensionOrder::XFirst)
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect(),
        RoutingKind::Yx => dor::build_dor_tables(geometry, flows, dor::DimensionOrder::YFirst)
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect(),
        RoutingKind::O1Turn => multiphase::build_o1turn_tables(geometry, flows)
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect(),
        RoutingKind::Valiant => multiphase::build_valiant_tables(geometry, flows, false)
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect(),
        RoutingKind::Romm => multiphase::build_valiant_tables(geometry, flows, true)
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect(),
        RoutingKind::Prom => prom::build_prom_tables(geometry, flows)
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect(),
        RoutingKind::StaticLoadBalanced => staticlb::build_static_tables(geometry, flows)
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect(),
        RoutingKind::AdaptiveMinimal => {
            let dist = Arc::new(DistanceMatrix::new(geometry));
            (0..geometry.node_count())
                .map(|_| RoutingPolicy::AdaptiveMinimal(Arc::clone(&dist)))
                .collect()
        }
    }
}

/// Follows a table-driven route from `src` to `dst`, always taking the
/// highest-weight option, and returns the node sequence. Used by tests and by
/// the congestion-oblivious (ideal) network model to compute hop counts.
pub fn trace_route(
    policies: &[RoutingPolicy],
    src: NodeId,
    dst: NodeId,
    flow: FlowId,
    max_hops: usize,
) -> Option<Vec<NodeId>> {
    let mut path = vec![src];
    let mut cur = src;
    let mut prev = src;
    let mut cur_flow = flow;
    for _ in 0..max_hops {
        let cands = policies[cur.index()].candidates(cur, prev, cur_flow, dst);
        let best = cands
            .iter()
            .max_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap())?;
        if best.next_node == cur {
            return Some(path);
        }
        prev = cur;
        cur = best.next_node;
        cur_flow = best.next_flow;
        path.push(cur);
        if cur == dst {
            // Verify the table can terminate at the destination.
            let terminal = policies[cur.index()].candidates(cur, prev, cur_flow, dst);
            if terminal.iter().any(|h| h.next_node == cur) {
                return Some(path);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_kind_labels_are_unique() {
        use std::collections::HashSet;
        let kinds = [
            RoutingKind::Xy,
            RoutingKind::Yx,
            RoutingKind::O1Turn,
            RoutingKind::Valiant,
            RoutingKind::Romm,
            RoutingKind::Prom,
            RoutingKind::StaticLoadBalanced,
            RoutingKind::AdaptiveMinimal,
        ];
        let labels: HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
        assert!(RoutingKind::Romm.needs_phase_separated_vcs());
        assert!(!RoutingKind::Xy.needs_phase_separated_vcs());
    }

    #[test]
    fn flow_spec_all_to_all_counts() {
        let g = Geometry::mesh2d(3, 3);
        let flows = FlowSpec::all_to_all(&g);
        assert_eq!(flows.len(), 9 * 8);
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn every_kind_routes_a_small_mesh() {
        let g = Geometry::mesh2d(4, 4);
        let flows = FlowSpec::all_to_all(&g);
        for kind in [
            RoutingKind::Xy,
            RoutingKind::Yx,
            RoutingKind::O1Turn,
            RoutingKind::Valiant,
            RoutingKind::Romm,
            RoutingKind::Prom,
            RoutingKind::StaticLoadBalanced,
            RoutingKind::AdaptiveMinimal,
        ] {
            let policies = build_routing(kind, &g, &flows);
            assert_eq!(policies.len(), 16);
            for f in &flows {
                let path = trace_route(&policies, f.src, f.dst, f.flow, 64)
                    .unwrap_or_else(|| panic!("{kind:?} failed to route {f:?}"));
                assert_eq!(*path.first().unwrap(), f.src);
                assert_eq!(*path.last().unwrap(), f.dst, "{kind:?} {f:?} path {path:?}");
                // Consecutive path nodes must be physically connected.
                for w in path.windows(2) {
                    assert!(g.connected(w[0], w[1]), "{kind:?} hop {w:?} not a link");
                }
            }
        }
    }
}
