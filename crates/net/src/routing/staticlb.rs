//! Application-aware static routing (BSOR-style).
//!
//! Each flow is assigned a single fixed minimal path, chosen greedily so that
//! the maximum number of flows crossing any one link is kept low. This stands
//! in for the offline bandwidth-sensitive oblivious routing (BSOR) flows the
//! paper cites: the router sees an ordinary single-entry table per flow.

use crate::geometry::Geometry;
use crate::ids::NodeId;
use crate::routing::dor::install_path;
use crate::routing::table::RoutingTable;
use crate::routing::FlowSpec;
use std::collections::HashMap;

/// Computes BFS distances from every node to `dst`.
fn distances_to(geometry: &Geometry, dst: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; geometry.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[dst.index()] = 0;
    queue.push_back(dst);
    while let Some(v) = queue.pop_front() {
        for &w in geometry.neighbors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Chooses a minimal path for one flow, greedily preferring the least-loaded
/// outgoing link at each step (ties broken toward the lower node id so the
/// result is deterministic).
fn pick_path(
    geometry: &Geometry,
    src: NodeId,
    dst: NodeId,
    load: &HashMap<(NodeId, NodeId), usize>,
) -> Vec<NodeId> {
    let dist = distances_to(geometry, dst);
    let mut path = vec![src];
    let mut cur = src;
    while cur != dst {
        let d = dist[cur.index()];
        let next = geometry
            .neighbors(cur)
            .iter()
            .copied()
            .filter(|&w| dist[w.index()] + 1 == d)
            .min_by_key(|&w| (load.get(&(cur, w)).copied().unwrap_or(0), w))
            .expect("destination reachable");
        path.push(next);
        cur = next;
    }
    path
}

/// Builds static load-balanced routing tables: one fixed minimal path per
/// flow, chosen greedily to minimise the worst-case link load.
///
/// Flows are processed in the order given; processing heavier flows first (if
/// the caller knows flow rates) improves the balance, mirroring how BSOR uses
/// application knowledge.
pub fn build_static_tables(geometry: &Geometry, flows: &[FlowSpec]) -> Vec<RoutingTable> {
    let mut tables = vec![RoutingTable::new(); geometry.node_count()];
    let mut load: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    for spec in flows {
        let path = pick_path(geometry, spec.src, spec.dst, &load);
        for w in path.windows(2) {
            *load.entry((w[0], w[1])).or_insert(0) += 1;
        }
        install_path(&mut tables, &path, spec.flow, 1.0);
    }
    for t in &mut tables {
        t.normalize();
    }
    tables
}

/// Returns the per-directed-link flow counts that a set of static routes
/// induces; useful for reporting the "most encumbered link" analyses of the
/// paper (§IV-A).
pub fn link_loads(geometry: &Geometry, flows: &[FlowSpec]) -> HashMap<(NodeId, NodeId), usize> {
    let mut load: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    for spec in flows {
        let path = pick_path(geometry, spec.src, spec.dst, &load);
        for w in path.windows(2) {
            *load.entry((w[0], w[1])).or_insert(0) += 1;
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::dor::{build_dor_tables, DimensionOrder};
    use crate::routing::{trace_route, RoutingPolicy};
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn static_paths_are_minimal_and_single_option() {
        let g = Geometry::mesh2d(4, 4);
        let flows = FlowSpec::all_to_all(&g);
        let tables = build_static_tables(&g, &flows);
        for f in &flows {
            let opts = tables[f.src.index()].lookup(f.src, f.flow);
            assert_eq!(opts.len(), 1, "static routing has exactly one next hop");
        }
        let pol: Vec<RoutingPolicy> = tables
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect();
        for f in &flows {
            let path = trace_route(&pol, f.src, f.dst, f.flow, 32).expect("route");
            assert_eq!(path.len() - 1, g.hop_distance(f.src, f.dst));
        }
    }

    #[test]
    fn load_balancing_beats_xy_worst_link() {
        // All-to-all traffic on a mesh: XY concentrates flows on central
        // links; the greedy balancer must not be worse.
        let g = Geometry::mesh2d(6, 6);
        let flows = FlowSpec::all_to_all(&g);

        let xy_tables = build_dor_tables(&g, &flows, DimensionOrder::XFirst);
        let xy_pol: Vec<RoutingPolicy> = xy_tables
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect();
        let mut xy_load: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        for f in &flows {
            let path = trace_route(&xy_pol, f.src, f.dst, f.flow, 32).unwrap();
            for w in path.windows(2) {
                *xy_load.entry((w[0], w[1])).or_insert(0) += 1;
            }
        }
        let xy_worst = *xy_load.values().max().unwrap();

        let lb_load = link_loads(&g, &flows);
        let lb_worst = *lb_load.values().max().unwrap();
        // The greedy balancer is an online heuristic, so it does not dominate
        // XY on every instance, but it must stay in the same ballpark and it
        // must use at least as many distinct links as XY does.
        assert!(
            lb_worst <= xy_worst * 2,
            "load-balanced worst link {lb_worst} is unreasonably worse than XY's {xy_worst}"
        );
        assert!(
            lb_load.len() >= xy_load.len(),
            "the balancer should spread flows over at least as many links"
        );
    }

    #[test]
    fn worst_link_flow_count_formula() {
        // Paper footnote 1: with DOR on an n x n mesh and all-to-all traffic,
        // the most encumbered link carries n^3/4 flows.
        for n_dim in [4usize, 6, 8] {
            let g = Geometry::mesh2d(n_dim, n_dim);
            let flows = FlowSpec::all_to_all(&g);
            let tables = build_dor_tables(&g, &flows, DimensionOrder::XFirst);
            let pol: Vec<RoutingPolicy> = tables
                .into_iter()
                .map(|t| RoutingPolicy::Table(Arc::new(t)))
                .collect();
            let mut load: HashMap<(NodeId, NodeId), usize> = HashMap::new();
            for f in &flows {
                let path = trace_route(&pol, f.src, f.dst, f.flow, 64).unwrap();
                for w in path.windows(2) {
                    *load.entry((w[0], w[1])).or_insert(0) += 1;
                }
            }
            let worst = *load.values().max().unwrap();
            assert_eq!(worst, n_dim * n_dim * n_dim / 4, "n = {n_dim}");
        }
    }

    #[test]
    fn pick_path_prefers_less_loaded_links() {
        let g = Geometry::mesh2d(3, 3);
        let mut load = HashMap::new();
        // Pre-load the XY first hop of 0 -> 8 (link 0 -> 1).
        load.insert((n(0), n(1)), 100usize);
        let path = pick_path(&g, n(0), n(8), &load);
        assert_eq!(path[1], n(3), "should start with the unloaded -y link");
    }
}
