//! PROM: Path-based, Randomized, Oblivious, Minimal routing.
//!
//! At every hop inside the minimal rectangle the packet chooses among the
//! minimal next hops with probability proportional to the number of minimal
//! lattice paths that continue through each of them — this realizes a uniform
//! distribution over all minimal paths using only local, table-driven
//! decisions, and is exactly the weighting HORNET's tables support natively.

use crate::geometry::{Geometry, Topology};
use crate::ids::NodeId;
use crate::routing::dor::{build_dor_tables, DimensionOrder};
use crate::routing::table::RoutingTable;
use crate::routing::FlowSpec;

/// Number of minimal lattice paths between two points that are `dx` apart in x
/// and `dy` apart in y: the binomial coefficient C(dx + dy, dx), computed with
/// saturating 64-bit arithmetic (plenty for on-chip mesh dimensions).
fn lattice_paths(dx: u64, dy: u64) -> f64 {
    // C(dx+dy, dx) built multiplicatively to stay accurate for small inputs.
    let k = dx.min(dy);
    let n = dx + dy;
    let mut result = 1.0f64;
    for i in 0..k {
        result *= (n - i) as f64 / (i + 1) as f64;
    }
    result
}

/// Builds PROM routing tables.
///
/// PROM is defined on 2-D meshes; for other topologies this falls back to
/// dimension-ordered (XY) routing, which is the degenerate single-minimal-path
/// case of PROM.
pub fn build_prom_tables(geometry: &Geometry, flows: &[FlowSpec]) -> Vec<RoutingTable> {
    if !matches!(geometry.topology(), Topology::Mesh2D { .. }) {
        return build_dor_tables(geometry, flows, DimensionOrder::XFirst);
    }
    let mut tables = vec![RoutingTable::new(); geometry.node_count()];
    for spec in flows {
        let (dx, dy, _) = geometry.coords(spec.dst).expect("mesh coords");
        let (sx, sy, _) = geometry.coords(spec.src).expect("mesh coords");
        let (x0, x1) = (sx.min(dx), sx.max(dx));
        let (y0, y1) = (sy.min(dy), sy.max(dy));
        for y in y0..=y1 {
            for x in x0..=x1 {
                let node = geometry.node_at(x, y, 0).expect("in-mesh node");
                // Possible predecessors: any rectangle neighbour that could
                // have forwarded the packet here, plus the node itself if it
                // is the source (local injection).
                let mut prevs: Vec<NodeId> = geometry
                    .neighbors(node)
                    .iter()
                    .copied()
                    .filter(|&p| {
                        let (px, py, _) = geometry.coords(p).expect("mesh coords");
                        px >= x0 && px <= x1 && py >= y0 && py <= y1
                    })
                    .collect();
                if node == spec.src {
                    prevs.push(node);
                }
                if node == spec.dst {
                    for prev in prevs {
                        tables[node.index()].add(prev, spec.flow, node, spec.flow, 1.0);
                    }
                    continue;
                }
                // Minimal next hops: one step toward the destination in x
                // and/or in y, weighted by the number of minimal paths that
                // remain after taking that step.
                let mut options: Vec<(NodeId, f64)> = Vec::with_capacity(2);
                if x != dx {
                    let nx = if dx > x { x + 1 } else { x - 1 };
                    let next = geometry.node_at(nx, y, 0).expect("in-mesh node");
                    let rem_x = dx.abs_diff(nx) as u64;
                    let rem_y = dy.abs_diff(y) as u64;
                    options.push((next, lattice_paths(rem_x, rem_y)));
                }
                if y != dy {
                    let ny = if dy > y { y + 1 } else { y - 1 };
                    let next = geometry.node_at(x, ny, 0).expect("in-mesh node");
                    let rem_x = dx.abs_diff(x) as u64;
                    let rem_y = dy.abs_diff(ny) as u64;
                    options.push((next, lattice_paths(rem_x, rem_y)));
                }
                for prev in prevs {
                    for &(next, w) in &options {
                        tables[node.index()].add(prev, spec.flow, next, spec.flow, w);
                    }
                }
            }
        }
    }
    for t in &mut tables {
        t.normalize();
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{trace_route, RoutingPolicy};
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn lattice_path_counts() {
        assert_eq!(lattice_paths(0, 0), 1.0);
        assert_eq!(lattice_paths(3, 0), 1.0);
        assert_eq!(lattice_paths(1, 1), 2.0);
        assert_eq!(lattice_paths(2, 2), 6.0);
        assert_eq!(lattice_paths(3, 2), 10.0);
    }

    #[test]
    fn prom_source_weights_match_path_counts() {
        // 3x3 mesh, flow 6 -> 2 (opposite corners): 6 = (0,2), 2 = (2,0).
        // From the source there are C(4,2)=6 minimal paths; 3 start with +x
        // (leaving C(3,1)=3 paths) and 3 start with -y.
        let g = Geometry::mesh2d(3, 3);
        let spec = FlowSpec::pair(n(6), n(2), 9);
        let tables = build_prom_tables(&g, &[spec]);
        let options = tables[6].lookup(n(6), spec.flow);
        assert_eq!(options.len(), 2);
        for o in options {
            assert!((o.weight - 0.5).abs() < 1e-9, "{options:?}");
        }
    }

    #[test]
    fn prom_routes_reach_destination_minimally() {
        let g = Geometry::mesh2d(4, 4);
        let flows = FlowSpec::all_to_all(&g);
        let tables = build_prom_tables(&g, &flows);
        let pol: Vec<RoutingPolicy> = tables
            .into_iter()
            .map(|t| RoutingPolicy::Table(Arc::new(t)))
            .collect();
        for f in &flows {
            let path = trace_route(&pol, f.src, f.dst, f.flow, 32).expect("route");
            assert_eq!(*path.last().unwrap(), f.dst);
            assert_eq!(path.len() - 1, g.hop_distance(f.src, f.dst), "minimality");
        }
    }

    #[test]
    fn prom_falls_back_to_xy_on_rings() {
        let g = Geometry::ring(6);
        let flows = vec![FlowSpec::pair(n(0), n(3), 6)];
        let tables = build_prom_tables(&g, &flows);
        assert!(!tables[0].is_empty());
    }
}
