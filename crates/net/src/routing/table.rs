//! The per-node routing table: `⟨prev node, flow⟩ → {⟨next node, next flow, weight⟩}`.

use crate::ids::{FlowId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One weighted next-hop option returned by a routing-table lookup.
///
/// `next_node == <current node>` denotes delivery to the locally attached
/// agent (the packet has reached its destination).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NextHop {
    /// Node to forward the packet to (or the current node, for delivery).
    pub next_node: NodeId,
    /// Flow identifier the packet is renamed to when taking this hop.
    pub next_flow: FlowId,
    /// Relative selection weight (need not be normalised).
    pub weight: f64,
}

/// A per-node routing table.
///
/// Lookups are addressed by `⟨previous node, flow⟩`; the previous node of a
/// locally injected packet is the node itself, exactly as in the paper's
/// example for XY routing.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RoutingTable {
    entries: HashMap<(NodeId, FlowId), Vec<NextHop>>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds weight `weight` to the option `(next_node, next_flow)` of the
    /// entry addressed by `(prev, flow)`, creating either if absent.
    ///
    /// Accumulating weights lets multi-phase table generators (Valiant, ROMM)
    /// express "several routes with different intermediate destinations but
    /// the same next hop" as a single weighted entry.
    pub fn add(
        &mut self,
        prev: NodeId,
        flow: FlowId,
        next_node: NodeId,
        next_flow: FlowId,
        weight: f64,
    ) {
        let options = self.entries.entry((prev, flow)).or_default();
        if let Some(o) = options
            .iter_mut()
            .find(|o| o.next_node == next_node && o.next_flow == next_flow)
        {
            o.weight += weight;
        } else {
            options.push(NextHop {
                next_node,
                next_flow,
                weight,
            });
        }
    }

    /// Looks up the weighted next-hop set for `(prev, flow)`.
    ///
    /// Returns an empty slice when the table has no entry (a mis-configured
    /// flow); the router counts such packets as routing failures.
    pub fn lookup(&self, prev: NodeId, flow: FlowId) -> &[NextHop] {
        self.entries
            .get(&(prev, flow))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of `(prev, flow)` entries in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(NodeId, FlowId), &Vec<NextHop>)> {
        self.entries.iter()
    }

    /// Normalises every entry's weights to sum to 1.0 (entries whose weights
    /// sum to zero are left untouched).
    pub fn normalize(&mut self) {
        for options in self.entries.values_mut() {
            let total: f64 = options.iter().map(|o| o.weight).sum();
            if total > 0.0 {
                for o in options.iter_mut() {
                    o.weight /= total;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }
    fn f(i: u64) -> FlowId {
        FlowId::new(i)
    }

    #[test]
    fn add_and_lookup() {
        let mut t = RoutingTable::new();
        t.add(n(6), f(1), n(7), f(1), 1.0);
        assert_eq!(t.lookup(n(6), f(1)).len(), 1);
        assert_eq!(t.lookup(n(6), f(2)).len(), 0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn weights_accumulate_for_same_option() {
        let mut t = RoutingTable::new();
        t.add(n(0), f(1), n(1), f(1), 1.0);
        t.add(n(0), f(1), n(1), f(1), 2.0);
        t.add(n(0), f(1), n(2), f(1), 1.0);
        let options = t.lookup(n(0), f(1));
        assert_eq!(options.len(), 2);
        let w1 = options.iter().find(|o| o.next_node == n(1)).unwrap().weight;
        assert_eq!(w1, 3.0);
    }

    #[test]
    fn renamed_flows_are_distinct_options() {
        let mut t = RoutingTable::new();
        t.add(n(0), f(1), n(1), f(1), 1.0);
        t.add(n(0), f(1), n(1), f(1).with_phase(1), 1.0);
        assert_eq!(t.lookup(n(0), f(1)).len(), 2);
    }

    #[test]
    fn normalize_scales_weights() {
        let mut t = RoutingTable::new();
        t.add(n(0), f(1), n(1), f(1), 1.0);
        t.add(n(0), f(1), n(2), f(1), 3.0);
        t.normalize();
        let options = t.lookup(n(0), f(1));
        let total: f64 = options.iter().map(|o| o.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let w2 = options.iter().find(|o| o.next_node == n(2)).unwrap().weight;
        assert!((w2 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = RoutingTable::new();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }
}
