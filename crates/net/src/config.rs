//! Network configuration.
//!
//! Most hardware parameters of the modeled NoC are configurable: interconnect
//! geometry, routing and VC-allocation algorithms, the number and depth of
//! virtual channels (independently for router-facing and CPU-facing ports),
//! link bandwidth, and bandwidth-adaptive bidirectional links.

use crate::geometry::Geometry;
use crate::routing::{FlowSpec, RoutingKind};
use crate::vca::VcAllocKind;
use serde::{Deserialize, Serialize};

/// Errors produced when validating a [`NetworkConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A numeric parameter was zero that must be positive.
    ZeroParameter(&'static str),
    /// The geometry is not fully connected.
    DisconnectedGeometry,
    /// A flow references a node outside the geometry.
    FlowOutOfRange,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroParameter(p) => write!(f, "parameter `{p}` must be non-zero"),
            ConfigError::DisconnectedGeometry => write!(f, "geometry is not connected"),
            ConfigError::FlowOutOfRange => write!(f, "flow references a node outside the geometry"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete configuration of the simulated network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Interconnect geometry.
    pub geometry: Geometry,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// VC-allocation algorithm.
    pub vca: VcAllocKind,
    /// Virtual channels per router-facing port.
    pub vcs_per_port: usize,
    /// Depth of each router-facing VC buffer, in flits.
    pub vc_capacity: usize,
    /// Virtual channels on the CPU-facing (injection) port.
    pub injection_vcs: usize,
    /// Depth of each injection VC buffer, in flits.
    pub injection_vc_capacity: usize,
    /// Link bandwidth in flits per cycle per direction.
    pub link_bandwidth: u32,
    /// Ejection (network→CPU) bandwidth in flits per cycle.
    pub ejection_bandwidth: u32,
    /// Enable bandwidth-adaptive bidirectional links: the two directions of a
    /// physical link share `2 × link_bandwidth` flits/cycle, re-arbitrated
    /// every cycle from local demand.
    pub bidirectional_links: bool,
    /// The flows the routing/VCA tables must cover.
    pub flows: Vec<FlowSpec>,
}

impl NetworkConfig {
    /// Creates a configuration with the paper's default parameters
    /// (4 VCs/port, 4-flit buffers, 1 flit/cycle links, dynamic VCA, XY).
    pub fn new(geometry: Geometry) -> Self {
        Self {
            geometry,
            routing: RoutingKind::Xy,
            vca: VcAllocKind::Dynamic,
            vcs_per_port: 4,
            vc_capacity: 4,
            injection_vcs: 4,
            injection_vc_capacity: 8,
            link_bandwidth: 1,
            ejection_bandwidth: 1,
            bidirectional_links: false,
            flows: Vec::new(),
        }
    }

    /// Builder-style setter for the routing algorithm.
    pub fn with_routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Builder-style setter for the VC-allocation algorithm.
    pub fn with_vca(mut self, vca: VcAllocKind) -> Self {
        self.vca = vca;
        self
    }

    /// Builder-style setter for VCs per port and their depth.
    pub fn with_vcs(mut self, vcs_per_port: usize, vc_capacity: usize) -> Self {
        self.vcs_per_port = vcs_per_port;
        self.vc_capacity = vc_capacity;
        self.injection_vcs = vcs_per_port;
        self
    }

    /// Builder-style setter for the flow set.
    pub fn with_flows(mut self, flows: Vec<FlowSpec>) -> Self {
        self.flows = flows;
        self
    }

    /// Builder-style setter for all-to-all flows over the geometry.
    pub fn with_all_to_all_flows(mut self) -> Self {
        self.flows = FlowSpec::all_to_all(&self.geometry);
        self
    }

    /// Builder-style setter for bandwidth-adaptive bidirectional links.
    pub fn with_bidirectional_links(mut self, enabled: bool) -> Self {
        self.bidirectional_links = enabled;
        self
    }

    /// Builder-style setter for link bandwidth (flits/cycle/direction).
    pub fn with_link_bandwidth(mut self, bw: u32) -> Self {
        self.link_bandwidth = bw;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a structural parameter is zero, the
    /// geometry is disconnected, or a flow references an out-of-range node.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vcs_per_port == 0 {
            return Err(ConfigError::ZeroParameter("vcs_per_port"));
        }
        if self.vc_capacity == 0 {
            return Err(ConfigError::ZeroParameter("vc_capacity"));
        }
        if self.injection_vcs == 0 {
            return Err(ConfigError::ZeroParameter("injection_vcs"));
        }
        if self.injection_vc_capacity == 0 {
            return Err(ConfigError::ZeroParameter("injection_vc_capacity"));
        }
        if self.link_bandwidth == 0 {
            return Err(ConfigError::ZeroParameter("link_bandwidth"));
        }
        if self.ejection_bandwidth == 0 {
            return Err(ConfigError::ZeroParameter("ejection_bandwidth"));
        }
        if !self.geometry.is_connected() {
            return Err(ConfigError::DisconnectedGeometry);
        }
        let n = self.geometry.node_count();
        if self
            .flows
            .iter()
            .any(|f| f.src.index() >= n || f.dst.index() >= n)
        {
            return Err(ConfigError::FlowOutOfRange);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn default_config_is_valid() {
        let cfg = NetworkConfig::new(Geometry::mesh2d(4, 4)).with_all_to_all_flows();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.vcs_per_port, 4);
        assert_eq!(cfg.link_bandwidth, 1);
    }

    #[test]
    fn zero_parameters_are_rejected() {
        let cfg = NetworkConfig::new(Geometry::mesh2d(2, 2)).with_vcs(0, 4);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroParameter("vcs_per_port"))
        );
        let cfg = NetworkConfig::new(Geometry::mesh2d(2, 2)).with_vcs(2, 0);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroParameter("vc_capacity"))
        );
    }

    #[test]
    fn disconnected_geometry_is_rejected() {
        use crate::geometry::{Connection, Geometry};
        let g = Geometry::custom(3, vec![Connection::new(NodeId::new(0), NodeId::new(1))]);
        let cfg = NetworkConfig::new(g);
        assert_eq!(cfg.validate(), Err(ConfigError::DisconnectedGeometry));
    }

    #[test]
    fn out_of_range_flow_is_rejected() {
        let mut cfg = NetworkConfig::new(Geometry::mesh2d(2, 2));
        cfg.flows = vec![FlowSpec::pair(NodeId::new(0), NodeId::new(9), 4)];
        assert_eq!(cfg.validate(), Err(ConfigError::FlowOutOfRange));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ConfigError::ZeroParameter("x").to_string().contains('x'));
        assert!(!ConfigError::DisconnectedGeometry.to_string().is_empty());
        assert!(!ConfigError::FlowOutOfRange.to_string().is_empty());
    }
}
