//! Strongly-typed identifiers used throughout the network model.
//!
//! Newtypes keep node indices, flow identifiers, virtual-channel indices and
//! packet identifiers from being confused with one another (and with plain
//! integers) at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a network node (router + attached agent).
///
/// Nodes are numbered densely from `0..n` by the [`Geometry`](crate::geometry::Geometry)
/// that created them; for 2-D meshes the numbering is row-major.
///
/// ```
/// use hornet_net::ids::NodeId;
/// let n = NodeId::new(5);
/// assert_eq!(n.index(), 5);
/// assert_eq!(format!("{n}"), "n5");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        Self(v as u32)
    }
}

/// Identifier of a traffic flow.
///
/// A flow is a (source, destination) stream of packets; table-driven routing
/// and VC allocation are both addressed by flow identifiers. Multi-phase
/// routing schemes (Valiant, ROMM, O1TURN) temporarily *rename* flows in
/// flight; the renamed identifiers live in a disjoint part of the `u64` space
/// (see [`FlowId::with_phase`]).
///
/// ```
/// use hornet_net::ids::{FlowId, NodeId};
/// let f = FlowId::for_pair(NodeId::new(6), NodeId::new(2), 9);
/// assert_eq!(f.source(9), NodeId::new(6));
/// assert_eq!(f.destination(9), NodeId::new(2));
/// assert_eq!(f.phase(), 0);
/// let g = f.with_phase(1);
/// assert_eq!(g.phase(), 1);
/// assert_eq!(g.base(), f.base());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(u64);

impl FlowId {
    /// Number of bits reserved for the routing phase tag.
    const PHASE_SHIFT: u32 = 56;
    const BASE_MASK: u64 = (1 << Self::PHASE_SHIFT) - 1;

    /// Creates a flow identifier from a raw value (phase 0).
    pub const fn new(raw: u64) -> Self {
        Self(raw & Self::BASE_MASK)
    }

    /// Canonical flow identifier for a (source, destination) pair in a network
    /// of `node_count` nodes: `src * node_count + dst`.
    pub fn for_pair(src: NodeId, dst: NodeId, node_count: usize) -> Self {
        Self::new(src.index() as u64 * node_count as u64 + dst.index() as u64)
    }

    /// Source node encoded in a pair-canonical flow identifier.
    pub fn source(self, node_count: usize) -> NodeId {
        NodeId::new((self.base() / node_count as u64) as u32)
    }

    /// Destination node encoded in a pair-canonical flow identifier.
    pub fn destination(self, node_count: usize) -> NodeId {
        NodeId::new((self.base() % node_count as u64) as u32)
    }

    /// The base (phase-stripped) flow identifier.
    pub const fn base(self) -> u64 {
        self.0 & Self::BASE_MASK
    }

    /// The routing phase tag (0 for the original flow).
    pub const fn phase(self) -> u8 {
        (self.0 >> Self::PHASE_SHIFT) as u8
    }

    /// Returns this flow renamed to the given routing phase.
    ///
    /// Phase renaming is how multi-phase oblivious schemes (Valiant, ROMM) and
    /// subroute-separated schemes (O1TURN) distinguish their stages inside the
    /// routing and VC-allocation tables.
    pub const fn with_phase(self, phase: u8) -> Self {
        Self(self.base() | (phase as u64) << Self::PHASE_SHIFT)
    }

    /// The raw 64-bit value (base | phase).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.phase() == 0 {
            write!(f, "FlowId({})", self.base())
        } else {
            write!(f, "FlowId({}.p{})", self.base(), self.phase())
        }
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.phase() == 0 {
            write!(f, "f{}", self.base())
        } else {
            write!(f, "f{}.p{}", self.base(), self.phase())
        }
    }
}

/// Index of a virtual channel within an ingress port.
///
/// ```
/// use hornet_net::ids::VcId;
/// assert_eq!(VcId::new(3).index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VcId(u16);

impl VcId {
    /// Creates a virtual-channel index.
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// Returns the index as a `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VcId({})", self.0)
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

impl From<u16> for VcId {
    fn from(v: u16) -> Self {
        Self(v)
    }
}

/// Globally unique packet identifier (unique within one simulation run).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet identifier from a raw value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PacketId({})", self.0)
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a port on a router.
///
/// Port `0..k` face neighbouring routers (in the order the geometry lists the
/// connections); ports `k..` face locally attached agents (CPU cores, packet
/// injectors, memory controllers).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(u16);

impl PortId {
    /// Creates a port index.
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// Returns the index as a `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PortId({})", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// A simulated clock cycle count.
pub type Cycle = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(17);
        assert_eq!(n.index(), 17);
        assert_eq!(n.raw(), 17);
        assert_eq!(NodeId::from(17usize), n);
        assert_eq!(NodeId::from(17u32), n);
    }

    #[test]
    fn flow_id_pair_encoding() {
        let n = 64;
        for (s, d) in [(0u32, 1u32), (6, 2), (63, 0), (31, 31)] {
            let f = FlowId::for_pair(NodeId::new(s), NodeId::new(d), n);
            assert_eq!(f.source(n), NodeId::new(s));
            assert_eq!(f.destination(n), NodeId::new(d));
        }
    }

    #[test]
    fn flow_id_phase_is_disjoint_from_base() {
        let f = FlowId::new(12345);
        let p1 = f.with_phase(1);
        let p2 = f.with_phase(2);
        assert_ne!(f, p1);
        assert_ne!(p1, p2);
        assert_eq!(p1.base(), f.base());
        assert_eq!(p2.base(), f.base());
        assert_eq!(p1.with_phase(0), f);
    }

    #[test]
    fn display_formats_are_nonempty_and_stable() {
        assert_eq!(format!("{}", NodeId::new(3)), "n3");
        assert_eq!(format!("{}", VcId::new(2)), "vc2");
        assert_eq!(format!("{}", PacketId::new(9)), "p9");
        assert_eq!(format!("{}", FlowId::new(7)), "f7");
        assert_eq!(format!("{}", FlowId::new(7).with_phase(1)), "f7.p1");
        assert_eq!(format!("{}", PortId::new(4)), "port4");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        set.insert(NodeId::new(1));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(VcId::new(0) < VcId::new(1));
    }
}
