//! The agent abstraction: anything that can be attached to a tile and produce
//! or consume network traffic — trace-driven injectors, synthetic pattern
//! generators, cycle-level CPU cores, memory controllers, directories.
//!
//! A common bridge presents agents with a simple packet interface
//! ([`NodeIo`]); the details of flit framing, DMA, and retransmission live in
//! [`Bridge`](crate::bridge::Bridge), which facilitates development of new
//! agent (core) types, exactly as described in the paper (§II-D).

use crate::codec::{Dec, Enc};
use crate::flit::{DeliveredPacket, Packet};
use crate::ids::{Cycle, NodeId, PacketId};
use rand_chacha::ChaCha12Rng;

/// The per-cycle interface an agent uses to talk to the network.
pub trait NodeIo {
    /// The node this agent is attached to.
    fn node(&self) -> NodeId;

    /// The current cycle (the tile's local clock).
    fn cycle(&self) -> Cycle;

    /// Allocates a fresh, simulation-unique packet identifier.
    fn alloc_packet_id(&mut self) -> PacketId;

    /// Queues a packet for injection into the network. Injection is subject to
    /// backpressure; the packet may enter the network several cycles later.
    fn send(&mut self, packet: Packet);

    /// Takes the next packet delivered to this node, if any.
    fn try_recv(&mut self) -> Option<DeliveredPacket>;

    /// Peeks at the next delivered packet without consuming it.
    fn peek_recv(&self) -> Option<&DeliveredPacket>;

    /// Number of packets queued at the injector and not yet fully in the
    /// network (backpressure signal).
    fn injection_backlog(&self) -> usize;

    /// Number of delivered packets waiting to be received.
    fn recv_backlog(&self) -> usize;
}

/// A traffic-producing or -consuming entity attached to one tile.
///
/// Agents are stepped once per simulated cycle by the tile that owns them; the
/// tile also owns a private PRNG which is passed in so that simulations remain
/// reproducible under any thread mapping.
pub trait NodeAgent: Send {
    /// Advances the agent by one cycle. The agent may inspect delivered
    /// packets and queue new ones through `io`.
    fn tick(&mut self, io: &mut dyn NodeIo, rng: &mut ChaCha12Rng);

    /// The next cycle at which this agent will want to inject traffic or do
    /// work, if it is currently idle. Used for fast-forwarding: when every
    /// agent and every router in the system is idle, the engine advances the
    /// clock to the earliest `next_event` across all tiles.
    ///
    /// `None` means the agent has no future work of its own (it may still
    /// react to packets delivered to it).
    fn next_event(&self, now: Cycle) -> Option<Cycle>;

    /// True once the agent has completed its workload. A simulation driven by
    /// `run_to_completion` ends when every agent is finished and the network
    /// has drained.
    fn finished(&self) -> bool;

    /// A short human-readable label for reports.
    fn label(&self) -> &str {
        "agent"
    }

    /// Serializes the agent's state into a checkpoint. The default writes
    /// nothing, which is correct only for stateless agents; every agent
    /// carrying workload state (counters, protocol machines, queues) must
    /// override both this and [`restore`](Self::restore) or a restored run
    /// will diverge from an uninterrupted one.
    fn snapshot(&self, e: &mut Enc) {
        let _ = e;
    }

    /// Restores the state written by [`snapshot`](Self::snapshot). The tile
    /// frames each agent's bytes, so an agent only ever sees its own record.
    fn restore(&mut self, d: &mut Dec) -> std::io::Result<()> {
        let _ = d;
        Ok(())
    }
}

/// A no-op agent: consumes delivered packets and never injects. Useful as the
/// sink on nodes that only receive traffic.
#[derive(Debug, Default, Clone)]
pub struct SinkAgent {
    received: u64,
}

impl SinkAgent {
    /// Creates a sink agent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of packets this sink has consumed.
    pub fn received(&self) -> u64 {
        self.received
    }
}

impl NodeAgent for SinkAgent {
    fn tick(&mut self, io: &mut dyn NodeIo, _rng: &mut ChaCha12Rng) {
        while io.try_recv().is_some() {
            self.received += 1;
        }
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn finished(&self) -> bool {
        true
    }

    fn label(&self) -> &str {
        "sink"
    }

    fn snapshot(&self, e: &mut Enc) {
        e.u64(self.received);
    }

    fn restore(&mut self, d: &mut Dec) -> std::io::Result<()> {
        self.received = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Payload;
    use crate::ids::FlowId;
    use rand::SeedableRng;
    use std::collections::VecDeque;

    /// Minimal in-memory NodeIo for unit-testing agents without a network.
    #[derive(Debug, Default)]
    pub struct MockIo {
        pub node: u32,
        pub cycle: Cycle,
        pub sent: Vec<Packet>,
        pub inbox: VecDeque<DeliveredPacket>,
        next_id: u64,
    }

    impl NodeIo for MockIo {
        fn node(&self) -> NodeId {
            NodeId::new(self.node)
        }
        fn cycle(&self) -> Cycle {
            self.cycle
        }
        fn alloc_packet_id(&mut self) -> PacketId {
            self.next_id += 1;
            PacketId::new(self.next_id)
        }
        fn send(&mut self, packet: Packet) {
            self.sent.push(packet);
        }
        fn try_recv(&mut self) -> Option<DeliveredPacket> {
            self.inbox.pop_front()
        }
        fn peek_recv(&self) -> Option<&DeliveredPacket> {
            self.inbox.front()
        }
        fn injection_backlog(&self) -> usize {
            0
        }
        fn recv_backlog(&self) -> usize {
            self.inbox.len()
        }
    }

    fn delivered(id: u64) -> DeliveredPacket {
        let p = Packet::new(
            PacketId::new(id),
            FlowId::new(0),
            NodeId::new(1),
            NodeId::new(0),
            1,
            0,
        )
        .with_payload(Payload::empty());
        DeliveredPacket {
            packet: p,
            delivered_at: 10,
            head_latency: 5,
            tail_latency: 5,
            hops: 2,
        }
    }

    #[test]
    fn sink_agent_consumes_everything() {
        let mut sink = SinkAgent::new();
        let mut io = MockIo::default();
        io.inbox.push_back(delivered(1));
        io.inbox.push_back(delivered(2));
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        sink.tick(&mut io, &mut rng);
        assert_eq!(sink.received(), 2);
        assert_eq!(io.recv_backlog(), 0);
        assert!(sink.finished());
        assert_eq!(sink.next_event(0), None);
        assert_eq!(sink.label(), "sink");
    }
}
