//! The hand-rolled little-endian wire codec.
//!
//! Everything that crosses a process boundary or lands in a checkpoint —
//! flits and credits on the data plane, specs, ledgers and directives on the
//! control plane, and the per-shard state snapshots — is encoded with this
//! explicit codec and framed with a `u32` length prefix. The encoding is
//! deliberately hand-rolled: the build image has no serialization crates,
//! and a fixed, versioned byte layout is exactly what a cross-machine
//! protocol (and an on-disk checkpoint) wants anyway.
//!
//! The module lives in `hornet-net` (rather than `hornet-dist`, where it
//! started) so the per-crate snapshot implementations in `hornet-net`,
//! `hornet-mem`, `hornet-cpu` and `hornet-traffic` can serialize through it
//! without depending on the distributed backend; `hornet-dist` re-exports it
//! as `wire`.

use crate::boundary::CreditMsg;
use crate::flit::{Flit, FlitKind, FlitStats, Packet, Payload};
use crate::ids::{FlowId, NodeId, PacketId};
use crate::stats::{FlowRecord, NetworkStats, RouterActivity};
use std::io::{self, Read, Write};

/// Size of one encoded flit, in bytes (fixed: flits are also stored in
/// fixed-slot shared-memory rings).
pub const FLIT_WIRE_BYTES: usize = 79;

/// Size of one encoded credit message, in bytes.
pub const CREDIT_WIRE_BYTES: usize = 12;

/// A growing little-endian encode buffer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes, borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Raw bytes with a length prefix.
    pub fn blob(&mut self, b: &[u8]) -> &mut Self {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
        self
    }
}

/// A little-endian decode cursor.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn short() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "truncated wire message")
}

impl<'a> Dec<'a> {
    /// Starts decoding `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(short());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid UTF-8"))
    }

    pub fn blob(&mut self) -> io::Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame (up to a 64 MiB sanity bound).
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > 64 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Encodes a flit into exactly [`FLIT_WIRE_BYTES`] bytes.
pub fn encode_flit(e: &mut Enc, f: &Flit) {
    let before = e.buf.len();
    e.u64(f.packet.raw());
    e.u64(f.flow.base());
    e.u8(f.flow.phase());
    e.u64(f.original_flow.base());
    e.u8(f.original_flow.phase());
    e.u8(match f.kind {
        FlitKind::Head => 0,
        FlitKind::Body => 1,
        FlitKind::Tail => 2,
        FlitKind::HeadTail => 3,
    });
    e.u32(f.seq);
    e.u32(f.packet_len);
    e.u32(f.dst.raw());
    e.u32(f.src.raw());
    e.u64(f.visible_at);
    e.u64(f.stats.injected_at);
    e.u64(f.stats.arrived_at_current);
    e.u64(f.stats.accumulated_latency);
    e.u32(f.stats.hops);
    debug_assert_eq!(e.buf.len() - before, FLIT_WIRE_BYTES);
}

/// Decodes a flit written by [`encode_flit`].
pub fn decode_flit(d: &mut Dec) -> io::Result<Flit> {
    Ok(Flit {
        packet: PacketId::new(d.u64()?),
        flow: FlowId::new(d.u64()?).with_phase(d.u8()?),
        original_flow: FlowId::new(d.u64()?).with_phase(d.u8()?),
        kind: match d.u8()? {
            0 => FlitKind::Head,
            1 => FlitKind::Body,
            2 => FlitKind::Tail,
            3 => FlitKind::HeadTail,
            k => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad flit kind {k}"),
                ))
            }
        },
        seq: d.u32()?,
        packet_len: d.u32()?,
        dst: NodeId::new(d.u32()?),
        src: NodeId::new(d.u32()?),
        visible_at: d.u64()?,
        stats: FlitStats {
            injected_at: d.u64()?,
            arrived_at_current: d.u64()?,
            accumulated_latency: d.u64()?,
            hops: d.u32()?,
        },
    })
}

/// Encodes a full packet (identity, flow, framing and payload words) — the
/// record that follows a packet's tail flit across a process boundary so the
/// destination bridge can claim the payload (the DMA side of the flit model).
pub fn encode_packet(e: &mut Enc, p: &Packet) {
    e.u64(p.id.raw());
    e.u64(p.flow.base());
    e.u8(p.flow.phase());
    e.u32(p.src.raw());
    e.u32(p.dst.raw());
    e.u32(p.len_flits);
    e.u64(p.created_at);
    e.u64(p.injected_at);
    e.u32(p.payload.len() as u32);
    for w in p.payload.words() {
        e.u64(*w);
    }
}

/// Decodes a packet written by [`encode_packet`].
pub fn decode_packet(d: &mut Dec) -> io::Result<Packet> {
    let id = PacketId::new(d.u64()?);
    let flow = FlowId::new(d.u64()?).with_phase(d.u8()?);
    let src = NodeId::new(d.u32()?);
    let dst = NodeId::new(d.u32()?);
    let len_flits = d.u32()?;
    if len_flits == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-length packet on the wire",
        ));
    }
    let created_at = d.u64()?;
    let injected_at = d.u64()?;
    let words = d.u32()?;
    if d.remaining() < words as usize * 8 {
        return Err(short());
    }
    let payload = Payload((0..words).map(|_| d.u64()).collect::<io::Result<_>>()?);
    let mut p = Packet::new(id, flow, src, dst, len_flits, created_at);
    p.injected_at = injected_at;
    p.payload = payload;
    Ok(p)
}

/// Encodes a flow id as base + phase. `FlowId::new` masks the phase bits out
/// of a raw value, so the two components must travel separately.
pub fn encode_flow(e: &mut Enc, f: FlowId) {
    e.u64(f.base());
    e.u8(f.phase());
}

/// Decodes a flow id written by [`encode_flow`].
pub fn decode_flow(d: &mut Dec) -> io::Result<FlowId> {
    Ok(FlowId::new(d.u64()?).with_phase(d.u8()?))
}

/// Encodes a credit message into exactly [`CREDIT_WIRE_BYTES`] bytes.
pub fn encode_credit(e: &mut Enc, c: &CreditMsg) {
    e.u64(c.cycle);
    e.u32(c.count);
}

/// Decodes a credit message written by [`encode_credit`].
pub fn decode_credit(d: &mut Dec) -> io::Result<CreditMsg> {
    Ok(CreditMsg {
        cycle: d.u64()?,
        count: d.u32()?,
    })
}

/// Encodes a full per-shard statistics record (including the per-flow map
/// and the latency histogram, so bit-identity can be asserted end to end).
pub fn encode_stats(e: &mut Enc, s: &NetworkStats) {
    e.u64(s.offered_packets);
    e.u64(s.injected_packets);
    e.u64(s.injected_flits);
    e.u64(s.delivered_packets);
    e.u64(s.delivered_flits);
    e.u64(s.total_flit_latency);
    e.u64(s.total_packet_latency);
    e.u64(s.total_head_latency);
    e.u64(s.total_hops);
    e.u64(s.routing_failures);
    e.u64(s.activity.buffer_writes);
    e.u64(s.activity.buffer_reads);
    e.u64(s.activity.crossbar_transits);
    e.u64(s.activity.link_flits);
    e.u64(s.activity.arbitrations);
    e.u64(s.simulated_cycles);
    e.u64(s.fast_forwarded_cycles);
    e.u64(s.busy_cycles);
    e.u64(s.last_cycle);
    // Per-flow records, sorted by flow id so the encoding is canonical.
    let mut flows: Vec<(&u64, &FlowRecord)> = s.per_flow.iter().collect();
    flows.sort_by_key(|(id, _)| **id);
    e.u32(flows.len() as u32);
    for (id, rec) in flows {
        e.u64(*id);
        e.u64(rec.packets);
        e.u64(rec.flits);
        e.u64(rec.total_packet_latency);
    }
    e.u32(s.latency_histogram.len() as u32);
    for b in &s.latency_histogram {
        e.u64(*b);
    }
}

/// Decodes a statistics record written by [`encode_stats`].
pub fn decode_stats(d: &mut Dec) -> io::Result<NetworkStats> {
    let mut s = NetworkStats {
        offered_packets: d.u64()?,
        injected_packets: d.u64()?,
        injected_flits: d.u64()?,
        delivered_packets: d.u64()?,
        delivered_flits: d.u64()?,
        total_flit_latency: d.u64()?,
        total_packet_latency: d.u64()?,
        total_head_latency: d.u64()?,
        total_hops: d.u64()?,
        routing_failures: d.u64()?,
        activity: RouterActivity {
            buffer_writes: d.u64()?,
            buffer_reads: d.u64()?,
            crossbar_transits: d.u64()?,
            link_flits: d.u64()?,
            arbitrations: d.u64()?,
        },
        simulated_cycles: d.u64()?,
        fast_forwarded_cycles: d.u64()?,
        busy_cycles: d.u64()?,
        last_cycle: d.u64()?,
        ..NetworkStats::new()
    };
    let flows = d.u32()?;
    for _ in 0..flows {
        let id = d.u64()?;
        let rec = FlowRecord {
            packets: d.u64()?,
            flits: d.u64()?,
            total_packet_latency: d.u64()?,
        };
        s.per_flow.insert(id, rec);
    }
    let buckets = d.u32()?;
    s.latency_histogram = (0..buckets).map(|_| d.u64()).collect::<io::Result<_>>()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit() -> Flit {
        Flit {
            packet: PacketId::new(42),
            flow: FlowId::new(7).with_phase(1),
            original_flow: FlowId::new(7),
            kind: FlitKind::Tail,
            seq: 3,
            packet_len: 4,
            dst: NodeId::new(11),
            src: NodeId::new(2),
            visible_at: 1_000_003,
            stats: FlitStats {
                injected_at: 999_000,
                arrived_at_current: 1_000_000,
                accumulated_latency: 17,
                hops: 5,
            },
        }
    }

    #[test]
    fn flit_round_trips() {
        let mut e = Enc::new();
        encode_flit(&mut e, &flit());
        assert_eq!(e.bytes().len(), FLIT_WIRE_BYTES);
        let mut d = Dec::new(e.bytes());
        assert_eq!(decode_flit(&mut d).unwrap(), flit());
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn packet_round_trips_with_payload() {
        let mut p = Packet::new(
            PacketId::new(77),
            FlowId::new(3).with_phase(2),
            NodeId::new(4),
            NodeId::new(9),
            8,
            1_000,
        );
        p.injected_at = 1_004;
        p.payload = Payload::from_words(&[1, u64::MAX, 0xdead_beef]);
        let mut e = Enc::new();
        encode_packet(&mut e, &p);
        let back = decode_packet(&mut Dec::new(e.bytes())).unwrap();
        assert_eq!(back, p);

        let empty = Packet::new(
            PacketId::new(1),
            FlowId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            2,
            0,
        );
        let mut e = Enc::new();
        encode_packet(&mut e, &empty);
        assert_eq!(decode_packet(&mut Dec::new(e.bytes())).unwrap(), empty);
    }

    #[test]
    fn credit_round_trips() {
        let c = CreditMsg {
            cycle: 123_456,
            count: 9,
        };
        let mut e = Enc::new();
        encode_credit(&mut e, &c);
        assert_eq!(e.bytes().len(), CREDIT_WIRE_BYTES);
        assert_eq!(decode_credit(&mut Dec::new(e.bytes())).unwrap(), c);
    }

    #[test]
    fn stats_round_trip_preserves_histogram_and_flows() {
        let mut s = NetworkStats::new();
        s.record_delivery(FlowId::new(3), 8, 10, 20, 4);
        s.record_delivery(FlowId::new(9), 8, 12, 300, 6);
        s.injected_flits = 16;
        s.busy_cycles = 77;
        s.simulated_cycles = 1_000;
        let mut e = Enc::new();
        encode_stats(&mut e, &s);
        let back = decode_stats(&mut Dec::new(e.bytes())).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 300]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![7u8; 300]);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut e = Enc::new();
        encode_flit(&mut e, &flit());
        let cut = &e.bytes()[..20];
        assert!(decode_flit(&mut Dec::new(cut)).is_err());
    }
}
