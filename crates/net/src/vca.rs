//! Virtual-channel allocation (VCA).
//!
//! Like routing, VC allocation is table-driven: a lookup is addressed by the
//! four-tuple `⟨prev node, flow, next node, next flow⟩` and returns a weighted
//! set of candidate next-hop VCs. On top of the table mechanism, HORNET also
//! supports allocation schemes whose choice depends on the *contents* of the
//! candidate VCs (EDVCA, FAA); those are expressed here as state-dependent
//! policies evaluated against a snapshot of the downstream VC state.

use crate::ids::{FlowId, NodeId, VcId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The VC-allocation schemes available out of the box (paper §II-A3).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcAllocKind {
    /// Dynamic VCA: any free VC, chosen uniformly at random.
    Dynamic,
    /// Static set VCA: the VC is a fixed function of the flow identifier.
    StaticSet,
    /// Phase-separated dynamic VCA: the VC set is partitioned by routing phase
    /// (used to keep O1TURN / Valiant / ROMM deadlock-free), dynamic within
    /// each partition.
    Phased,
    /// EDVCA: exclusive dynamic VCA — a flow owns at most one VC per link at a
    /// time, guaranteeing in-order delivery.
    Edvca,
    /// FAA: flow-aware allocation — prefer a VC already carrying the flow,
    /// otherwise the emptiest free VC.
    Faa,
    /// Explicit user-provided table.
    Table,
}

impl VcAllocKind {
    /// Short label used in reports and figure legends.
    pub fn label(self) -> &'static str {
        match self {
            VcAllocKind::Dynamic => "dynamic",
            VcAllocKind::StaticSet => "static-set",
            VcAllocKind::Phased => "phased",
            VcAllocKind::Edvca => "edvca",
            VcAllocKind::Faa => "faa",
            VcAllocKind::Table => "table",
        }
    }
}

impl std::fmt::Display for VcAllocKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A VCA table key: `⟨prev node, flow, next node, next flow⟩`.
type VcaKey = (NodeId, FlowId, NodeId, FlowId);

/// An explicit VCA table: `⟨prev, flow, next, next flow⟩ → {(vc, weight)}`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VcaTable {
    entries: HashMap<VcaKey, Vec<(VcId, f64)>>,
}

impl VcaTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a candidate VC with a weight to an entry.
    pub fn add(
        &mut self,
        prev: NodeId,
        flow: FlowId,
        next: NodeId,
        next_flow: FlowId,
        vc: VcId,
        weight: f64,
    ) {
        self.entries
            .entry((prev, flow, next, next_flow))
            .or_default()
            .push((vc, weight));
    }

    /// Looks up the weighted candidate set for a four-tuple.
    pub fn lookup(
        &self,
        prev: NodeId,
        flow: FlowId,
        next: NodeId,
        next_flow: FlowId,
    ) -> &[(VcId, f64)] {
        self.entries
            .get(&(prev, flow, next, next_flow))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Snapshot of one downstream (next-hop) VC as seen by the allocating router.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DownstreamVc {
    /// The VC index.
    pub vc: VcId,
    /// True if no packet currently holds this VC (a new packet may be
    /// allocated to it).
    pub free_for_allocation: bool,
    /// Flits currently buffered in the downstream VC.
    pub occupancy: usize,
    /// Capacity of the downstream VC buffer in flits.
    pub capacity: usize,
    /// Flow whose packets currently occupy (or were last allocated to) the
    /// VC, if any — the state EDVCA and FAA consult.
    pub resident_flow: Option<FlowId>,
}

/// A VC-allocation request for one packet.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct VcaRequest {
    /// Node the packet arrived from (this node for local injection).
    pub prev: NodeId,
    /// Flow the packet currently carries.
    pub flow: FlowId,
    /// Next-hop node chosen by route computation.
    pub next: NodeId,
    /// Flow the packet will carry on the next hop.
    pub next_flow: FlowId,
}

/// The per-node VC-allocation policy consulted in the router's VA stage.
#[derive(Clone, Debug)]
pub enum VcaPolicy {
    /// Any free VC, uniformly.
    Dynamic,
    /// VC = hash(flow) mod VC count.
    StaticSet,
    /// VC set partitioned by routing phase; dynamic within the partition.
    Phased {
        /// Number of routing phases to separate (2 for O1TURN/ROMM/Valiant).
        phases: u8,
    },
    /// Exclusive dynamic VCA.
    Edvca,
    /// Flow-aware allocation.
    Faa,
    /// Explicit table; falls back to dynamic when a tuple has no entry.
    Table(Arc<VcaTable>),
}

impl VcaPolicy {
    /// Builds the default policy for a kind.
    pub fn from_kind(kind: VcAllocKind) -> Self {
        match kind {
            VcAllocKind::Dynamic => VcaPolicy::Dynamic,
            VcAllocKind::StaticSet => VcaPolicy::StaticSet,
            VcAllocKind::Phased => VcaPolicy::Phased { phases: 2 },
            VcAllocKind::Edvca => VcaPolicy::Edvca,
            VcAllocKind::Faa => VcaPolicy::Faa,
            VcAllocKind::Table => VcaPolicy::Table(Arc::new(VcaTable::new())),
        }
    }

    /// Returns the weighted candidate VCs for a request, given the snapshot of
    /// the downstream VC state. An empty result means the packet must wait in
    /// the VA stage this cycle.
    ///
    /// Candidates are always restricted to VCs that are free for allocation
    /// (wormhole flow control allocates a VC to one packet at a time), except
    /// for EDVCA/FAA preference rules which additionally require flow
    /// residence conditions.
    pub fn candidates(&self, req: &VcaRequest, downstream: &[DownstreamVc]) -> Vec<(VcId, f64)> {
        let mut out = Vec::new();
        self.candidates_into(req, downstream, &mut out);
        out
    }

    /// Allocation-free variant of [`candidates`](Self::candidates): clears
    /// `out` and fills it with the weighted candidate VCs, in the same order
    /// [`candidates`](Self::candidates) returns them. The router's VA stage
    /// calls this with a reusable scratch vector so the steady-state hot path
    /// never touches the heap.
    pub fn candidates_into(
        &self,
        req: &VcaRequest,
        downstream: &[DownstreamVc],
        out: &mut Vec<(VcId, f64)>,
    ) {
        out.clear();
        let push_free = |out: &mut Vec<(VcId, f64)>| {
            for d in downstream.iter().filter(|d| d.free_for_allocation) {
                out.push((d.vc, 1.0));
            }
        };
        match self {
            VcaPolicy::Dynamic => push_free(out),
            VcaPolicy::StaticSet => {
                if downstream.is_empty() {
                    return;
                }
                let idx = (req.next_flow.base() % downstream.len() as u64) as usize;
                let d = &downstream[idx];
                if d.free_for_allocation {
                    out.push((d.vc, 1.0));
                }
            }
            VcaPolicy::Phased { phases } => {
                let phases = (*phases).max(1) as usize;
                let per_set = (downstream.len() / phases).max(1);
                let phase = (req.flow.phase() as usize).min(phases - 1);
                let lo = phase * per_set;
                let hi = if phase == phases - 1 {
                    downstream.len()
                } else {
                    lo + per_set
                };
                for d in downstream
                    .iter()
                    .skip(lo)
                    .take(hi - lo)
                    .filter(|d| d.free_for_allocation)
                {
                    out.push((d.vc, 1.0));
                }
            }
            VcaPolicy::Edvca => {
                // If some VC already carries this flow, the packet must use it
                // (and only when it is free for a new packet); otherwise use a
                // VC not currently carrying any flow.
                if let Some(d) = downstream
                    .iter()
                    .find(|d| d.resident_flow == Some(req.next_flow))
                {
                    if d.free_for_allocation {
                        out.push((d.vc, 1.0));
                    }
                } else {
                    for d in downstream
                        .iter()
                        .filter(|d| d.free_for_allocation && d.resident_flow.is_none())
                    {
                        out.push((d.vc, 1.0));
                    }
                }
            }
            VcaPolicy::Faa => {
                // Prefer a VC already carrying this flow; otherwise weight free
                // VCs by available space so the emptiest is most likely.
                for d in downstream
                    .iter()
                    .filter(|d| d.free_for_allocation && d.resident_flow == Some(req.next_flow))
                {
                    out.push((d.vc, 1.0));
                }
                if !out.is_empty() {
                    return;
                }
                for d in downstream.iter().filter(|d| d.free_for_allocation) {
                    out.push((
                        d.vc,
                        1.0 + (d.capacity - d.occupancy.min(d.capacity)) as f64,
                    ));
                }
            }
            VcaPolicy::Table(table) => {
                let entry = table.lookup(req.prev, req.flow, req.next, req.next_flow);
                if entry.is_empty() {
                    push_free(out);
                    return;
                }
                for cand in entry.iter().filter(|(vc, _)| {
                    downstream
                        .iter()
                        .any(|d| d.vc == *vc && d.free_for_allocation)
                }) {
                    out.push(*cand);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(i: u16) -> VcId {
        VcId::new(i)
    }
    fn req(flow: u64) -> VcaRequest {
        VcaRequest {
            prev: NodeId::new(0),
            flow: FlowId::new(flow),
            next: NodeId::new(1),
            next_flow: FlowId::new(flow),
        }
    }
    fn downstream(n: usize) -> Vec<DownstreamVc> {
        (0..n)
            .map(|i| DownstreamVc {
                vc: vc(i as u16),
                free_for_allocation: true,
                occupancy: 0,
                capacity: 4,
                resident_flow: None,
            })
            .collect()
    }

    #[test]
    fn dynamic_offers_all_free_vcs() {
        let pol = VcaPolicy::Dynamic;
        let mut ds = downstream(4);
        assert_eq!(pol.candidates(&req(1), &ds).len(), 4);
        ds[1].free_for_allocation = false;
        ds[3].free_for_allocation = false;
        let c = pol.candidates(&req(1), &ds);
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|(v, _)| *v == vc(0) || *v == vc(2)));
    }

    #[test]
    fn static_set_is_a_function_of_the_flow() {
        let pol = VcaPolicy::StaticSet;
        let ds = downstream(4);
        let c1 = pol.candidates(&req(5), &ds);
        let c2 = pol.candidates(&req(5), &ds);
        let c3 = pol.candidates(&req(6), &ds);
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), 1);
        assert_ne!(c1[0].0, c3[0].0);
    }

    #[test]
    fn phased_partitions_the_vc_range() {
        let pol = VcaPolicy::Phased { phases: 2 };
        let ds = downstream(4);
        let phase0 = pol.candidates(&req(9), &ds);
        let mut r1 = req(9);
        r1.flow = r1.flow.with_phase(1);
        let phase1 = pol.candidates(&r1, &ds);
        assert_eq!(phase0.len(), 2);
        assert_eq!(phase1.len(), 2);
        assert!(phase0.iter().all(|(v, _)| v.index() < 2));
        assert!(phase1.iter().all(|(v, _)| v.index() >= 2));
    }

    #[test]
    fn edvca_reuses_the_vc_already_carrying_the_flow() {
        let pol = VcaPolicy::Edvca;
        let mut ds = downstream(4);
        ds[2].resident_flow = Some(FlowId::new(7));
        let c = pol.candidates(&req(7), &ds);
        assert_eq!(c, vec![(vc(2), 1.0)]);
        // If that VC is busy with an in-flight packet, the flow must wait.
        ds[2].free_for_allocation = false;
        assert!(pol.candidates(&req(7), &ds).is_empty());
        // A different flow avoids VCs carrying other flows.
        let c2 = pol.candidates(&req(8), &ds);
        assert_eq!(c2.len(), 3);
        assert!(c2.iter().all(|(v, _)| *v != vc(2)));
    }

    #[test]
    fn faa_prefers_emptier_vcs() {
        let pol = VcaPolicy::Faa;
        let mut ds = downstream(2);
        ds[0].occupancy = 3;
        ds[1].occupancy = 0;
        let c = pol.candidates(&req(1), &ds);
        let w0 = c.iter().find(|(v, _)| *v == vc(0)).unwrap().1;
        let w1 = c.iter().find(|(v, _)| *v == vc(1)).unwrap().1;
        assert!(w1 > w0);
    }

    #[test]
    fn table_policy_restricts_to_listed_vcs() {
        let mut table = VcaTable::new();
        let r = req(3);
        table.add(r.prev, r.flow, r.next, r.next_flow, vc(1), 1.0);
        let pol = VcaPolicy::Table(Arc::new(table));
        let ds = downstream(4);
        let c = pol.candidates(&r, &ds);
        assert_eq!(c, vec![(vc(1), 1.0)]);
        // Unlisted tuples fall back to dynamic.
        let c2 = pol.candidates(&req(99), &ds);
        assert_eq!(c2.len(), 4);
    }

    #[test]
    fn empty_downstream_yields_no_candidates() {
        for kind in [
            VcAllocKind::Dynamic,
            VcAllocKind::StaticSet,
            VcAllocKind::Edvca,
            VcAllocKind::Faa,
        ] {
            let pol = VcaPolicy::from_kind(kind);
            assert!(pol.candidates(&req(1), &[]).is_empty(), "{kind:?}");
        }
    }
}
