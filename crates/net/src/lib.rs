//! # hornet-net
//!
//! The network substrate of HORNET-RS: a cycle-level model of an
//! ingress-queued virtual-channel wormhole router network-on-chip, as
//! described in *"Scalable, accurate multicore simulation in the 1000-core
//! era"* (Lis et al., ISPASS 2011).
//!
//! The crate provides:
//!
//! * [`geometry`] — interconnect geometries (meshes, tori, rings, multi-layer
//!   meshes, custom connection lists);
//! * [`routing`] — table-driven oblivious/static routing (XY, YX, O1TURN,
//!   Valiant, ROMM, PROM, load-balanced static) and minimal adaptive routing;
//! * [`vca`] — virtual-channel allocation (dynamic, static-set,
//!   phase-separated, EDVCA, FAA, explicit tables);
//! * [`router`] — the RC/VA/SA/ST router pipeline with randomized arbitration;
//! * [`vcbuf`] — the dual-lock ingress VC buffer shared between tiles;
//! * [`boundary`] — lock-free SPSC flit/credit mailboxes for links cut
//!   between two shards of a partitioned parallel simulation;
//! * [`link`] — bandwidth-adaptive bidirectional links;
//! * [`bridge`] / [`agent`] — the packet-level interface between routers and
//!   attached cores, injectors and memory controllers;
//! * [`network`] — assembly plus a single-threaded reference simulator;
//! * [`ideal`] — the congestion-oblivious baseline network model;
//! * [`stats`] — per-tile statistics that travel with the flits.
//!
//! # Example
//!
//! ```
//! use hornet_net::config::NetworkConfig;
//! use hornet_net::geometry::Geometry;
//! use hornet_net::network::Network;
//! use hornet_net::routing::{FlowSpec, RoutingKind};
//! use hornet_net::ids::NodeId;
//!
//! let flows = vec![FlowSpec::pair(NodeId::new(0), NodeId::new(8), 9)];
//! let config = NetworkConfig::new(Geometry::mesh2d(3, 3))
//!     .with_routing(RoutingKind::Xy)
//!     .with_flows(flows);
//! let network = Network::new(&config, 42).expect("valid configuration");
//! assert_eq!(network.node_count(), 9);
//! ```

pub mod agent;
pub mod boundary;
pub mod bridge;
pub mod codec;
pub mod config;
pub mod flit;
pub mod geometry;
pub mod ideal;
pub mod ids;
pub mod kernel;
pub mod link;
pub mod network;
pub mod payload;
pub mod router;
pub mod routing;
pub mod spsc;
pub mod stats;
pub mod vca;
pub mod vcbuf;

pub use agent::{NodeAgent, NodeIo};
pub use config::NetworkConfig;
pub use flit::{DeliveredPacket, Flit, Packet};
pub use geometry::Geometry;
pub use ids::{Cycle, FlowId, NodeId, PacketId, PortId, VcId};
pub use kernel::{KernelMode, MeshKernel, StageTimes};
pub use network::{Network, NetworkNode};
pub use routing::{FlowSpec, RoutingKind};
pub use stats::NetworkStats;
pub use vca::VcAllocKind;
