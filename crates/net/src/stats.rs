//! Statistics collection.
//!
//! Each tile keeps its own private statistics structure (no sharing between
//! threads); most measurements travel inside the flits themselves (see
//! [`FlitStats`](crate::flit::FlitStats)) and are folded into the per-tile
//! counters at delivery time. A final `merge` across tiles produces the
//! network-wide report.

use crate::ids::{Cycle, FlowId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Event counters that also drive the dynamic power model (buffer accesses,
/// crossbar transits, link traversals, arbitration operations).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterActivity {
    /// Flits written into a VC buffer.
    pub buffer_writes: u64,
    /// Flits read out of a VC buffer.
    pub buffer_reads: u64,
    /// Flits that crossed the crossbar.
    pub crossbar_transits: u64,
    /// Flits that traversed an inter-router link.
    pub link_flits: u64,
    /// Switch/VC arbitration operations performed.
    pub arbitrations: u64,
}

impl RouterActivity {
    /// Adds another activity record into this one.
    pub fn merge(&mut self, other: &RouterActivity) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.crossbar_transits += other.crossbar_transits;
        self.link_flits += other.link_flits;
        self.arbitrations += other.arbitrations;
    }
}

/// Per-flow delivery record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Packets delivered for this flow.
    pub packets: u64,
    /// Flits delivered for this flow.
    pub flits: u64,
    /// Sum of per-packet (tail-flit) latencies.
    pub total_packet_latency: u64,
}

/// Statistics kept by one tile (router + attached agents).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Packets offered by traffic generators.
    pub offered_packets: u64,
    /// Packets whose first flit entered a router ingress buffer.
    pub injected_packets: u64,
    /// Flits injected into the network.
    pub injected_flits: u64,
    /// Packets fully delivered (tail flit ejected).
    pub delivered_packets: u64,
    /// Flits delivered.
    pub delivered_flits: u64,
    /// Sum of in-network latencies over delivered flits.
    pub total_flit_latency: u64,
    /// Sum of in-network latencies over delivered packets (tail flit).
    pub total_packet_latency: u64,
    /// Sum of head-flit latencies over delivered packets.
    pub total_head_latency: u64,
    /// Sum of hop counts over delivered packets.
    pub total_hops: u64,
    /// Packets dropped because no routing-table entry matched.
    pub routing_failures: u64,
    /// Router activity counters (drive the power model).
    pub activity: RouterActivity,
    /// Number of cycles this tile actually simulated (excludes fast-forwarded
    /// cycles).
    pub simulated_cycles: u64,
    /// Number of cycles skipped by fast-forwarding.
    pub fast_forwarded_cycles: u64,
    /// Cycles in which at least one flit was buffered in this router.
    /// Sampled from the router's O(1) aggregate occupancy counter at each
    /// positive edge (not by scanning the VC buffers).
    pub busy_cycles: u64,
    /// Per-flow delivery records.
    pub per_flow: HashMap<u64, FlowRecord>,
    /// Log₂-bucketed packet-latency histogram: bucket `i` counts delivered
    /// packets whose tail-flit latency `l` satisfies `2^i ≤ l < 2^(i+1)`
    /// (bucket 0 also counts `l = 0`). Bit-identical parallel runs must
    /// reproduce this histogram exactly, which makes it the cheapest strong
    /// fingerprint of the full latency distribution.
    pub latency_histogram: Vec<u64>,
    /// Highest cycle this tile has simulated.
    pub last_cycle: Cycle,
}

/// Number of log₂ latency buckets (covers latencies up to 2^31 cycles).
pub const LATENCY_BUCKETS: usize = 32;

/// The histogram bucket for a packet latency.
fn latency_bucket(latency: u64) -> usize {
    ((64 - latency.max(1).leading_zeros() as usize) - 1).min(LATENCY_BUCKETS - 1)
}

impl NetworkStats {
    /// Creates an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the delivery of a packet whose tail flit had the given
    /// accumulated latency, head latency, hop count and flit count.
    ///
    /// Flit-level counters (`delivered_flits`, `total_flit_latency`) are *not*
    /// touched here — the router updates them as each flit leaves the network,
    /// so that packet reassembly and flit accounting stay independent.
    pub fn record_delivery(
        &mut self,
        flow: FlowId,
        flits: u64,
        head_latency: u64,
        tail_latency: u64,
        hops: u32,
    ) {
        self.delivered_packets += 1;
        self.total_packet_latency += tail_latency;
        self.total_head_latency += head_latency;
        self.total_hops += hops as u64;
        if self.latency_histogram.is_empty() {
            self.latency_histogram = vec![0; LATENCY_BUCKETS];
        }
        self.latency_histogram[latency_bucket(tail_latency)] += 1;
        let rec = self.per_flow.entry(flow.base()).or_default();
        rec.packets += 1;
        rec.flits += flits;
        rec.total_packet_latency += tail_latency;
    }

    /// Average in-network packet latency (tail flit), in cycles.
    pub fn avg_packet_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.total_packet_latency as f64 / self.delivered_packets as f64
        }
    }

    /// Average in-network flit latency, in cycles.
    pub fn avg_flit_latency(&self) -> f64 {
        if self.delivered_flits == 0 {
            0.0
        } else {
            self.total_flit_latency as f64 / self.delivered_flits as f64
        }
    }

    /// Average hop count of delivered packets.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered_packets as f64
        }
    }

    /// Delivered-packet throughput in packets per simulated cycle.
    pub fn throughput(&self) -> f64 {
        if self.last_cycle == 0 {
            0.0
        } else {
            self.delivered_packets as f64 / self.last_cycle as f64
        }
    }

    /// Merges another tile's statistics into this one (cycle counters take the
    /// maximum; everything else sums).
    pub fn merge(&mut self, other: &NetworkStats) {
        self.offered_packets += other.offered_packets;
        self.injected_packets += other.injected_packets;
        self.injected_flits += other.injected_flits;
        self.delivered_packets += other.delivered_packets;
        self.delivered_flits += other.delivered_flits;
        self.total_flit_latency += other.total_flit_latency;
        self.total_packet_latency += other.total_packet_latency;
        self.total_head_latency += other.total_head_latency;
        self.total_hops += other.total_hops;
        self.routing_failures += other.routing_failures;
        self.activity.merge(&other.activity);
        self.simulated_cycles = self.simulated_cycles.max(other.simulated_cycles);
        self.fast_forwarded_cycles = self.fast_forwarded_cycles.max(other.fast_forwarded_cycles);
        self.busy_cycles += other.busy_cycles;
        self.last_cycle = self.last_cycle.max(other.last_cycle);
        for (flow, rec) in &other.per_flow {
            let mine = self.per_flow.entry(*flow).or_default();
            mine.packets += rec.packets;
            mine.flits += rec.flits;
            mine.total_packet_latency += rec.total_packet_latency;
        }
        if !other.latency_histogram.is_empty() {
            if self.latency_histogram.is_empty() {
                self.latency_histogram = vec![0; LATENCY_BUCKETS];
            }
            for (mine, theirs) in self
                .latency_histogram
                .iter_mut()
                .zip(&other.latency_histogram)
            {
                *mine += *theirs;
            }
        }
    }

    /// Relative difference between this record's average packet latency and a
    /// reference (used to report the accuracy of loosely-synchronized runs
    /// against the cycle-accurate baseline, as in Figure 6b).
    pub fn latency_accuracy_vs(&self, reference: &NetworkStats) -> f64 {
        let a = self.avg_packet_latency();
        let b = reference.avg_packet_latency();
        if b == 0.0 {
            return if a == 0.0 { 1.0 } else { 0.0 };
        }
        1.0 - ((a - b).abs() / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_start_at_zero() {
        let s = NetworkStats::new();
        assert_eq!(s.avg_packet_latency(), 0.0);
        assert_eq!(s.avg_flit_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
        assert_eq!(s.throughput(), 0.0);
    }

    #[test]
    fn record_delivery_updates_counters() {
        let mut s = NetworkStats::new();
        s.record_delivery(FlowId::new(3), 8, 10, 20, 4);
        s.record_delivery(FlowId::new(3), 8, 12, 40, 6);
        assert_eq!(s.delivered_packets, 2);
        assert_eq!(s.per_flow[&3].flits, 16);
        assert_eq!(s.avg_packet_latency(), 30.0);
        assert_eq!(s.avg_hops(), 5.0);
        assert_eq!(s.per_flow[&3].packets, 2);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = NetworkStats::new();
        a.record_delivery(FlowId::new(1), 4, 5, 10, 2);
        a.simulated_cycles = 100;
        a.last_cycle = 100;
        let mut b = NetworkStats::new();
        b.record_delivery(FlowId::new(2), 4, 5, 30, 2);
        b.simulated_cycles = 90;
        b.last_cycle = 120;
        a.merge(&b);
        assert_eq!(a.delivered_packets, 2);
        assert_eq!(a.avg_packet_latency(), 20.0);
        assert_eq!(a.simulated_cycles, 100);
        assert_eq!(a.last_cycle, 120);
        assert_eq!(a.per_flow.len(), 2);
    }

    #[test]
    fn accuracy_is_one_for_identical_results() {
        let mut a = NetworkStats::new();
        a.record_delivery(FlowId::new(1), 1, 1, 10, 1);
        let b = a.clone();
        assert!((a.latency_accuracy_vs(&b) - 1.0).abs() < 1e-12);
        let mut c = NetworkStats::new();
        c.record_delivery(FlowId::new(1), 1, 1, 15, 1);
        let acc = c.latency_accuracy_vs(&a);
        assert!((acc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn activity_merges() {
        let mut a = RouterActivity {
            buffer_writes: 1,
            buffer_reads: 2,
            crossbar_transits: 3,
            link_flits: 4,
            arbitrations: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.buffer_writes, 2);
        assert_eq!(a.arbitrations, 10);
    }
}
