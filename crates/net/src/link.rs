//! Inter-router links, including bandwidth-adaptive bidirectional links.
//!
//! A plain link is a pair of unidirectional channels, each carrying
//! `link_bandwidth` flits per cycle. When bidirectional links are enabled
//! (paper §II-A4), the two directions share a combined budget of
//! `2 × link_bandwidth` flits per cycle; a modeled hardware arbiter observes
//! the demand published by the two facing ports each cycle and re-divides the
//! budget accordingly, trading bandwidth in one direction for bandwidth in the
//! other.

use std::sync::atomic::{AtomicU32, Ordering};

/// Shared state of one physical link operating in bandwidth-adaptive
/// bidirectional mode.
///
/// Both endpoint routers hold an `Arc<BidirLink>`; each publishes its demand
/// (flits ready to cross in its direction) during its negative clock edge, and
/// reads back its granted bandwidth during the next positive edge. The grant
/// is a pure function of the two published demands, so both sides compute a
/// consistent allocation without further synchronization.
#[derive(Debug)]
pub struct BidirLink {
    /// Combined budget shared by the two directions, in flits per cycle.
    total_bandwidth: u32,
    /// Demand published by each direction (0 and 1).
    demand: [AtomicU32; 2],
}

impl BidirLink {
    /// Creates a bidirectional link with a combined budget of
    /// `2 × per_direction_bandwidth` flits per cycle.
    pub fn new(per_direction_bandwidth: u32) -> Self {
        Self {
            total_bandwidth: per_direction_bandwidth.max(1) * 2,
            demand: [AtomicU32::new(0), AtomicU32::new(0)],
        }
    }

    /// Total flits per cycle shared by the two directions.
    pub fn total_bandwidth(&self) -> u32 {
        self.total_bandwidth
    }

    /// Publishes the number of flits direction `dir` (0 or 1) would like to
    /// send next cycle.
    pub fn publish_demand(&self, dir: usize, flits_ready: u32) {
        self.demand[dir].store(flits_ready, Ordering::Release);
    }

    /// Returns the bandwidth granted to direction `dir` for the current cycle,
    /// based on the demands both sides published last cycle.
    ///
    /// The arbitration rule divides the budget proportionally to demand, but
    /// never starves a direction with non-zero demand and never grants more
    /// than the total budget.
    pub fn bandwidth_for(&self, dir: usize) -> u32 {
        let d0 = self.demand[0].load(Ordering::Acquire);
        let d1 = self.demand[1].load(Ordering::Acquire);
        let (mine, theirs) = if dir == 0 { (d0, d1) } else { (d1, d0) };
        let total = self.total_bandwidth;
        if mine == 0 && theirs == 0 {
            return total / 2;
        }
        if mine == 0 {
            // Nothing to send: reserve a single slot so a flit arriving this
            // cycle is not starved, give the rest away.
            return 1.min(total);
        }
        if theirs == 0 {
            return total.saturating_sub(1).max(1);
        }
        let share = (total as u64 * mine as u64) / (mine as u64 + theirs as u64);
        (share as u32).clamp(1, total - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_splits_evenly() {
        let l = BidirLink::new(1);
        assert_eq!(l.total_bandwidth(), 2);
        assert_eq!(l.bandwidth_for(0), 1);
        assert_eq!(l.bandwidth_for(1), 1);
    }

    #[test]
    fn one_sided_demand_gets_most_of_the_budget() {
        let l = BidirLink::new(2); // total 4
        l.publish_demand(0, 10);
        l.publish_demand(1, 0);
        assert_eq!(l.bandwidth_for(0), 3);
        assert_eq!(l.bandwidth_for(1), 1);
    }

    #[test]
    fn proportional_split_under_asymmetric_demand() {
        let l = BidirLink::new(2); // total 4
        l.publish_demand(0, 3);
        l.publish_demand(1, 1);
        assert_eq!(l.bandwidth_for(0), 3);
        assert_eq!(l.bandwidth_for(1), 1);
        // Grants never exceed the total budget.
        assert!(l.bandwidth_for(0) + l.bandwidth_for(1) <= l.total_bandwidth());
    }

    #[test]
    fn symmetric_demand_splits_evenly() {
        let l = BidirLink::new(1);
        l.publish_demand(0, 5);
        l.publish_demand(1, 5);
        assert_eq!(l.bandwidth_for(0), 1);
        assert_eq!(l.bandwidth_for(1), 1);
    }

    #[test]
    fn no_direction_with_demand_is_starved() {
        let l = BidirLink::new(1); // total 2
        l.publish_demand(0, 1000);
        l.publish_demand(1, 1);
        assert!(l.bandwidth_for(1) >= 1);
        assert!(l.bandwidth_for(0) >= 1);
    }
}
