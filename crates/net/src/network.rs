//! Network assembly and the single-threaded reference simulator.
//!
//! [`Network::new`] builds one router + bridge per node from a
//! [`NetworkConfig`], wires all inter-router buffers (and bandwidth-adaptive
//! links when enabled), and exposes a simple sequential `step`/`run` loop.
//! The parallel engine in `hornet-core` consumes the same [`NetworkNode`]s via
//! [`Network::into_nodes`] and drives them from multiple threads; by
//! construction both produce bit-identical results in cycle-accurate mode.

use crate::agent::{NodeAgent, NodeIo};
use crate::bridge::Bridge;
use crate::codec::{self, Dec, Enc};
use crate::config::{ConfigError, NetworkConfig};
use crate::flit::{DeliveredPacket, Packet};
use crate::geometry::Geometry;
use crate::ids::{Cycle, NodeId, PacketId};
use crate::kernel::{KernelMode, MeshKernel, StageTimes};
use crate::link::BidirLink;
use crate::payload::PayloadStore;
use crate::router::{Router, RouterConfig};
use crate::routing::build_routing;
use crate::stats::NetworkStats;
use crate::vca::{VcAllocKind, VcaPolicy};
use hornet_obs::trace::{TraceDump, TraceEvent, TraceKind, TraceRing};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;

/// Adapter giving agents packet-level access to the tile's bridge.
struct TileIo<'a> {
    bridge: &'a mut Bridge,
    now: Cycle,
}

impl NodeIo for TileIo<'_> {
    fn node(&self) -> NodeId {
        self.bridge.node()
    }
    fn cycle(&self) -> Cycle {
        self.now
    }
    fn alloc_packet_id(&mut self) -> PacketId {
        self.bridge.alloc_packet_id()
    }
    fn send(&mut self, packet: Packet) {
        self.bridge.send(packet);
    }
    fn try_recv(&mut self) -> Option<DeliveredPacket> {
        self.bridge.try_recv()
    }
    fn peek_recv(&self) -> Option<&DeliveredPacket> {
        self.bridge.peek_recv()
    }
    fn injection_backlog(&self) -> usize {
        self.bridge.pending_packets()
    }
    fn recv_backlog(&self) -> usize {
        self.bridge.delivered_len()
    }
}

/// One tile of the simulated system: a router, its bridge, the locally
/// attached agents, and the tile-private PRNG.
pub struct NetworkNode {
    pub(crate) router: Router,
    pub(crate) bridge: Bridge,
    pub(crate) agents: Vec<Box<dyn NodeAgent>>,
    pub(crate) rng: ChaCha12Rng,
    pub(crate) node: NodeId,
    /// Flit-lifecycle event ring; boxed so untraced tiles pay one pointer.
    /// Deliberately excluded from snapshots: the trace observes a run, it is
    /// not part of the simulated state.
    pub(crate) tracer: Option<Box<TraceRing>>,
}

impl std::fmt::Debug for NetworkNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkNode")
            .field("node", &self.node)
            .field("agents", &self.agents.len())
            .finish()
    }
}

impl NetworkNode {
    /// The node id of this tile.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Attaches an agent (traffic generator, CPU core, memory controller) to
    /// this tile.
    pub fn attach_agent(&mut self, agent: Box<dyn NodeAgent>) {
        self.agents.push(agent);
    }

    /// Immutable access to this tile's router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Mutable access to this tile's router.
    pub fn router_mut(&mut self) -> &mut Router {
        &mut self.router
    }

    /// The router-facing neighbours of this tile (used by the sharded
    /// runtime to derive the cut set of a partition).
    pub fn neighbors(&self) -> &[NodeId] {
        self.router.neighbors()
    }

    /// This tile's statistics.
    pub fn stats(&self) -> &NetworkStats {
        self.router.stats()
    }

    /// Starts recording flit-lifecycle events (inject / route / eject) into
    /// a fresh ring of `capacity` events. Tracing observes the simulation
    /// without perturbing it: traced and untraced runs are bit-identical.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Some(Box::new(TraceRing::new(capacity)));
    }

    /// Stops recording and discards the ring.
    pub fn disable_tracing(&mut self) {
        self.tracer = None;
    }

    /// The tile's trace ring, when tracing is enabled.
    pub fn tracer(&self) -> Option<&TraceRing> {
        self.tracer.as_deref()
    }

    /// Moves this tile's recorded events (and drop count) into `dump`,
    /// leaving the ring empty for the next window.
    pub fn drain_trace(&mut self, dump: &mut TraceDump) {
        if let Some(t) = &mut self.tracer {
            t.drain_into(dump);
        }
    }

    /// Positive clock edge: run the router pipeline and step the agents.
    pub fn posedge(&mut self, now: Cycle) {
        self.router
            .posedge_traced(now, &mut self.rng, self.tracer.as_deref_mut());
        self.tick_agents(now);
    }

    /// Steps the tile's agents (the non-router half of the positive edge; the
    /// compiled kernel runs the router pipeline itself and then calls this).
    pub(crate) fn tick_agents(&mut self, now: Cycle) {
        for agent in &mut self.agents {
            let mut io = TileIo {
                bridge: &mut self.bridge,
                now,
            };
            agent.tick(&mut io, &mut self.rng);
        }
    }

    /// Negative clock edge: apply staged router moves, hand ejected flits to
    /// the bridge, and inject queued flits into the network.
    pub fn negedge(&mut self, now: Cycle) {
        self.router.negedge(now);
        self.negedge_bridge(now);
    }

    /// The bridge half of the negative edge: hand ejected flits to the bridge
    /// and inject queued flits into the network. Split out so the compiled
    /// kernel can apply the router's staged moves itself and still share this
    /// code path (FlitEject tracing included).
    pub(crate) fn negedge_bridge(&mut self, now: Cycle) {
        // Drain the delivery queue in place so its allocation is reused every
        // cycle (the router hot path never gives up scratch capacity).
        let (delivered, stats) = self.router.delivered_and_stats_mut();
        if !delivered.is_empty() {
            if let Some(t) = self.tracer.as_deref_mut() {
                for flit in delivered.iter() {
                    t.record(TraceEvent {
                        cycle: now,
                        node: self.node.raw(),
                        kind: TraceKind::FlitEject,
                        a: flit.packet.raw(),
                        b: flit.seq as u64,
                    });
                }
            }
            self.bridge.accept(delivered, now, stats);
        }
        self.bridge
            .inject_traced(now, self.router.stats_mut(), self.tracer.as_deref_mut());
    }

    /// True if the tile has no buffered flits and nothing queued for
    /// injection.
    pub fn is_idle(&self) -> bool {
        self.router.is_idle() && self.bridge.injection_idle()
    }

    /// Number of flits buffered in this tile's router.
    pub fn buffered_flits(&self) -> usize {
        self.router.buffered_flits()
    }

    /// Earliest future cycle at which an agent on this tile wants to act, for
    /// fast-forwarding.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut earliest: Option<Cycle> = None;
        if !self.bridge.injection_idle() {
            return Some(now + 1);
        }
        for agent in &self.agents {
            if let Some(e) = agent.next_event(now) {
                earliest = Some(earliest.map_or(e, |cur: Cycle| cur.min(e)));
            }
        }
        earliest
    }

    /// True once every agent on this tile reports completion.
    pub fn finished(&self) -> bool {
        self.agents.iter().all(|a| a.finished())
    }

    /// Sets the tile clock (used by fast-forwarding).
    pub fn set_cycle(&mut self, cycle: Cycle) {
        self.router.set_cycle(cycle);
    }

    /// Clears the tile's statistics (used to discard the warm-up window).
    /// Also clears the trace ring, so a trace covers exactly the measured
    /// window regardless of backend.
    pub fn reset_stats(&mut self) {
        *self.router.stats_mut() = NetworkStats::new();
        if let Some(t) = &mut self.tracer {
            t.clear();
        }
    }

    /// Serializes the tile's full state: the PRNG cursor, the router, every
    /// attached agent (each blob-framed so agents only ever decode their own
    /// record) and the bridge. Must be called between cycles.
    pub fn snapshot(&self, e: &mut Enc) {
        e.u32(self.node.raw());
        for w in self.rng.state() {
            e.u64(w);
        }
        self.router.snapshot(e);
        e.u32(self.agents.len() as u32);
        for agent in &self.agents {
            let mut sub = Enc::new();
            agent.snapshot(&mut sub);
            e.blob(sub.bytes());
        }
        self.bridge.snapshot(e);
    }

    /// Restores the state captured by [`snapshot`](Self::snapshot) into this
    /// freshly built tile. The tile must already have the same agents
    /// attached, in the same order, as when the snapshot was taken.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` if the tile identity, topology or agent roster
    /// does not match the checkpoint.
    pub fn restore(&mut self, d: &mut Dec) -> std::io::Result<()> {
        let corrupt = |what: String| std::io::Error::new(std::io::ErrorKind::InvalidData, what);
        let node = d.u32()?;
        if node != self.node.raw() {
            return Err(corrupt(format!(
                "tile checkpoint for node {node} restored into node {}",
                self.node.raw()
            )));
        }
        let mut state = [0u64; 4];
        for w in &mut state {
            *w = d.u64()?;
        }
        self.rng = ChaCha12Rng::from_state(state);
        self.router.restore(d)?;
        if d.u32()? as usize != self.agents.len() {
            return Err(corrupt(format!(
                "agent roster mismatch on node {node}: the restored network \
                 must attach the same agents as the checkpointed one"
            )));
        }
        for agent in &mut self.agents {
            let blob = d.blob()?;
            agent.restore(&mut Dec::new(blob))?;
        }
        self.bridge.restore(d)?;
        Ok(())
    }
}

/// Compiled-kernel slot: lazily built, invalidated on structural mutation.
enum KernelSlot {
    /// Needs a (re)compile attempt before the next cycle.
    Stale,
    /// Kernel compiled and driving the cycle loop.
    Active(Box<MeshKernel>),
    /// Kernel disabled or config ineligible; interpreter drives the loop.
    Fallback,
}

/// The assembled network plus the sequential reference simulator.
pub struct Network {
    nodes: Vec<NetworkNode>,
    payload_store: Arc<PayloadStore>,
    geometry: Geometry,
    cycle: Cycle,
    fast_forward: bool,
    kernel_mode: KernelMode,
    kernel_timing: bool,
    kernel: KernelSlot,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Network {
    /// Builds routers, bridges and inter-router wiring from a configuration.
    ///
    /// `seed` drives every tile's private PRNG (tile seeds are derived
    /// deterministically from it), so two runs with the same seed and
    /// configuration produce identical results — regardless of how many host
    /// threads later simulate the tiles.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ConfigError`] if the configuration fails
    /// validation.
    pub fn new(config: &NetworkConfig, seed: u64) -> Result<Self, ConfigError> {
        config.validate()?;
        let geometry = &config.geometry;
        let routing = build_routing(config.routing, geometry, &config.flows);

        // O1TURN / Valiant / ROMM need phase-separated VC sets to stay
        // deadlock-free; upgrade plain dynamic VCA accordingly.
        let vca_kind =
            if config.routing.needs_phase_separated_vcs() && config.vca == VcAllocKind::Dynamic {
                VcAllocKind::Phased
            } else {
                config.vca
            };

        let router_cfg = RouterConfig {
            vcs_per_port: config.vcs_per_port,
            vc_capacity: config.vc_capacity,
            injection_vcs: config.injection_vcs,
            injection_vc_capacity: config.injection_vc_capacity,
            link_bandwidth: config.link_bandwidth,
            ejection_bandwidth: config.ejection_bandwidth,
        };

        let payload_store = Arc::new(PayloadStore::new());
        let mut routers: Vec<Router> = geometry
            .nodes()
            .map(|n| {
                Router::new(
                    n,
                    geometry.neighbors(n),
                    router_cfg.clone(),
                    routing[n.index()].clone(),
                    VcaPolicy::from_kind(vca_kind),
                )
            })
            .collect();

        // Wire every egress port to the downstream ingress buffers.
        for conn in geometry.connections() {
            let (a, b) = (conn.a, conn.b);
            let a_to_b = routers[b.index()].ingress_buffers_from(a).to_vec();
            let b_to_a = routers[a.index()].ingress_buffers_from(b).to_vec();
            routers[a.index()].connect_egress(b, a_to_b);
            routers[b.index()].connect_egress(a, b_to_a);
            if config.bidirectional_links {
                let link = Arc::new(BidirLink::new(config.link_bandwidth));
                routers[a.index()].attach_bidir_link(b, Arc::clone(&link), 0);
                routers[b.index()].attach_bidir_link(a, link, 1);
            }
        }

        let nodes = routers
            .into_iter()
            .map(|router| {
                let node = router.node();
                let mut bridge = Bridge::new(
                    node,
                    router.injection_buffers().to_vec(),
                    config.link_bandwidth,
                );
                bridge.attach_payload_store(Arc::clone(&payload_store));
                let rng = ChaCha12Rng::seed_from_u64(
                    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node.raw() as u64 + 1)),
                );
                NetworkNode {
                    router,
                    bridge,
                    agents: Vec::new(),
                    rng,
                    node,
                    tracer: None,
                }
            })
            .collect();

        Ok(Self {
            nodes,
            payload_store,
            geometry: config.geometry.clone(),
            cycle: 0,
            fast_forward: false,
            kernel_mode: KernelMode::default(),
            kernel_timing: false,
            kernel: KernelSlot::Stale,
        })
    }

    /// Selects how the sequential simulator executes cycles: interpreter,
    /// compiled kernel, or auto-detection (the default). Takes effect on the
    /// next [`step`](Self::step).
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.kernel_mode = mode;
        self.kernel = KernelSlot::Stale;
    }

    /// The configured kernel mode (before auto-detection).
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel_mode
    }

    /// Enables per-stage wall-clock timing inside the compiled kernel (for
    /// benchmarking; adds a few `Instant` reads per cycle).
    pub fn set_kernel_timing(&mut self, enabled: bool) {
        self.kernel_timing = enabled;
        self.kernel = KernelSlot::Stale;
    }

    /// True if the compiled kernel will drive the next cycle (compiling it
    /// now if the decision is still pending).
    pub fn kernel_active(&mut self) -> bool {
        self.ensure_kernel();
        matches!(self.kernel, KernelSlot::Active(_))
    }

    /// Accumulated per-stage kernel timings (zero unless
    /// [`set_kernel_timing`](Self::set_kernel_timing) was enabled).
    pub fn kernel_stage_times(&self) -> Option<StageTimes> {
        match &self.kernel {
            KernelSlot::Active(k) => Some(k.stage_times()),
            _ => None,
        }
    }

    fn ensure_kernel(&mut self) {
        if matches!(self.kernel, KernelSlot::Stale) {
            self.kernel = if self.kernel_mode.enabled() {
                match MeshKernel::compile(&self.nodes, self.kernel_timing) {
                    Some(k) => KernelSlot::Active(Box::new(k)),
                    None => KernelSlot::Fallback,
                }
            } else {
                KernelSlot::Fallback
            };
        }
    }

    /// The geometry this network was assembled from (used by the sharded
    /// engine to build a topology-aware partition).
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Enables or disables fast-forwarding of idle periods (paper §IV-B).
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Number of tiles.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shared payload store (the DMA side-channel).
    pub fn payload_store(&self) -> Arc<PayloadStore> {
        Arc::clone(&self.payload_store)
    }

    /// Access to one tile.
    pub fn node(&self, id: NodeId) -> &NetworkNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to one tile. Invalidates the compiled kernel's derived
    /// state (it is rebuilt — cheaply — before the next cycle).
    pub fn node_mut(&mut self, id: NodeId) -> &mut NetworkNode {
        self.kernel = KernelSlot::Stale;
        &mut self.nodes[id.index()]
    }

    /// Attaches an agent to a tile.
    pub fn attach_agent(&mut self, node: NodeId, agent: Box<dyn NodeAgent>) {
        self.nodes[node.index()].attach_agent(agent);
    }

    /// The current simulated cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Enables flit-lifecycle tracing on every tile, each with its own ring
    /// of `capacity` events (per-tile rings keep the recorded sequence —
    /// including deterministic drop-newest truncation — a pure function of
    /// the workload, independent of how tiles are sharded across hosts).
    pub fn enable_tracing(&mut self, capacity: usize) {
        for node in &mut self.nodes {
            node.enable_tracing(capacity);
        }
    }

    /// Collects every tile's trace into one dump, in node-index order.
    pub fn drain_trace(&mut self) -> TraceDump {
        let mut dump = TraceDump::default();
        for node in &mut self.nodes {
            node.drain_trace(&mut dump);
        }
        dump
    }

    /// Consumes the network and returns its tiles (plus the payload store) so
    /// a parallel engine can distribute them across threads.
    pub fn into_nodes(self) -> (Vec<NetworkNode>, Arc<PayloadStore>) {
        (self.nodes, self.payload_store)
    }

    /// True if no flit is buffered anywhere and no injector has pending work.
    pub fn is_idle(&self) -> bool {
        self.nodes.iter().all(NetworkNode::is_idle)
    }

    /// Total flits currently buffered in the network.
    pub fn flits_in_flight(&self) -> usize {
        self.nodes.iter().map(NetworkNode::buffered_flits).sum()
    }

    /// Earliest future event across all tiles (for fast-forwarding).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.nodes.iter().filter_map(|n| n.next_event(now)).min()
    }

    /// Advances the simulation by exactly one cycle.
    pub fn step(&mut self) {
        let now = self.cycle + 1;
        self.ensure_kernel();
        if let KernelSlot::Active(kernel) = &mut self.kernel {
            kernel.posedge(&mut self.nodes, now);
            kernel.negedge(&mut self.nodes, now);
        } else {
            for node in &mut self.nodes {
                node.posedge(now);
            }
            for node in &mut self.nodes {
                node.negedge(now);
            }
        }
        self.cycle = now;
    }

    /// Runs for `cycles` simulated cycles (honouring fast-forwarding when
    /// enabled).
    pub fn run(&mut self, cycles: Cycle) {
        let end = self.cycle + cycles;
        while self.cycle < end {
            if self.fast_forward && self.is_idle() {
                match self.next_event(self.cycle) {
                    Some(next) if next > self.cycle + 1 => {
                        let target = next.min(end);
                        let skipped = target.saturating_sub(self.cycle + 1);
                        for node in &mut self.nodes {
                            node.set_cycle(target - 1);
                            node.router_mut().stats_mut().fast_forwarded_cycles += skipped;
                        }
                        self.cycle = target - 1;
                    }
                    Some(_) => {}
                    None => {
                        // Nothing will ever happen again; jump to the end.
                        for node in &mut self.nodes {
                            node.set_cycle(end);
                            node.router_mut().stats_mut().fast_forwarded_cycles += end - self.cycle;
                        }
                        self.cycle = end;
                        break;
                    }
                }
            }
            self.step();
        }
    }

    /// Runs until every agent reports completion and the network has drained,
    /// or until `max_cycles` have elapsed. Returns `true` if the simulation
    /// completed (did not hit the cycle limit).
    pub fn run_to_completion(&mut self, max_cycles: Cycle) -> bool {
        let end = self.cycle + max_cycles;
        while self.cycle < end {
            let finished = self.nodes.iter().all(NetworkNode::finished) && self.is_idle();
            if finished {
                return true;
            }
            self.step();
        }
        self.nodes.iter().all(NetworkNode::finished) && self.is_idle()
    }

    /// Clears every tile's statistics (used to discard the warm-up window
    /// before the measured window, as in Table I's methodology).
    pub fn reset_stats(&mut self) {
        for node in &mut self.nodes {
            node.reset_stats();
        }
    }

    /// Merged statistics across all tiles.
    pub fn stats(&self) -> NetworkStats {
        let mut merged = NetworkStats::new();
        for node in &self.nodes {
            merged.merge(node.stats());
        }
        merged
    }

    /// Per-tile statistics (indexed by node), e.g. for thermal maps.
    pub fn per_node_stats(&self) -> Vec<NetworkStats> {
        self.nodes.iter().map(|n| n.stats().clone()).collect()
    }

    /// Serializes the full simulation state — the clock, every tile (PRNG,
    /// router, agents, bridge) and the out-of-band payload store — into a
    /// deterministic byte string. Restoring it into a freshly built network
    /// (same configuration, seed and agent roster) and running on produces
    /// results bit-identical to never having snapshotted at all.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.cycle);
        e.u32(self.nodes.len() as u32);
        for node in &self.nodes {
            let mut sub = Enc::new();
            node.snapshot(&mut sub);
            e.blob(sub.bytes());
        }
        let packets = self.payload_store.snapshot_packets();
        e.u32(packets.len() as u32);
        for p in &packets {
            codec::encode_packet(&mut e, p);
        }
        e.into_bytes()
    }

    /// Restores the state captured by [`snapshot`](Self::snapshot) into this
    /// freshly built network (same configuration, seed and agent roster).
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` if the checkpoint does not match this
    /// network's shape or is corrupt.
    pub fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.kernel = KernelSlot::Stale;
        let mut d = Dec::new(bytes);
        self.cycle = d.u64()?;
        if d.u32()? as usize != self.nodes.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "checkpoint node count does not match this network",
            ));
        }
        for node in &mut self.nodes {
            let blob = d.blob()?;
            node.restore(&mut Dec::new(blob))?;
        }
        for _ in 0..d.u32()? {
            self.payload_store.deposit(codec::decode_packet(&mut d)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::SinkAgent;
    use crate::flit::Packet;
    use crate::geometry::Geometry;
    use crate::ids::FlowId;
    use crate::routing::{FlowSpec, RoutingKind};
    use rand_chacha::ChaCha12Rng;

    /// Sends `count` packets from `src` to `dst`, one every `period` cycles.
    struct PeriodicSender {
        src: NodeId,
        dst: NodeId,
        node_count: usize,
        period: Cycle,
        remaining: u32,
        next_send: Cycle,
        packet_len: u32,
    }

    impl NodeAgent for PeriodicSender {
        fn tick(&mut self, io: &mut dyn NodeIo, _rng: &mut ChaCha12Rng) {
            if self.remaining > 0 && io.cycle() >= self.next_send {
                let id = io.alloc_packet_id();
                let packet = Packet::new(
                    id,
                    FlowId::for_pair(self.src, self.dst, self.node_count),
                    self.src,
                    self.dst,
                    self.packet_len,
                    io.cycle(),
                );
                io.send(packet);
                self.remaining -= 1;
                self.next_send = io.cycle() + self.period;
            }
        }
        fn next_event(&self, now: Cycle) -> Option<Cycle> {
            (self.remaining > 0).then_some(self.next_send.max(now + 1))
        }
        fn finished(&self) -> bool {
            self.remaining == 0
        }
    }

    fn mesh_network(w: usize, h: usize, flows: Vec<FlowSpec>) -> Network {
        let cfg = NetworkConfig::new(Geometry::mesh2d(w, h))
            .with_routing(RoutingKind::Xy)
            .with_flows(flows);
        Network::new(&cfg, 42).expect("valid config")
    }

    #[test]
    fn packets_cross_a_mesh_and_are_counted() {
        let src = NodeId::new(0);
        let dst = NodeId::new(8);
        let flows = vec![FlowSpec::pair(src, dst, 9)];
        let mut net = mesh_network(3, 3, flows);
        net.attach_agent(
            src,
            Box::new(PeriodicSender {
                src,
                dst,
                node_count: 9,
                period: 10,
                remaining: 5,
                next_send: 0,
                packet_len: 4,
            }),
        );
        net.attach_agent(dst, Box::new(SinkAgent::new()));
        assert!(net.run_to_completion(5_000));
        let stats = net.stats();
        assert_eq!(stats.delivered_packets, 5);
        assert_eq!(stats.delivered_flits, 20);
        assert_eq!(stats.injected_packets, 5);
        assert!(stats.avg_packet_latency() > 0.0);
        assert_eq!(stats.routing_failures, 0);
        // 0 -> 8 on a 3x3 mesh is 4 hops.
        assert_eq!(stats.avg_hops(), 4.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let src = NodeId::new(2);
            let dst = NodeId::new(6);
            let flows = vec![FlowSpec::pair(src, dst, 9)];
            let cfg = NetworkConfig::new(Geometry::mesh2d(3, 3))
                .with_routing(RoutingKind::O1Turn)
                .with_flows(flows);
            let mut net = Network::new(&cfg, seed).unwrap();
            net.attach_agent(
                src,
                Box::new(PeriodicSender {
                    src,
                    dst,
                    node_count: 9,
                    period: 3,
                    remaining: 20,
                    next_send: 0,
                    packet_len: 4,
                }),
            );
            net.run_to_completion(10_000);
            net.stats().total_packet_latency
        };
        assert_eq!(run(7), run(7));
        // Different seeds may legitimately differ (O1TURN picks paths randomly),
        // but both must deliver all packets.
        let _ = run(8);
    }

    #[test]
    fn fast_forward_skips_idle_gaps_without_changing_results() {
        let src = NodeId::new(0);
        let dst = NodeId::new(3);
        let flows = vec![FlowSpec::pair(src, dst, 4)];
        let build = |ff: bool| {
            let cfg = NetworkConfig::new(Geometry::mesh2d(2, 2)).with_flows(flows.clone());
            let mut net = Network::new(&cfg, 1).unwrap();
            net.set_fast_forward(ff);
            net.attach_agent(
                src,
                Box::new(PeriodicSender {
                    src,
                    dst,
                    node_count: 4,
                    period: 500,
                    remaining: 3,
                    next_send: 0,
                    packet_len: 2,
                }),
            );
            net.attach_agent(dst, Box::new(SinkAgent::new()));
            net.run(2_000);
            net.stats()
        };
        let slow = build(false);
        let fast = build(true);
        assert_eq!(slow.delivered_packets, fast.delivered_packets);
        assert_eq!(slow.total_packet_latency, fast.total_packet_latency);
        assert!(
            fast.fast_forwarded_cycles > 0,
            "idle gaps should be skipped"
        );
        assert!(fast.simulated_cycles < slow.simulated_cycles);
    }

    #[test]
    fn payloads_reach_remote_destinations() {
        use crate::flit::Payload;
        struct OneShotSender {
            sent: bool,
        }
        impl NodeAgent for OneShotSender {
            fn tick(&mut self, io: &mut dyn NodeIo, _rng: &mut ChaCha12Rng) {
                if !self.sent {
                    let id = io.alloc_packet_id();
                    let packet = Packet::new(
                        id,
                        FlowId::for_pair(NodeId::new(0), NodeId::new(3), 4),
                        NodeId::new(0),
                        NodeId::new(3),
                        1,
                        io.cycle(),
                    )
                    .with_payload(Payload::from_words(&[1, 2, 3]));
                    io.send(packet);
                    self.sent = true;
                }
            }
            fn next_event(&self, now: Cycle) -> Option<Cycle> {
                (!self.sent).then_some(now + 1)
            }
            fn finished(&self) -> bool {
                self.sent
            }
        }
        struct PayloadChecker {
            got: Option<Vec<u64>>,
        }
        impl NodeAgent for PayloadChecker {
            fn tick(&mut self, io: &mut dyn NodeIo, _rng: &mut ChaCha12Rng) {
                if let Some(d) = io.try_recv() {
                    self.got = Some(d.packet.payload.words().to_vec());
                }
            }
            fn next_event(&self, _now: Cycle) -> Option<Cycle> {
                None
            }
            fn finished(&self) -> bool {
                self.got.is_some()
            }
        }
        let flows = vec![FlowSpec::pair(NodeId::new(0), NodeId::new(3), 4)];
        let cfg = NetworkConfig::new(Geometry::mesh2d(2, 2)).with_flows(flows);
        let mut net = Network::new(&cfg, 3).unwrap();
        net.attach_agent(NodeId::new(0), Box::new(OneShotSender { sent: false }));
        net.attach_agent(NodeId::new(3), Box::new(PayloadChecker { got: None }));
        assert!(net.run_to_completion(1_000));
        // Inspect the checker indirectly: completion implies it received the
        // packet; the payload store must be drained.
        assert!(net.payload_store().is_empty());
    }
}
