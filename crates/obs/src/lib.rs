//! # hornet-obs
//!
//! The observability substrate of HORNET-RS, deliberately placed *below*
//! `hornet-net` in the crate graph so every layer — router pipeline, shard
//! driver, distributed coordinator — can emit into the same primitives
//! without dependency cycles:
//!
//! * [`metrics`] — a lock-free, shard-local registry of named counters,
//!   gauges and log₂ histograms. Registration takes a lock once; every
//!   subsequent update is a single relaxed atomic op on a pre-resolved
//!   handle, so instrumented hot paths stay wait-free. The `CycleDriver`
//!   samples the registry periodically into [`metrics::TelemetrySample`]s,
//!   which the distributed backend ships to the coordinator as
//!   `CtrlMsg::Telemetry` (wire v4) and aggregates into a live NDJSON
//!   stream.
//! * [`trace`] — cycle-stamped structured event tracing into fixed-capacity
//!   ring buffers ([`trace::TraceRing`]): flit inject/route/eject lifecycle,
//!   slack-wait begin/end, checkpoint capture/commit, worker
//!   loss/rollback/respawn. Events are fixed-size `Copy` records; recording
//!   never allocates, and a tile with no ring attached pays one branch.
//!   Rings drop-newest when full and count every drop — truncation can lose
//!   events but never the fact that events were lost. Dumps export as JSONL
//!   or Chrome `trace_event` JSON (speedscope / perfetto / `chrome://tracing`).
//! * [`profile`] — wall-time stall attribution for the shard driver's cycle
//!   loop: compute vs. slack-wait vs. ingest vs. flush, the causal
//!   breakdown behind `ShardSummary::load_imbalance()`.
//! * [`log`] — leveled structured logging (`HORNET_LOG=debug|info|warn|off`)
//!   in logfmt style, replacing ad-hoc `eprintln!` supervision messages with
//!   machine-parseable, shard- and cycle-tagged lines.
//! * [`history`] — a fixed-capacity ring of recent telemetry samples with
//!   sliding-window rate estimation and log₂-histogram quantile recovery,
//!   the state behind live rate/delta reporting.
//! * [`alert`] — rising-edge threshold alerting over the telemetry stream
//!   (stall fraction, load imbalance, no-progress, trace drops).
//! * [`serve`] — the embedded live-introspection control plane: a
//!   dependency-free HTTP/1.1 server over `std::net::TcpListener` exposing
//!   `/healthz`, `/status`, `/metrics` (Prometheus text exposition),
//!   `/trace?since_cycle=N` and `/alerts` from a shared [`serve::ObsHub`],
//!   plus the matching hand-rolled client, a minimal JSON parser, and the
//!   exposition-format linter.

pub mod alert;
pub mod history;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod serve;
pub mod trace;

pub use alert::{AlertConfig, AlertEvaluator, AlertFiring};
pub use history::TelemetryHistory;
pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, TelemetrySample};
pub use profile::StallProfile;
pub use serve::{ObsHub, ObsServer};
pub use trace::{TraceDump, TraceEvent, TraceKind, TraceRing};
