//! Fixed-capacity telemetry history and log₂-histogram quantile estimation —
//! the state behind the live `/status` endpoint.
//!
//! [`TelemetryHistory`] retains the most recent samples (across all shards)
//! tagged with a coarse wall-clock offset, so consumers can report *rates*
//! (cycles/sec over a sliding window) and deltas instead of only the latest
//! absolute counters. [`histogram_quantile`] inverts a log₂-bucketed
//! packet-latency histogram (`NetworkStats` convention: bucket `i` counts
//! values in `[2^i, 2^(i+1))`, with bucket 0 also holding zero) into an
//! estimated percentile by linear interpolation inside the covering bucket.

use crate::metrics::{TelemetrySample, HISTOGRAM_BUCKETS};
use std::collections::VecDeque;

/// One retained observation: wall-clock offset in milliseconds since the hub
/// started, plus the sample itself.
#[derive(Clone, Debug)]
pub struct HistoryEntry {
    /// Milliseconds since the owning hub's start when the sample arrived.
    pub at_ms: u64,
    /// The observed sample.
    pub sample: TelemetrySample,
}

/// A bounded, drop-oldest ring of telemetry samples.
///
/// Old samples age out silently: the history exists to answer "what happened
/// recently", not to archive the run (that is what `--metrics-out` is for).
#[derive(Debug)]
pub struct TelemetryHistory {
    capacity: usize,
    entries: VecDeque<HistoryEntry>,
}

impl TelemetryHistory {
    /// Creates a history retaining at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, at_ms: u64, sample: TelemetrySample) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(HistoryEntry { at_ms, sample });
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// All retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &HistoryEntry> {
        self.entries.iter()
    }

    /// The most recent entry for every shard seen, ordered by shard id.
    pub fn latest_per_shard(&self) -> Vec<&HistoryEntry> {
        let mut latest: Vec<&HistoryEntry> = Vec::new();
        for e in &self.entries {
            match latest.iter_mut().find(|l| l.sample.shard == e.sample.shard) {
                Some(slot) => *slot = e,
                None => latest.push(e),
            }
        }
        latest.sort_by_key(|e| e.sample.shard);
        latest
    }

    /// Simulated cycles per wall-clock second for `shard` over the trailing
    /// `window_ms` (ending at `now_ms`). `None` until the window holds two
    /// samples separated by measurable wall time.
    pub fn cycles_per_sec(&self, shard: u32, window_ms: u64, now_ms: u64) -> Option<f64> {
        let cutoff = now_ms.saturating_sub(window_ms);
        let mut first: Option<&HistoryEntry> = None;
        let mut last: Option<&HistoryEntry> = None;
        for e in self
            .entries
            .iter()
            .filter(|e| e.sample.shard == shard && e.at_ms >= cutoff)
        {
            if first.is_none() {
                first = Some(e);
            }
            last = Some(e);
        }
        let (a, b) = (first?, last?);
        let dt_ms = b.at_ms.saturating_sub(a.at_ms);
        if dt_ms == 0 {
            return None;
        }
        Some(b.sample.cycle.saturating_sub(a.sample.cycle) as f64 * 1000.0 / dt_ms as f64)
    }
}

/// Recovers a dense log₂ histogram from the flattened `<name>_count` +
/// sparse `<name>_b<i>` pairs produced by `MetricsRegistry::sample` (and by
/// the shard driver's packet-latency export). `None` when `<name>_count` is
/// absent from the sample.
pub fn metrics_histogram(
    metrics: &[(String, u64)],
    name: &str,
) -> Option<[u64; HISTOGRAM_BUCKETS]> {
    let count_key = format!("{name}_count");
    metrics.iter().find(|(n, _)| *n == count_key)?;
    let mut out = [0u64; HISTOGRAM_BUCKETS];
    let prefix = format!("{name}_b");
    for (n, v) in metrics {
        if let Some(idx) = n.strip_prefix(&prefix) {
            if let Ok(i) = idx.parse::<usize>() {
                if i < HISTOGRAM_BUCKETS {
                    out[i] = *v;
                }
            }
        }
    }
    Some(out)
}

/// Estimated `q`-quantile (`0.0 ..= 1.0`) of a log₂-bucketed histogram in
/// the packet-latency convention (bucket `i` covers `[2^i, 2^(i+1))`, bucket
/// 0 also counts zero), with linear interpolation inside the covering
/// bucket. Returns 0.0 for an empty histogram.
pub fn histogram_quantile(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = q.clamp(0.0, 1.0) * total as f64;
    let mut cum = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        if b == 0 {
            continue;
        }
        let next = cum + b;
        if next as f64 >= target {
            let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
            let hi = (1u128 << (i + 1)) as f64;
            let frac = (target - cum as f64) / b as f64;
            return lo + frac * (hi - lo);
        }
        cum = next;
    }
    (1u128 << buckets.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(shard: u32, cycle: u64) -> TelemetrySample {
        TelemetrySample {
            shard,
            cycle,
            ..TelemetrySample::default()
        }
    }

    #[test]
    fn history_evicts_oldest_and_tracks_latest_per_shard() {
        let mut h = TelemetryHistory::new(3);
        h.push(0, sample(0, 100));
        h.push(10, sample(1, 100));
        h.push(20, sample(0, 200));
        h.push(30, sample(1, 200)); // evicts the first entry
        assert_eq!(h.len(), 3);
        let latest = h.latest_per_shard();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[0].sample.shard, 0);
        assert_eq!(latest[0].sample.cycle, 200);
        assert_eq!(latest[1].sample.cycle, 200);
    }

    #[test]
    fn rate_uses_the_window_endpoints() {
        let mut h = TelemetryHistory::new(16);
        h.push(0, sample(0, 0));
        h.push(500, sample(0, 1_000));
        h.push(1_000, sample(0, 2_000));
        let rate = h.cycles_per_sec(0, 10_000, 1_000).expect("two samples");
        assert!((rate - 2_000.0).abs() < 1e-9, "rate {rate}");
        assert!(
            h.cycles_per_sec(9, 10_000, 1_000).is_none(),
            "unknown shard"
        );
        // A window excluding all but one sample yields no rate.
        assert!(h.cycles_per_sec(0, 0, 1_000).is_none());
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        // 100 values in bucket 3 ([8, 16)).
        let mut b = [0u64; HISTOGRAM_BUCKETS];
        b[3] = 100;
        let p50 = histogram_quantile(&b, 0.5);
        assert!((8.0..16.0).contains(&p50), "p50 {p50}");
        assert!(histogram_quantile(&b, 1.0) <= 16.0);
        assert_eq!(histogram_quantile(&[0; 4], 0.5), 0.0);
        // Mass split across buckets: p25 in the lower, p75 in the upper.
        let mut b = [0u64; HISTOGRAM_BUCKETS];
        b[1] = 50; // [2, 4)
        b[4] = 50; // [16, 32)
        assert!(histogram_quantile(&b, 0.25) < 4.0);
        assert!(histogram_quantile(&b, 0.75) >= 16.0);
    }

    #[test]
    fn flattened_histograms_round_trip() {
        let metrics = vec![
            ("packet_latency_count".to_string(), 7u64),
            ("packet_latency_b2".to_string(), 4),
            ("packet_latency_b5".to_string(), 3),
            ("other".to_string(), 1),
        ];
        let h = metrics_histogram(&metrics, "packet_latency").expect("present");
        assert_eq!(h[2], 4);
        assert_eq!(h[5], 3);
        assert_eq!(h.iter().sum::<u64>(), 7);
        assert!(metrics_histogram(&metrics, "absent").is_none());
    }
}
