//! Leveled structured logging in logfmt style.
//!
//! One line per event on stderr, machine-parseable:
//!
//! ```text
//! level=info target=host shard=2 cycle=41300 msg="worker connected"
//! ```
//!
//! The threshold comes from `HORNET_LOG=debug|info|warn|off` (default
//! `warn`, so instrumented libraries stay quiet unless asked); hosts may
//! override it programmatically (e.g. `--verbose` ⇒ `info`) with
//! [`set_max_level`] — the environment variable, when set, always wins.
//! Call sites use the [`olog_debug!`](crate::olog_debug),
//! [`olog_info!`](crate::olog_info) and [`olog_warn!`](crate::olog_warn)
//! macros, which evaluate their fields and message only when the level is
//! enabled.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, ordered.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Everything, including per-message supervision chatter.
    Debug = 0,
    /// Lifecycle events: workers connecting, runs completing, recoveries.
    Info = 1,
    /// Anomalies: stalls, losses, rejected peers.
    Warn = 2,
    /// Nothing.
    Off = 3,
}

impl Level {
    /// Lowercase name (the logfmt `level=` value).
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Off => "off",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "off" | "none" => Some(Level::Off),
            _ => None,
        }
    }
}

/// `HORNET_LOG` at first use; `None` when unset or unparsable.
fn env_level() -> Option<Level> {
    static ENV: OnceLock<Option<Level>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("HORNET_LOG")
            .ok()
            .as_deref()
            .and_then(Level::parse)
    })
}

/// Programmatic override slot; `u8::MAX` = not set.
static OVERRIDE: AtomicU8 = AtomicU8::new(u8::MAX);

/// Sets the threshold when `HORNET_LOG` is not set (the environment always
/// wins, so an operator can turn a quiet deployment loud without touching
/// flags).
pub fn set_max_level(level: Level) {
    OVERRIDE.store(level as u8, Ordering::Relaxed);
}

/// The active threshold.
pub fn max_level() -> Level {
    if let Some(env) = env_level() {
        return env;
    }
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => Level::Debug,
        1 => Level::Info,
        2 => Level::Warn,
        3 => Level::Off,
        _ => Level::Warn,
    }
}

/// True when `level` would be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level >= max_level() && level != Level::Off
}

/// Writes one logfmt line to stderr. Prefer the macros, which gate on
/// [`enabled`] before evaluating anything.
pub fn emit(level: Level, target: &str, fields: &[(&str, &dyn fmt::Display)], msg: fmt::Arguments) {
    let mut line = String::with_capacity(96);
    let _ = fmt::Write::write_fmt(
        &mut line,
        format_args!("level={} target={target}", level.name()),
    );
    for (k, v) in fields {
        let _ = fmt::Write::write_fmt(&mut line, format_args!(" {k}={v}"));
    }
    let rendered = msg.to_string();
    let _ = fmt::Write::write_fmt(
        &mut line,
        format_args!(
            " msg=\"{}\"",
            rendered.replace('\\', "\\\\").replace('"', "\\\"")
        ),
    );
    line.push('\n');
    // One write_all so concurrent shards/processes interleave whole lines.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Emits at an explicit level: `olog!(Level::Info, "host", { shard = 2, cycle = c }, "connected")`.
#[macro_export]
macro_rules! olog {
    ($lvl:expr, $target:expr, { $($k:ident = $v:expr),* $(,)? }, $($msg:tt)+) => {
        if $crate::log::enabled($lvl) {
            $crate::log::emit(
                $lvl,
                $target,
                &[$((stringify!($k), &$v as &dyn ::std::fmt::Display)),*],
                ::core::format_args!($($msg)+),
            );
        }
    };
}

/// `olog!` at [`Level::Debug`](crate::log::Level::Debug).
#[macro_export]
macro_rules! olog_debug {
    ($target:expr, { $($f:tt)* }, $($msg:tt)+) => {
        $crate::olog!($crate::log::Level::Debug, $target, { $($f)* }, $($msg)+)
    };
}

/// `olog!` at [`Level::Info`](crate::log::Level::Info).
#[macro_export]
macro_rules! olog_info {
    ($target:expr, { $($f:tt)* }, $($msg:tt)+) => {
        $crate::olog!($crate::log::Level::Info, $target, { $($f)* }, $($msg)+)
    };
}

/// `olog!` at [`Level::Warn`](crate::log::Level::Warn).
#[macro_export]
macro_rules! olog_warn {
    ($target:expr, { $($f:tt)* }, $($msg:tt)+) => {
        $crate::olog!($crate::log::Level::Warn, $target, { $($f)* }, $($msg)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Debug < Level::Info);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn override_gates_unless_env_set() {
        // The test environment does not set HORNET_LOG, so the programmatic
        // override decides.
        if env_level().is_none() {
            set_max_level(Level::Warn);
            assert!(enabled(Level::Warn));
            assert!(!enabled(Level::Info));
            set_max_level(Level::Debug);
            assert!(enabled(Level::Debug));
            set_max_level(Level::Off);
            assert!(!enabled(Level::Warn));
            set_max_level(Level::Warn); // restore the default
        }
    }

    #[test]
    fn macro_compiles_with_and_without_fields() {
        set_max_level(Level::Off);
        olog_info!("test", {}, "no fields");
        let shard = 3;
        olog_warn!("test", { shard = shard, cycle = 10 }, "fields {}", 1);
        if env_level().is_none() {
            set_max_level(Level::Warn);
        }
    }
}
