//! Threshold alerting over the live telemetry stream.
//!
//! The [`AlertEvaluator`] inspects every incoming [`TelemetrySample`]
//! against a small set of built-in rules — excessive slack-wait fraction,
//! cross-shard load imbalance, a shard that stopped advancing, dropped trace
//! events — and records **rising-edge** firings: a condition that stays true
//! across many samples fires once, then re-arms when it clears. Firings are
//! surfaced on the `/alerts` endpoint and as `logfmt` warnings, and are the
//! same online signal optimistic-sync straggler detection and load-aware
//! repartitioning will consume.

use crate::metrics::TelemetrySample;
use crate::olog_warn;

/// Thresholds for the built-in rules.
#[derive(Clone, Copy, Debug)]
pub struct AlertConfig {
    /// Fire when a shard's slack-wait share of attributed wall time exceeds
    /// this fraction (straggler's victim signal).
    pub max_wait_fraction: f64,
    /// Fire when max/mean compute time across shards exceeds this ratio
    /// (needs at least two shards reporting).
    pub max_load_imbalance: f64,
    /// Fire after this many consecutive samples from one shard without the
    /// cycle counter advancing.
    pub no_progress_samples: u32,
    /// Fire when a shard reports dropped trace events.
    pub trace_drop_alert: bool,
}

impl Default for AlertConfig {
    fn default() -> Self {
        Self {
            max_wait_fraction: 0.75,
            max_load_imbalance: 1.5,
            no_progress_samples: 3,
            trace_drop_alert: true,
        }
    }
}

/// One rising-edge alert firing.
#[derive(Clone, Debug)]
pub struct AlertFiring {
    /// Rule identifier (`stall_fraction`, `load_imbalance`, `no_progress`,
    /// `trace_drops`).
    pub rule: &'static str,
    /// Shard the rule fired for; `u32::MAX` for run-wide rules.
    pub shard: u32,
    /// Simulated cycle of the triggering sample.
    pub cycle: u64,
    /// Observed value that crossed the threshold.
    pub value: f64,
    /// The configured threshold.
    pub threshold: f64,
    /// Human-readable description.
    pub message: String,
}

/// Retained firings; older ones age out (the logfmt stream is the archive).
const MAX_FIRINGS: usize = 256;

/// Per-shard evaluation state.
#[derive(Clone, Copy, Debug, Default)]
struct ShardState {
    cycle: u64,
    stagnant: u32,
    compute_ns: u64,
    seen: bool,
}

/// Evaluates every incoming sample against [`AlertConfig`] thresholds and
/// keeps a bounded log of rising-edge firings.
#[derive(Debug)]
pub struct AlertEvaluator {
    config: AlertConfig,
    shards: Vec<(u32, ShardState)>,
    /// `(rule, shard)` pairs whose condition is currently true.
    active: Vec<(&'static str, u32)>,
    firings: Vec<AlertFiring>,
    total: u64,
}

impl AlertEvaluator {
    /// Creates an evaluator with the given thresholds.
    pub fn new(config: AlertConfig) -> Self {
        Self {
            config,
            shards: Vec::new(),
            active: Vec::new(),
            firings: Vec::new(),
            total: 0,
        }
    }

    /// Feeds one sample through every rule.
    pub fn observe(&mut self, sample: &TelemetrySample) {
        let shard = sample.shard;
        let idx = match self.shards.iter().position(|(s, _)| *s == shard) {
            Some(i) => i,
            None => {
                self.shards.push((shard, ShardState::default()));
                self.shards.len() - 1
            }
        };
        {
            let st = &mut self.shards[idx].1;
            if st.seen && sample.cycle <= st.cycle {
                st.stagnant += 1;
            } else {
                st.stagnant = 0;
            }
            st.cycle = st.cycle.max(sample.cycle);
            st.compute_ns = sample.profile.compute_ns;
            st.seen = true;
        }
        let st = self.shards[idx].1;

        // Rule: slack-wait fraction of attributed wall time.
        let total_ns = sample.profile.total_ns();
        let wait_frac = if total_ns > 0 {
            sample.profile.wait_ns as f64 / total_ns as f64
        } else {
            0.0
        };
        self.set(
            "stall_fraction",
            shard,
            total_ns > 0 && wait_frac > self.config.max_wait_fraction,
            wait_frac,
            self.config.max_wait_fraction,
            sample.cycle,
            || {
                format!(
                    "shard spends {:.0}% of wall time waiting",
                    wait_frac * 100.0
                )
            },
        );

        // Rule: no forward progress across consecutive samples.
        self.set(
            "no_progress",
            shard,
            st.stagnant >= self.config.no_progress_samples,
            st.stagnant as f64,
            self.config.no_progress_samples as f64,
            sample.cycle,
            || format!("cycle stuck at {} for {} samples", st.cycle, st.stagnant),
        );

        // Rule: the trace ring lost events.
        let drops = sample
            .metrics
            .iter()
            .find(|(n, _)| n == "trace_dropped")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        self.set(
            "trace_drops",
            shard,
            self.config.trace_drop_alert && drops > 0,
            drops as f64,
            0.0,
            sample.cycle,
            || format!("trace ring dropped {drops} events"),
        );

        // Rule: cross-shard load imbalance (max/mean compute time).
        let computes: Vec<u64> = self
            .shards
            .iter()
            .filter(|(_, s)| s.seen && s.compute_ns > 0)
            .map(|(_, s)| s.compute_ns)
            .collect();
        let imbalance = load_imbalance(&computes);
        self.set(
            "load_imbalance",
            u32::MAX,
            computes.len() >= 2 && imbalance > self.config.max_load_imbalance,
            imbalance,
            self.config.max_load_imbalance,
            sample.cycle,
            || format!("max/mean shard compute time is {imbalance:.2}"),
        );
    }

    /// Rising-edge bookkeeping for one `(rule, shard)` condition.
    #[allow(clippy::too_many_arguments)]
    fn set(
        &mut self,
        rule: &'static str,
        shard: u32,
        cond: bool,
        value: f64,
        threshold: f64,
        cycle: u64,
        message: impl FnOnce() -> String,
    ) {
        let pos = self.active.iter().position(|a| *a == (rule, shard));
        match (cond, pos) {
            (true, None) => {
                self.active.push((rule, shard));
                let message = message();
                olog_warn!(
                    "alert",
                    { rule = rule, shard = shard, cycle = cycle },
                    "{}",
                    message
                );
                if self.firings.len() == MAX_FIRINGS {
                    self.firings.remove(0);
                }
                self.firings.push(AlertFiring {
                    rule,
                    shard,
                    cycle,
                    value,
                    threshold,
                    message,
                });
                self.total += 1;
            }
            (false, Some(i)) => {
                self.active.swap_remove(i);
            }
            _ => {}
        }
    }

    /// Firings recorded so far (bounded; oldest age out).
    pub fn firings(&self) -> &[AlertFiring] {
        &self.firings
    }

    /// Number of `(rule, shard)` conditions currently true.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// Total firings since the evaluator was created (not bounded).
    pub fn total_firings(&self) -> u64 {
        self.total
    }
}

/// Max/mean over a set of per-shard compute times; 1.0 when degenerate.
fn load_imbalance(computes: &[u64]) -> f64 {
    if computes.is_empty() {
        return 1.0;
    }
    let max = *computes.iter().max().unwrap() as f64;
    let mean = computes.iter().sum::<u64>() as f64 / computes.len() as f64;
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::StallProfile;

    fn sample(shard: u32, cycle: u64) -> TelemetrySample {
        TelemetrySample {
            shard,
            cycle,
            ..TelemetrySample::default()
        }
    }

    #[test]
    fn no_progress_fires_once_and_rearms() {
        crate::log::set_max_level(crate::log::Level::Off);
        let mut ev = AlertEvaluator::new(AlertConfig {
            no_progress_samples: 2,
            ..AlertConfig::default()
        });
        ev.observe(&sample(0, 100));
        ev.observe(&sample(0, 100));
        ev.observe(&sample(0, 100)); // stagnant = 2 → fires
        ev.observe(&sample(0, 100)); // still true → no second firing
        assert_eq!(ev.total_firings(), 1);
        assert_eq!(ev.active(), 1);
        ev.observe(&sample(0, 200)); // progress → re-arms
        assert_eq!(ev.active(), 0);
        ev.observe(&sample(0, 200));
        ev.observe(&sample(0, 200));
        ev.observe(&sample(0, 200));
        assert_eq!(ev.total_firings(), 2, "fires again after re-arming");
        assert_eq!(ev.firings()[0].rule, "no_progress");
    }

    #[test]
    fn stall_fraction_and_trace_drops_fire() {
        crate::log::set_max_level(crate::log::Level::Off);
        let mut ev = AlertEvaluator::new(AlertConfig::default());
        let mut s = sample(1, 500);
        s.profile = StallProfile {
            compute_ns: 10,
            wait_ns: 90,
            ingest_ns: 0,
            flush_ns: 0,
        };
        s.metrics.push(("trace_dropped".to_string(), 4));
        ev.observe(&s);
        let rules: Vec<&str> = ev.firings().iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"stall_fraction"), "rules: {rules:?}");
        assert!(rules.contains(&"trace_drops"), "rules: {rules:?}");
    }

    #[test]
    fn imbalance_needs_two_shards() {
        crate::log::set_max_level(crate::log::Level::Off);
        let mut ev = AlertEvaluator::new(AlertConfig::default());
        let mut a = sample(0, 100);
        a.profile.compute_ns = 1_000;
        ev.observe(&a);
        assert_eq!(ev.total_firings(), 0, "one shard cannot be imbalanced");
        let mut b = sample(1, 100);
        b.profile.compute_ns = 10;
        ev.observe(&b);
        assert!(
            ev.firings().iter().any(|f| f.rule == "load_imbalance"),
            "max/mean ≈ 1.98 exceeds 1.5"
        );
        let global = ev
            .firings()
            .iter()
            .find(|f| f.rule == "load_imbalance")
            .unwrap();
        assert_eq!(global.shard, u32::MAX, "imbalance is run-wide");
    }
}
